package telemetry

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net/netip"
	"time"
)

// EventKind distinguishes monitoring events, mirroring the BMP message
// types of RFC 7854 (Peer Up, Peer Down, Route Monitoring, Stats
// Report) that PEERING's production collectors consume.
type EventKind uint8

// Event kinds.
const (
	EventPeerUp          EventKind = 1
	EventPeerDown        EventKind = 2
	EventRouteMonitoring EventKind = 3
	EventStatsReport     EventKind = 4
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case EventPeerUp:
		return "peer-up"
	case EventPeerDown:
		return "peer-down"
	case EventRouteMonitoring:
		return "route-monitoring"
	case EventStatsReport:
		return "stats-report"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// Stat is one statistics TLV of a StatsReport, in the style of the BMP
// §4.8 counters.
type Stat struct {
	Type  uint16
	Value uint64
}

// Stat types. Type 7 matches BMP's "routes in Adj-RIB-In"; the >=128
// range is the BMP-reserved experimental space, used here for the
// session counters vBGP already keeps.
const (
	StatRoutesAdjIn    uint16 = 7
	StatUpdatesIn      uint16 = 128
	StatUpdatesOut     uint16 = 129
	StatBytesIn        uint16 = 130
	StatBytesOut       uint16 = 131
	StatMRAISuppressed uint16 = 132
	// StatDampingSuppressed is how many of the peer's routes RFC 2439
	// flap damping is currently withholding from export.
	StatDampingSuppressed uint16 = 133
)

// Event is one monitoring event emitted by a vBGP router. Field
// relevance depends on Kind: RouteMonitoring events carry the route
// fields, PeerDown carries Reason, StatsReport carries Stats.
type Event struct {
	Kind EventKind
	// Time the router emitted the event.
	Time time.Time
	// PoP is the emitting router's name.
	PoP string
	// Peer names the session the event concerns: a neighbor name, an
	// "exp:" experiment, or a "mesh:" backbone peer.
	Peer string
	// PeerASN is the peer's AS number (0 when unknown).
	PeerASN uint32

	// PathID is the route's ADD-PATH / platform identifier.
	PathID uint32
	// Prefix is the affected route (invalid when not a route event).
	Prefix netip.Prefix
	// NextHop of the announcement (invalid for withdrawals).
	NextHop netip.Addr
	// ASPath of the announcement, flattened.
	ASPath []uint32
	// Withdraw marks a RouteMonitoring withdrawal.
	Withdraw bool

	// Reason explains a PeerDown.
	Reason string

	// Stats carries StatsReport TLVs.
	Stats []Stat
}

// Binary codec: a compact framing mirroring the MRT-inspired collector
// dump format (internal/collector). Each record:
//
//	magic   uint16  0x424d ("BM")
//	kind    uint8   EventKind
//	flags   uint8   bit0 = withdraw
//	time    int64   Unix nanoseconds
//	peerASN uint32
//	pathID  uint32
//	pop     uint8 len + bytes
//	peer    uint8 len + bytes
//	reason  uint8 len + bytes
//	prefix  fam uint8 (0 none, 4, 6), bits uint8, 0/4/16 addr bytes
//	nextHop fam uint8 (0 none, 4, 6), 0/4/16 addr bytes
//	asPath  uint16 count, count x uint32
//	stats   uint16 count, count x (uint16 type + uint64 value)
//
// All integers big-endian. The format is versionless by design — the
// magic doubles as a sync marker, exactly like the collector dump.
const eventMagic = 0x424d

const (
	flagWithdraw = 1 << 0
	// maxEventString caps the encoded length of each string field;
	// longer strings are truncated on encode.
	maxEventString = 255
)

func appendString(b []byte, s string) []byte {
	if len(s) > maxEventString {
		s = s[:maxEventString]
	}
	b = append(b, byte(len(s)))
	return append(b, s...)
}

func appendAddr(b []byte, a netip.Addr) []byte {
	switch {
	case !a.IsValid():
		return append(b, 0)
	case a.Is6():
		raw := a.As16()
		b = append(b, 6)
		return append(b, raw[:]...)
	default:
		raw := a.As4()
		b = append(b, 4)
		return append(b, raw[:]...)
	}
}

// AppendEncode appends the binary encoding of e to b and returns the
// extended slice. String fields longer than 255 bytes are truncated.
func AppendEncode(b []byte, e Event) []byte {
	b = binary.BigEndian.AppendUint16(b, eventMagic)
	b = append(b, byte(e.Kind))
	var flags byte
	if e.Withdraw {
		flags |= flagWithdraw
	}
	b = append(b, flags)
	b = binary.BigEndian.AppendUint64(b, uint64(e.Time.UnixNano()))
	b = binary.BigEndian.AppendUint32(b, e.PeerASN)
	b = binary.BigEndian.AppendUint32(b, e.PathID)
	b = appendString(b, e.PoP)
	b = appendString(b, e.Peer)
	b = appendString(b, e.Reason)
	if e.Prefix.IsValid() {
		addr := e.Prefix.Addr()
		if addr.Is6() {
			raw := addr.As16()
			b = append(b, 6, byte(e.Prefix.Bits()))
			b = append(b, raw[:]...)
		} else {
			raw := addr.As4()
			b = append(b, 4, byte(e.Prefix.Bits()))
			b = append(b, raw[:]...)
		}
	} else {
		b = append(b, 0)
	}
	b = appendAddr(b, e.NextHop)
	b = binary.BigEndian.AppendUint16(b, uint16(len(e.ASPath)))
	for _, asn := range e.ASPath {
		b = binary.BigEndian.AppendUint32(b, asn)
	}
	b = binary.BigEndian.AppendUint16(b, uint16(len(e.Stats)))
	for _, s := range e.Stats {
		b = binary.BigEndian.AppendUint16(b, s.Type)
		b = binary.BigEndian.AppendUint64(b, s.Value)
	}
	return b
}

// decoder walks a byte slice with bounds checking.
type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.b) {
		d.err = io.ErrUnexpectedEOF
		return nil
	}
	out := d.b[d.off : d.off+n]
	d.off += n
	return out
}

func (d *decoder) u8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) u16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (d *decoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (d *decoder) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (d *decoder) str() string {
	n := int(d.u8())
	b := d.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

func (d *decoder) addr() netip.Addr {
	switch fam := d.u8(); fam {
	case 0:
		return netip.Addr{}
	case 4:
		b := d.take(4)
		if b == nil {
			return netip.Addr{}
		}
		return netip.AddrFrom4([4]byte(b))
	case 6:
		b := d.take(16)
		if b == nil {
			return netip.Addr{}
		}
		return netip.AddrFrom16([16]byte(b))
	default:
		if d.err == nil {
			d.err = fmt.Errorf("telemetry: bad address family %d", fam)
		}
		return netip.Addr{}
	}
}

// DecodeEvent decodes one event from the front of b, returning the
// event and the number of bytes consumed.
func DecodeEvent(b []byte) (Event, int, error) {
	var e Event
	d := &decoder{b: b}
	if magic := d.u16(); d.err == nil && magic != eventMagic {
		return e, 0, fmt.Errorf("telemetry: bad event magic %#x", magic)
	}
	kind := EventKind(d.u8())
	if d.err == nil && (kind < EventPeerUp || kind > EventStatsReport) {
		return e, 0, fmt.Errorf("telemetry: bad event kind %d", kind)
	}
	e.Kind = kind
	flags := d.u8()
	e.Withdraw = flags&flagWithdraw != 0
	if d.err == nil && flags&^byte(flagWithdraw) != 0 {
		return e, 0, fmt.Errorf("telemetry: unknown event flags %#x", flags)
	}
	e.Time = time.Unix(0, int64(d.u64()))
	e.PeerASN = d.u32()
	e.PathID = d.u32()
	e.PoP = d.str()
	e.Peer = d.str()
	e.Reason = d.str()

	switch fam := d.u8(); fam {
	case 0:
	case 4:
		bits := int(d.u8())
		raw := d.take(4)
		if d.err == nil && bits > 32 {
			return e, 0, fmt.Errorf("telemetry: v4 prefix bits %d", bits)
		}
		if raw != nil {
			e.Prefix = netip.PrefixFrom(netip.AddrFrom4([4]byte(raw)), bits)
		}
	case 6:
		bits := int(d.u8())
		raw := d.take(16)
		if d.err == nil && bits > 128 {
			return e, 0, fmt.Errorf("telemetry: v6 prefix bits %d", bits)
		}
		if raw != nil {
			e.Prefix = netip.PrefixFrom(netip.AddrFrom16([16]byte(raw)), bits)
		}
	default:
		if d.err == nil {
			return e, 0, fmt.Errorf("telemetry: bad prefix family %d", fam)
		}
	}
	e.NextHop = d.addr()

	pathLen := int(d.u16())
	for i := 0; i < pathLen && d.err == nil; i++ {
		e.ASPath = append(e.ASPath, d.u32())
	}
	statLen := int(d.u16())
	for i := 0; i < statLen && d.err == nil; i++ {
		t := d.u16()
		v := d.u64()
		if d.err == nil {
			e.Stats = append(e.Stats, Stat{Type: t, Value: v})
		}
	}
	if d.err != nil {
		return Event{}, 0, d.err
	}
	return e, d.off, nil
}

// WriteEvents serializes events to w in the binary format.
func WriteEvents(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	var buf []byte
	for _, e := range events {
		buf = AppendEncode(buf[:0], e)
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEvents parses a stream of encoded events until EOF. A record
// truncated mid-frame yields io.ErrUnexpectedEOF along with the events
// decoded so far.
func ReadEvents(r io.Reader) ([]Event, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	var out []Event
	for len(data) > 0 {
		e, n, err := DecodeEvent(data)
		if err != nil {
			return out, err
		}
		out = append(out, e)
		data = data[n:]
	}
	return out, nil
}

// String renders the event as one log line.
func (e Event) String() string {
	switch e.Kind {
	case EventRouteMonitoring:
		verb := "announce"
		if e.Withdraw {
			verb = "withdraw"
		}
		return fmt.Sprintf("%s pop=%s peer=%s %s %s id=%d path=%v",
			e.Kind, e.PoP, e.Peer, verb, e.Prefix, e.PathID, e.ASPath)
	case EventPeerDown:
		return fmt.Sprintf("%s pop=%s peer=%s reason=%q", e.Kind, e.PoP, e.Peer, e.Reason)
	case EventStatsReport:
		return fmt.Sprintf("%s pop=%s peer=%s stats=%d", e.Kind, e.PoP, e.Peer, len(e.Stats))
	default:
		return fmt.Sprintf("%s pop=%s peer=%s as%d", e.Kind, e.PoP, e.Peer, e.PeerASN)
	}
}
