package telemetry

import (
	"bytes"
	"io"
	"math/rand"
	"net/netip"
	"reflect"
	"strings"
	"testing"
	"time"
)

func randomEvent(rng *rand.Rand) Event {
	e := Event{
		Kind:    EventKind(1 + rng.Intn(4)),
		Time:    time.Unix(0, rng.Int63()),
		PoP:     randomString(rng, 40),
		Peer:    randomString(rng, 40),
		PeerASN: rng.Uint32(),
		PathID:  rng.Uint32(),
	}
	switch e.Kind {
	case EventPeerDown:
		e.Reason = randomString(rng, 80)
	case EventRouteMonitoring:
		e.Withdraw = rng.Intn(2) == 0
		if rng.Intn(2) == 0 {
			var raw [4]byte
			rng.Read(raw[:])
			e.Prefix = netip.PrefixFrom(netip.AddrFrom4(raw), rng.Intn(33))
			if !e.Withdraw {
				var nh [4]byte
				rng.Read(nh[:])
				e.NextHop = netip.AddrFrom4(nh)
			}
		} else {
			var raw [16]byte
			rng.Read(raw[:])
			e.Prefix = netip.PrefixFrom(netip.AddrFrom16(raw), rng.Intn(129))
			if !e.Withdraw {
				var nh [16]byte
				rng.Read(nh[:])
				e.NextHop = netip.AddrFrom16(nh)
			}
		}
		for i := rng.Intn(6); i > 0; i-- {
			e.ASPath = append(e.ASPath, rng.Uint32())
		}
	case EventStatsReport:
		for i := rng.Intn(6); i > 0; i-- {
			e.Stats = append(e.Stats, Stat{Type: uint16(rng.Intn(200)), Value: rng.Uint64()})
		}
	}
	return e
}

func randomString(rng *rand.Rand, max int) string {
	const alphabet = "abcdefghijklmnopqrstuvwxyz0123456789-.:"
	n := rng.Intn(max)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteByte(alphabet[rng.Intn(len(alphabet))])
	}
	return b.String()
}

func eventsEqual(a, b Event) bool {
	if a.Kind != b.Kind || a.Time.UnixNano() != b.Time.UnixNano() ||
		a.PoP != b.PoP || a.Peer != b.Peer || a.PeerASN != b.PeerASN ||
		a.PathID != b.PathID || a.Prefix != b.Prefix || a.NextHop != b.NextHop ||
		a.Withdraw != b.Withdraw || a.Reason != b.Reason {
		return false
	}
	return reflect.DeepEqual(a.ASPath, b.ASPath) && reflect.DeepEqual(a.Stats, b.Stats)
}

// TestEventRoundTrip is the codec property test: for many random
// events, decode(encode(e)) == e and the byte count is exact.
func TestEventRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		e := randomEvent(rng)
		enc := AppendEncode(nil, e)
		got, n, err := DecodeEvent(enc)
		if err != nil {
			t.Fatalf("event %d: decode: %v\nevent: %+v", i, err, e)
		}
		if n != len(enc) {
			t.Fatalf("event %d: consumed %d of %d bytes", i, n, len(enc))
		}
		if !eventsEqual(e, got) {
			t.Fatalf("event %d round-trip mismatch:\n in: %+v\nout: %+v", i, e, got)
		}
	}
}

func TestEventEncodeTruncatesLongStrings(t *testing.T) {
	long := strings.Repeat("x", 300)
	e := Event{Kind: EventPeerDown, Time: time.Unix(0, 1), PoP: long, Peer: "p", Reason: long}
	enc := AppendEncode(nil, e)
	got, _, err := DecodeEvent(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got.PoP) != maxEventString || len(got.Reason) != maxEventString {
		t.Errorf("strings not truncated to %d: pop=%d reason=%d", maxEventString, len(got.PoP), len(got.Reason))
	}
	// Truncated output must itself round-trip byte-identically.
	if re := AppendEncode(nil, got); !bytes.Equal(re, enc) {
		t.Error("re-encoding the decoded event differs from the original encoding")
	}
}

func TestDecodeEventErrors(t *testing.T) {
	good := AppendEncode(nil, Event{Kind: EventPeerUp, Time: time.Unix(0, 99), PoP: "amsix", Peer: "transit1", PeerASN: 1000})
	cases := []struct {
		name string
		b    []byte
	}{
		{"empty", nil},
		{"bad magic", append([]byte{0xde, 0xad}, good[2:]...)},
		{"bad kind", func() []byte { b := append([]byte(nil), good...); b[2] = 9; return b }()},
		{"unknown flags", func() []byte { b := append([]byte(nil), good...); b[3] = 0x80; return b }()},
		{"truncated", good[:len(good)-3]},
	}
	for _, tc := range cases {
		if _, _, err := DecodeEvent(tc.b); err == nil {
			t.Errorf("%s: decode succeeded, want error", tc.name)
		}
	}
}

func TestWriteReadEvents(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var events []Event
	for i := 0; i < 50; i++ {
		events = append(events, randomEvent(rng))
	}
	var buf bytes.Buffer
	if err := WriteEvents(&buf, events); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := ReadEvents(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(got) != len(events) {
		t.Fatalf("read %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if !eventsEqual(events[i], got[i]) {
			t.Errorf("event %d mismatch", i)
		}
	}

	// A truncated stream returns the complete prefix plus an error.
	var tbuf bytes.Buffer
	if err := WriteEvents(&tbuf, events[:2]); err != nil {
		t.Fatalf("write: %v", err)
	}
	trunc := tbuf.Bytes()[:tbuf.Len()-1]
	partial, err := ReadEvents(bytes.NewReader(trunc))
	if err != io.ErrUnexpectedEOF {
		t.Errorf("truncated read error = %v, want io.ErrUnexpectedEOF", err)
	}
	if len(partial) != 1 {
		t.Errorf("truncated read returned %d events, want 1", len(partial))
	}
}
