package telemetry

import (
	"sync"
	"sync/atomic"
)

// DefaultQueueSize is the Emitter queue capacity when unspecified.
const DefaultQueueSize = 4096

// Emitter is the router-side half of the monitoring hook: a bounded
// event queue with a non-blocking Emit. When the queue is full (or the
// emitter is closed) the event is dropped and counted, so monitoring
// can never stall the control plane — the same stance the paper's
// enforcement takes on failing closed, inverted: observability fails
// open (drops) rather than applying backpressure to BGP processing.
type Emitter struct {
	mu     sync.RWMutex
	closed bool
	ch     chan Event

	accepted atomic.Uint64
	dropped  atomic.Uint64

	// Registry mirrors of the local counters, shared by every emitter
	// registered against the same registry.
	acceptedTotal *Counter
	droppedTotal  *Counter
}

// NewEmitter creates an emitter with the given queue capacity (<= 0
// selects DefaultQueueSize) registering its counters against reg (nil
// selects Default()).
func NewEmitter(reg *Registry, capacity int) *Emitter {
	if reg == nil {
		reg = Default()
	}
	if capacity <= 0 {
		capacity = DefaultQueueSize
	}
	return &Emitter{
		ch:            make(chan Event, capacity),
		acceptedTotal: reg.Counter("telemetry_events_total"),
		droppedTotal:  reg.Counter("telemetry_events_dropped_total"),
	}
}

// Emit enqueues e without blocking. It reports whether the event was
// accepted; a full queue or closed emitter drops the event and
// increments telemetry_events_dropped_total.
func (em *Emitter) Emit(e Event) bool {
	em.mu.RLock()
	defer em.mu.RUnlock()
	if em.closed {
		em.dropped.Add(1)
		em.droppedTotal.Inc()
		return false
	}
	select {
	case em.ch <- e:
		em.accepted.Add(1)
		em.acceptedTotal.Inc()
		return true
	default:
		em.dropped.Add(1)
		em.droppedTotal.Inc()
		return false
	}
}

// Events returns the consumption side of the queue. The channel is
// closed by Close after the buffered events drain to the reader.
func (em *Emitter) Events() <-chan Event { return em.ch }

// Close stops the emitter: subsequent Emits drop, and the Events
// channel is closed once drained by the consumer.
func (em *Emitter) Close() {
	em.mu.Lock()
	defer em.mu.Unlock()
	if !em.closed {
		em.closed = true
		close(em.ch)
	}
}

// Accepted returns how many events this emitter enqueued.
func (em *Emitter) Accepted() uint64 { return em.accepted.Load() }

// Dropped returns how many events this emitter dropped.
func (em *Emitter) Dropped() uint64 { return em.dropped.Load() }

// QueueLen returns the number of events waiting in the queue.
func (em *Emitter) QueueLen() int { return len(em.ch) }
