package rib

import "testing"

func TestMarkDampedCopyOnWrite(t *testing.T) {
	tb := NewTable("test")
	p1 := path("10.0.0.0/24", "n1", 0, 65001)
	p2 := path("10.0.0.0/24", "n2", 0, 65002)
	tb.Add(p1)
	tb.Add(p2)

	before := tb.Paths(pfx("10.0.0.0/24"))
	if n := tb.MarkDamped(pfx("10.0.0.0/24"), "n1", true); n != 1 {
		t.Fatalf("MarkDamped marked %d, want 1", n)
	}
	// Copy-on-write: the shared originals are untouched, readers holding
	// the old slice still see undamped paths.
	if p1.Damped {
		t.Fatal("MarkDamped mutated the shared *Path")
	}
	for _, e := range before {
		if e.Damped {
			t.Fatal("old slice sees the damped mark")
		}
	}
	// The table's view is marked, other peers' paths untouched.
	for _, e := range tb.Paths(pfx("10.0.0.0/24")) {
		if e.Peer == "n1" && !e.Damped {
			t.Fatal("n1's path not damped in table view")
		}
		if e.Peer == "n2" && e.Damped {
			t.Fatal("n2's path damped")
		}
	}
	if tb.DampedCount() != 1 {
		t.Fatalf("DampedCount = %d, want 1", tb.DampedCount())
	}
	// The route stays in the adj-RIB-in while damped.
	if tb.PathCount() != 2 {
		t.Fatalf("PathCount = %d, want 2 (damped path retained)", tb.PathCount())
	}

	// Idempotent: marking again changes nothing.
	if n := tb.MarkDamped(pfx("10.0.0.0/24"), "n1", true); n != 0 {
		t.Fatalf("re-mark changed %d paths, want 0", n)
	}
	// Clearing restores exportability.
	if n := tb.MarkDamped(pfx("10.0.0.0/24"), "n1", false); n != 1 {
		t.Fatalf("unmark changed %d paths, want 1", n)
	}
	if tb.DampedCount() != 0 {
		t.Fatalf("DampedCount after clear = %d", tb.DampedCount())
	}
	// Unknown prefix is a no-op.
	if n := tb.MarkDamped(pfx("192.0.2.0/24"), "n1", true); n != 0 {
		t.Fatalf("mark of unknown prefix changed %d", n)
	}
}
