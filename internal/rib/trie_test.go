package rib

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
)

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }
func ip(s string) netip.Addr    { return netip.MustParseAddr(s) }

func TestTrieInsertGet(t *testing.T) {
	tr := NewTrie[int](false)
	tr.Insert(pfx("10.0.0.0/8"), 1)
	tr.Insert(pfx("10.1.0.0/16"), 2)
	tr.Insert(pfx("10.1.1.0/24"), 3)
	tr.Insert(pfx("192.168.0.0/16"), 4)
	tr.Insert(pfx("0.0.0.0/0"), 5)

	cases := []struct {
		p    string
		want int
		ok   bool
	}{
		{"10.0.0.0/8", 1, true},
		{"10.1.0.0/16", 2, true},
		{"10.1.1.0/24", 3, true},
		{"192.168.0.0/16", 4, true},
		{"0.0.0.0/0", 5, true},
		{"10.1.2.0/24", 0, false},
		{"10.0.0.0/9", 0, false},
	}
	for _, c := range cases {
		got, ok := tr.Get(pfx(c.p))
		if ok != c.ok || got != c.want {
			t.Errorf("Get(%s) = %d,%v want %d,%v", c.p, got, ok, c.want, c.ok)
		}
	}
	if tr.Len() != 5 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestTrieReplace(t *testing.T) {
	tr := NewTrie[int](false)
	tr.Insert(pfx("10.0.0.0/24"), 1)
	tr.Insert(pfx("10.0.0.0/24"), 2)
	if got, _ := tr.Get(pfx("10.0.0.0/24")); got != 2 {
		t.Errorf("replace: got %d", got)
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d after replace", tr.Len())
	}
}

func TestTrieLPM(t *testing.T) {
	tr := NewTrie[string](false)
	tr.Insert(pfx("0.0.0.0/0"), "default")
	tr.Insert(pfx("10.0.0.0/8"), "ten")
	tr.Insert(pfx("10.1.0.0/16"), "ten-one")
	tr.Insert(pfx("10.1.128.0/17"), "ten-one-high")

	cases := []struct {
		addr string
		want string
	}{
		{"10.1.128.1", "ten-one-high"},
		{"10.1.0.1", "ten-one"},
		{"10.2.0.1", "ten"},
		{"11.0.0.1", "default"},
	}
	for _, c := range cases {
		_, got, ok := tr.Lookup(ip(c.addr))
		if !ok || got != c.want {
			t.Errorf("Lookup(%s) = %q,%v want %q", c.addr, got, ok, c.want)
		}
	}
}

func TestTrieLPMNoDefault(t *testing.T) {
	tr := NewTrie[string](false)
	tr.Insert(pfx("10.0.0.0/8"), "ten")
	if _, _, ok := tr.Lookup(ip("11.0.0.1")); ok {
		t.Error("lookup outside coverage should miss")
	}
}

func TestTrieRemove(t *testing.T) {
	tr := NewTrie[int](false)
	tr.Insert(pfx("10.0.0.0/8"), 1)
	tr.Insert(pfx("10.1.0.0/16"), 2)
	if !tr.Remove(pfx("10.1.0.0/16")) {
		t.Fatal("remove existing failed")
	}
	if tr.Remove(pfx("10.1.0.0/16")) {
		t.Fatal("double remove succeeded")
	}
	if tr.Remove(pfx("10.9.0.0/16")) {
		t.Fatal("remove absent succeeded")
	}
	if _, ok := tr.Get(pfx("10.1.0.0/16")); ok {
		t.Error("removed prefix still present")
	}
	if got, _ := tr.Get(pfx("10.0.0.0/8")); got != 1 {
		t.Error("sibling prefix lost")
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d", tr.Len())
	}
	// LPM no longer matches the removed, more-specific entry.
	_, v, ok := tr.Lookup(ip("10.1.0.1"))
	if !ok || v != 1 {
		t.Errorf("LPM after remove = %d,%v", v, ok)
	}
}

func TestTrieHostRoutes(t *testing.T) {
	tr := NewTrie[int](false)
	tr.Insert(pfx("10.0.0.1/32"), 1)
	tr.Insert(pfx("10.0.0.2/32"), 2)
	_, v, ok := tr.Lookup(ip("10.0.0.2"))
	if !ok || v != 2 {
		t.Errorf("host route lookup = %d,%v", v, ok)
	}
	if _, _, ok := tr.Lookup(ip("10.0.0.3")); ok {
		t.Error("host route should not cover neighbors")
	}
}

func TestTrieIPv6(t *testing.T) {
	tr := NewTrie[int](true)
	tr.Insert(pfx("2001:db8::/32"), 1)
	tr.Insert(pfx("2001:db8:1::/48"), 2)
	_, v, ok := tr.Lookup(ip("2001:db8:1::9"))
	if !ok || v != 2 {
		t.Errorf("v6 LPM = %d,%v", v, ok)
	}
	_, v, ok = tr.Lookup(ip("2001:db8:2::9"))
	if !ok || v != 1 {
		t.Errorf("v6 LPM fallback = %d,%v", v, ok)
	}
}

func TestTrieFamilyMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("inserting v6 prefix into v4 trie should panic")
		}
	}()
	NewTrie[int](false).Insert(pfx("2001:db8::/32"), 1)
}

func TestTrieWalkOrderAndStop(t *testing.T) {
	tr := NewTrie[int](false)
	for i, p := range []string{"10.0.0.0/8", "10.1.0.0/16", "172.16.0.0/12"} {
		tr.Insert(pfx(p), i)
	}
	var seen []netip.Prefix
	tr.Walk(func(p netip.Prefix, v int) bool {
		seen = append(seen, p)
		return true
	})
	if len(seen) != 3 {
		t.Errorf("walk visited %v", seen)
	}
	count := 0
	tr.Walk(func(netip.Prefix, int) bool {
		count++
		return false
	})
	if count != 1 {
		t.Errorf("early-stop walk visited %d", count)
	}
}

// TestTrieAgainstMap drives the trie with random operations and checks
// every behavior against a reference map implementation.
func TestTrieAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tr := NewTrie[int](false)
	ref := make(map[netip.Prefix]int)

	randPrefix := func() netip.Prefix {
		bits := rng.Intn(25) + 8
		addr := netip.AddrFrom4([4]byte{10, byte(rng.Intn(16)), byte(rng.Intn(16)), 0})
		return netip.PrefixFrom(addr, bits).Masked()
	}
	for i := 0; i < 5000; i++ {
		p := randPrefix()
		switch rng.Intn(3) {
		case 0:
			tr.Insert(p, i)
			ref[p] = i
		case 1:
			got := tr.Remove(p)
			_, want := ref[p]
			if got != want {
				t.Fatalf("op %d: Remove(%s) = %v want %v", i, p, got, want)
			}
			delete(ref, p)
		case 2:
			got, ok := tr.Get(p)
			want, wok := ref[p]
			if ok != wok || got != want {
				t.Fatalf("op %d: Get(%s) = %d,%v want %d,%v", i, p, got, ok, want, wok)
			}
		}
		if tr.Len() != len(ref) {
			t.Fatalf("op %d: Len = %d want %d", i, tr.Len(), len(ref))
		}
	}
	// Verify LPM for random addresses against brute force.
	for i := 0; i < 2000; i++ {
		addr := netip.AddrFrom4([4]byte{10, byte(rng.Intn(16)), byte(rng.Intn(16)), byte(rng.Intn(256))})
		var wantP netip.Prefix
		wantOK := false
		for p := range ref {
			if p.Contains(addr) && (!wantOK || p.Bits() > wantP.Bits()) {
				wantP, wantOK = p, true
			}
		}
		gotP, gotV, gotOK := tr.Lookup(addr)
		if gotOK != wantOK {
			t.Fatalf("LPM(%s) ok=%v want %v", addr, gotOK, wantOK)
		}
		if wantOK && (gotP != wantP || gotV != ref[wantP]) {
			t.Fatalf("LPM(%s) = %s,%d want %s,%d", addr, gotP, gotV, wantP, ref[wantP])
		}
	}
}

func TestTrieInsertGetProperty(t *testing.T) {
	fn := func(raw [][4]byte, bits []uint8) bool {
		tr := NewTrie[int](false)
		ref := make(map[netip.Prefix]int)
		for i := range raw {
			b := 32
			if i < len(bits) {
				b = int(bits[i] % 33)
			}
			p := netip.PrefixFrom(netip.AddrFrom4(raw[i]), b).Masked()
			tr.Insert(p, i)
			ref[p] = i
		}
		if tr.Len() != len(ref) {
			return false
		}
		for p, want := range ref {
			got, ok := tr.Get(p)
			if !ok || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDualTrie(t *testing.T) {
	d := NewDualTrie[int]()
	d.Insert(pfx("10.0.0.0/8"), 4)
	d.Insert(pfx("2001:db8::/32"), 6)
	if d.Len() != 2 {
		t.Errorf("Len = %d", d.Len())
	}
	if _, v, ok := d.Lookup(ip("10.1.2.3")); !ok || v != 4 {
		t.Error("v4 lookup through dual trie")
	}
	if _, v, ok := d.Lookup(ip("2001:db8::1")); !ok || v != 6 {
		t.Error("v6 lookup through dual trie")
	}
	if !d.Remove(pfx("10.0.0.0/8")) || d.Len() != 1 {
		t.Error("dual remove")
	}
	visited := 0
	d.Walk(func(netip.Prefix, int) bool { visited++; return true })
	if visited != 1 {
		t.Errorf("walk visited %d", visited)
	}
}
