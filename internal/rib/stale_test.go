package rib

import (
	"net/netip"
	"testing"

	"repro/internal/bgp"
)

func stalePath(prefix, peer string, id bgp.PathID) *Path {
	return &Path{
		Prefix: netip.MustParsePrefix(prefix),
		Peer:   peer,
		ID:     id,
		Attrs:  &bgp.PathAttrs{HasOrigin: true},
		Seq:    NextSeq(),
	}
}

func TestMarkPeerStaleKeepsPathsUsable(t *testing.T) {
	tbl := NewTable("adj-in")
	tbl.Add(stalePath("10.0.0.0/16", "as100", 0))
	tbl.Add(stalePath("10.1.0.0/16", "as100", 0))
	tbl.Add(stalePath("10.0.0.0/16", "as200", 0))

	if n := tbl.MarkPeerStale("as100"); n != 2 {
		t.Fatalf("marked %d, want 2", n)
	}
	if got := tbl.StaleCount("as100"); got != 2 {
		t.Fatalf("StaleCount = %d", got)
	}
	// Retained paths still resolve: forwarding state preserved.
	if p := tbl.Lookup(netip.MustParseAddr("10.1.1.1")); p == nil || p.Peer != "as100" || !p.Stale {
		t.Fatalf("stale path not retained for lookup: %+v", p)
	}
	if tbl.PathCount() != 3 {
		t.Fatalf("PathCount = %d, want 3 (nothing withdrawn)", tbl.PathCount())
	}
	// as200's path is untouched.
	if got := tbl.StaleCount("as200"); got != 0 {
		t.Fatalf("as200 stale count = %d", got)
	}
}

func TestMarkIsCopyOnWrite(t *testing.T) {
	tbl := NewTable("adj-in")
	orig := stalePath("10.0.0.0/16", "as100", 0)
	tbl.Add(orig)
	before := tbl.Paths(orig.Prefix)
	tbl.MarkPeerStale("as100")
	if orig.Stale {
		t.Fatal("original *Path mutated in place")
	}
	if before[0].Stale {
		t.Fatal("previously returned slice mutated in place")
	}
	if !tbl.Paths(orig.Prefix)[0].Stale {
		t.Fatal("table does not serve the stale copy")
	}
}

func TestReAddClearsStaleness(t *testing.T) {
	tbl := NewTable("adj-in")
	tbl.Add(stalePath("10.0.0.0/16", "as100", 0))
	tbl.Add(stalePath("10.1.0.0/16", "as100", 0))
	tbl.MarkPeerStale("as100")

	// Peer re-advertises one prefix after restarting.
	tbl.Add(stalePath("10.0.0.0/16", "as100", 0))

	removed := tbl.SweepStale("as100", false)
	if len(removed) != 1 || removed[0].Prefix != netip.MustParsePrefix("10.1.0.0/16") {
		t.Fatalf("sweep removed %v, want only the non-re-advertised prefix", removed)
	}
	if p := tbl.Best(netip.MustParsePrefix("10.0.0.0/16")); p == nil || p.Stale {
		t.Fatalf("re-advertised path gone or still stale: %+v", p)
	}
	if tbl.PathCount() != 1 {
		t.Fatalf("PathCount = %d, want 1", tbl.PathCount())
	}
}

func TestSweepStaleIsPerFamily(t *testing.T) {
	tbl := NewTable("adj-in")
	tbl.Add(stalePath("10.0.0.0/16", "as100", 0))
	tbl.Add(stalePath("2001:db8::/48", "as100", 0))
	tbl.MarkPeerStale("as100")

	if removed := tbl.SweepStale("as100", false); len(removed) != 1 || removed[0].Prefix.Addr().Is6() {
		t.Fatalf("v4 sweep removed %v", removed)
	}
	if got := tbl.StaleCount("as100"); got != 1 {
		t.Fatalf("v6 stale path gone after v4 sweep: count %d", got)
	}
	if removed := tbl.SweepStale("as100", true); len(removed) != 1 || !removed[0].Prefix.Addr().Is6() {
		t.Fatalf("v6 sweep removed %v", removed)
	}
}

func TestSweepStaleIsIdempotent(t *testing.T) {
	tbl := NewTable("adj-in")
	tbl.Add(stalePath("10.0.0.0/16", "as100", 0))
	tbl.MarkPeerStale("as100")
	tbl.SweepStale("as100", false)
	if removed := tbl.SweepStale("as100", false); len(removed) != 0 {
		t.Fatalf("second sweep removed %v", removed)
	}
	if tbl.PathCount() != 0 {
		t.Fatalf("PathCount = %d", tbl.PathCount())
	}
}
