package rib

import (
	"net/netip"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// snapshotFixture fills a table with the mixed shard-test prefix set
// and returns the reference map of winners.
func snapshotFixture(t *testing.T, shards int) (*Table, map[netip.Prefix]*Path) {
	t.Helper()
	tb := NewTableShards("snap", shards)
	ref := map[netip.Prefix]*Path{}
	for i, p := range shardTestPrefixes() {
		best := &Path{Prefix: p, Peer: "a", Attrs: attrsVia(65001), EBGP: true, Seq: uint64(2*i + 1)}
		tb.Add(&Path{Prefix: p, Peer: "b", Attrs: attrsVia(65002, 65003), EBGP: true, Seq: uint64(2*i + 2)})
		tb.Add(best)
		ref[p] = best
	}
	return tb, ref
}

// TestSnapshotLookupMatchesTable checks the flattened FIB agrees with
// the live table (and the brute-force reference) on every probe, and
// that a fresh snapshot actually serves Table.Lookup.
func TestSnapshotLookupMatchesTable(t *testing.T) {
	tb, ref := snapshotFixture(t, 16)
	s := tb.BuildSnapshot()
	if s.Routes() != len(ref) {
		t.Fatalf("snapshot Routes() = %d, want %d", s.Routes(), len(ref))
	}
	probes := []netip.Addr{
		ip("0.0.0.1"), ip("10.1.2.3"), ip("129.0.0.1"), ip("203.0.113.7"),
		ip("255.255.255.255"), ip("::1"), ip("2001:db8::1"), ip("2001:db8:1::9"),
		ip("fe80::1"),
	}
	for p := range ref {
		probes = append(probes, p.Addr())
	}
	before := tb.Stats()
	for _, a := range probes {
		want := bruteLookup(ref, a)
		if got := s.Lookup(a); got != want {
			t.Errorf("Snapshot.Lookup(%s) = %v, want %v", a, got, want)
		}
		if got := tb.Lookup(a); got != want {
			t.Errorf("Table.Lookup(%s) = %v, want %v", a, got, want)
		}
	}
	st := tb.Stats()
	if served := st.SnapshotLookups - before.SnapshotLookups; served != uint64(len(probes)) {
		t.Errorf("snapshot served %d of %d lookups", served, len(probes))
	}
}

// TestSnapshotWalkMatchesTableWalk checks the preorder flat array
// reproduces Table.WalkBest exactly: same prefixes, same winners, same
// order.
func TestSnapshotWalkMatchesTableWalk(t *testing.T) {
	tb, _ := snapshotFixture(t, 16)
	s := tb.BuildSnapshot()
	type ent struct {
		p netip.Prefix
		b *Path
	}
	var fromTable, fromSnap []ent
	tb.WalkBest(func(p netip.Prefix, best *Path) bool {
		fromTable = append(fromTable, ent{p, best})
		return true
	})
	s.Walk(func(p netip.Prefix, best *Path) bool {
		fromSnap = append(fromSnap, ent{p, best})
		return true
	})
	if len(fromTable) != len(fromSnap) {
		t.Fatalf("walk lengths: table %d, snapshot %d", len(fromTable), len(fromSnap))
	}
	for i := range fromTable {
		if fromTable[i] != fromSnap[i] {
			t.Fatalf("walk[%d]: table (%s, %v), snapshot (%s, %v)",
				i, fromTable[i].p, fromTable[i].b, fromSnap[i].p, fromSnap[i].b)
		}
	}
}

// TestSnapshotStaleNeverServed pins consistency rule 2: after a
// mutation, the outdated snapshot must not answer Table.Lookup — the
// table falls back to the locked path and returns the new route.
func TestSnapshotStaleNeverServed(t *testing.T) {
	tb, ref := snapshotFixture(t, 16)
	s := tb.BuildSnapshot()
	fresh := &Path{Prefix: pfx("198.51.100.0/24"), Peer: "c", Attrs: attrsVia(65009), EBGP: true, Seq: NextSeq()}
	tb.Add(fresh)
	if v, sv := tb.Stats().Version, s.Version(); v == sv {
		t.Fatalf("mutation did not advance the version past the snapshot (%d)", v)
	}
	before := tb.Stats()
	if got := tb.Lookup(ip("198.51.100.1")); got != fresh {
		t.Fatalf("Lookup after mutation = %v, want the freshly added path", got)
	}
	st := tb.Stats()
	if st.SnapshotLookups != before.SnapshotLookups {
		t.Error("stale snapshot served a lookup")
	}
	if st.LockedLookups != before.LockedLookups+1 {
		t.Errorf("locked fallback not taken: %d -> %d", before.LockedLookups, st.LockedLookups)
	}
	// The stale snapshot object itself stays immutable: it still answers
	// from the state it captured (here, the covering short prefix — not
	// the /24 added after the build).
	if got, want := s.Lookup(ip("198.51.100.1")), bruteLookup(ref, ip("198.51.100.1")); got != want {
		t.Errorf("immutable snapshot changed: got %v, want %v", got, want)
	}
}

// TestSnapshotAtomicSwap pins consistency rule 1: concurrent readers
// see complete snapshots only — every route in one snapshot belongs to
// the same write generation, versions are monotonic, and no read ever
// observes a partially flattened table. The table uses one shard so
// each AddBatch is a single atomic generation switch.
func TestSnapshotAtomicSwap(t *testing.T) {
	const prefixes, generations = 64, 30
	tb := NewTableShards("swap", 1)
	pfxs := make([]netip.Prefix, prefixes)
	for i := range pfxs {
		pfxs[i] = netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i), 0, 0}), 24)
	}
	install := func(gen int) {
		batch := make([]*Path, prefixes)
		for i, p := range pfxs {
			batch[i] = &Path{Prefix: p, Peer: "a", Attrs: attrsVia(65001), Seq: uint64(gen)}
		}
		tb.AddBatch(batch)
	}
	install(1)
	tb.BuildSnapshot()

	var stop atomic.Bool
	var torn atomic.Int64
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastVersion uint64
			for !stop.Load() {
				s := tb.ReadSnapshot()
				if s.Version() < lastVersion {
					t.Error("snapshot version went backwards")
					return
				}
				lastVersion = s.Version()
				if s.Routes() != prefixes {
					torn.Add(1)
					continue
				}
				gen := uint64(0)
				s.Walk(func(_ netip.Prefix, best *Path) bool {
					if gen == 0 {
						gen = best.Seq
					} else if best.Seq != gen {
						torn.Add(1)
						return false
					}
					return true
				})
			}
		}()
	}
	for gen := 2; gen <= generations; gen++ {
		install(gen)
		tb.BuildSnapshot()
	}
	stop.Store(true)
	wg.Wait()
	if n := torn.Load(); n != 0 {
		t.Fatalf("readers observed %d torn snapshots", n)
	}
}

// TestAutoSnapshot exercises the single-flight background maintenance:
// after churn beyond the configured interval, lookups converge back to
// being served from a fresh snapshot without any explicit BuildSnapshot.
func TestAutoSnapshot(t *testing.T) {
	tb := NewTableShards("auto", 16)
	tb.EnableAutoSnapshot(8)
	if tb.ReadSnapshot() == nil {
		t.Fatal("EnableAutoSnapshot did not build the initial snapshot")
	}
	for i := 0; i < 100; i++ {
		p := netip.PrefixFrom(netip.AddrFrom4([4]byte{byte(i), 2, 0, 0}), 24)
		tb.Add(&Path{Prefix: p, Peer: "a", Attrs: attrsVia(65001), Seq: uint64(i + 1)})
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		before := tb.Stats().SnapshotLookups
		tb.Lookup(ip("7.2.0.9")) // misses schedule a rebuild; hits prove freshness
		if tb.Stats().SnapshotLookups > before {
			break
		}
		if time.Now().After(deadline) {
			st := tb.Stats()
			t.Fatalf("auto snapshot never caught up: version %d, snapshot %d", st.Version, st.SnapshotVersion)
		}
		time.Sleep(time.Millisecond)
	}
	if got := tb.Lookup(ip("7.2.0.9")); got == nil || got.Prefix != pfx("7.2.0.0/24") {
		t.Fatalf("post-convergence lookup = %v", got)
	}
}

// TestAutoSnapshotDisable checks every <= 0 turns maintenance off.
func TestAutoSnapshotDisable(t *testing.T) {
	tb := NewTableShards("auto-off", 16)
	tb.EnableAutoSnapshot(8)
	tb.EnableAutoSnapshot(0)
	v := tb.Stats().SnapshotVersion
	for i := 0; i < 64; i++ {
		p := netip.PrefixFrom(netip.AddrFrom4([4]byte{byte(i), 3, 0, 0}), 24)
		tb.Add(&Path{Prefix: p, Peer: "a", Attrs: attrsVia(65001), Seq: uint64(i + 1)})
		tb.Lookup(p.Addr())
	}
	time.Sleep(10 * time.Millisecond)
	if got := tb.Stats().SnapshotVersion; got != v {
		t.Fatalf("disabled auto snapshot still rebuilt: version %d -> %d", v, got)
	}
}
