// Package rib implements the routing information bases a BGP router
// maintains: a binary radix (Patricia) trie keyed by prefix, per-peer
// Adj-RIBs, a Loc-RIB with the RFC 4271 §9.1 decision process, and
// forwarding tables with longest-prefix-match lookup. vBGP keeps one
// forwarding table per BGP neighbor (paper §3.2.2).
package rib

import (
	"fmt"
	"net/netip"
)

// trieNode is a node in a binary radix trie. Nodes with value==nil are
// internal branching points.
type trieNode[V any] struct {
	prefix   netip.Prefix
	value    *V
	children [2]*trieNode[V]
}

// Trie maps prefixes of one address family to values, supporting exact
// match, longest-prefix match, and ordered traversal. The zero Trie is
// empty but family-less; use NewTrie.
type Trie[V any] struct {
	root *trieNode[V]
	v6   bool
	size int
}

// NewTrie creates a trie for IPv4 (v6=false) or IPv6 (v6=true) prefixes.
func NewTrie[V any](v6 bool) *Trie[V] {
	bits := 0
	var addr netip.Addr
	if v6 {
		addr = netip.IPv6Unspecified()
	} else {
		addr = netip.IPv4Unspecified()
	}
	return &Trie[V]{root: &trieNode[V]{prefix: netip.PrefixFrom(addr, bits)}, v6: v6}
}

// Len returns the number of prefixes with values in the trie.
func (t *Trie[V]) Len() int { return t.size }

// bitAt returns bit i (0 = most significant) of the address.
func bitAt(a netip.Addr, i int) int {
	raw := a.AsSlice()
	return int(raw[i/8]>>(7-i%8)) & 1
}

// commonBits returns the length of the longest common prefix of a and b,
// capped at max.
func commonBits(a, b netip.Addr, max int) int {
	ra, rb := a.AsSlice(), b.AsSlice()
	n := 0
	for i := 0; i < len(ra) && n < max; i++ {
		x := ra[i] ^ rb[i]
		if x == 0 {
			n += 8
			continue
		}
		for m := byte(0x80); m != 0 && n < max; m >>= 1 {
			if x&m != 0 {
				return n
			}
			n++
		}
	}
	if n > max {
		n = max
	}
	return n
}

func (t *Trie[V]) check(p netip.Prefix) netip.Prefix {
	if p.Addr().Is6() != t.v6 {
		panic(fmt.Sprintf("rib: %s in %s trie", p, map[bool]string{true: "IPv6", false: "IPv4"}[t.v6]))
	}
	return p.Masked()
}

// Insert sets the value for prefix p, replacing any existing value.
func (t *Trie[V]) Insert(p netip.Prefix, v V) {
	p = t.check(p)
	n := t.root
	for {
		if n.prefix == p {
			if n.value == nil {
				t.size++
			}
			n.value = &v
			return
		}
		b := bitAt(p.Addr(), n.prefix.Bits())
		child := n.children[b]
		if child == nil {
			t.size++
			n.children[b] = &trieNode[V]{prefix: p, value: &v}
			return
		}
		cb := commonBits(p.Addr(), child.prefix.Addr(), min(p.Bits(), child.prefix.Bits()))
		if cb >= child.prefix.Bits() {
			// child's prefix contains p: descend.
			n = child
			continue
		}
		// Split: insert a branching node covering the common bits.
		branch := &trieNode[V]{prefix: netip.PrefixFrom(child.prefix.Addr(), cb).Masked()}
		n.children[b] = branch
		branch.children[bitAt(child.prefix.Addr(), cb)] = child
		if branch.prefix == p {
			t.size++
			branch.value = &v
			return
		}
		t.size++
		branch.children[bitAt(p.Addr(), cb)] = &trieNode[V]{prefix: p, value: &v}
		return
	}
}

// Remove deletes the value for prefix p, reporting whether it was present.
// Structural cleanup is conservative: empty leaves are pruned, pass-through
// branch nodes are collapsed.
func (t *Trie[V]) Remove(p netip.Prefix) bool {
	p = t.check(p)
	var parent *trieNode[V]
	var parentIdx int
	n := t.root
	for n != nil {
		if n.prefix == p {
			if n.value == nil {
				return false
			}
			n.value = nil
			t.size--
			t.prune(parent, parentIdx, n)
			return true
		}
		if n.prefix.Bits() >= p.Bits() || !n.prefix.Contains(p.Addr()) {
			return false
		}
		parent, parentIdx = n, bitAt(p.Addr(), n.prefix.Bits())
		n = n.children[parentIdx]
	}
	return false
}

// prune removes or collapses a now-valueless node.
func (t *Trie[V]) prune(parent *trieNode[V], idx int, n *trieNode[V]) {
	if parent == nil || n.value != nil {
		return
	}
	switch {
	case n.children[0] == nil && n.children[1] == nil:
		parent.children[idx] = nil
	case n.children[0] == nil:
		parent.children[idx] = n.children[1]
	case n.children[1] == nil:
		parent.children[idx] = n.children[0]
	}
}

// Get returns the value stored for exactly prefix p.
func (t *Trie[V]) Get(p netip.Prefix) (V, bool) {
	p = t.check(p)
	n := t.root
	for n != nil {
		if n.prefix == p {
			if n.value != nil {
				return *n.value, true
			}
			var zero V
			return zero, false
		}
		if n.prefix.Bits() >= p.Bits() || !n.prefix.Contains(p.Addr()) {
			break
		}
		n = n.children[bitAt(p.Addr(), n.prefix.Bits())]
	}
	var zero V
	return zero, false
}

// Lookup returns the value of the longest prefix containing addr.
func (t *Trie[V]) Lookup(addr netip.Addr) (netip.Prefix, V, bool) {
	var bestP netip.Prefix
	var bestV *V
	n := t.root
	for n != nil && n.prefix.Contains(addr) {
		if n.value != nil {
			bestP, bestV = n.prefix, n.value
		}
		if n.prefix.Bits() == addr.BitLen() {
			break
		}
		n = n.children[bitAt(addr, n.prefix.Bits())]
	}
	if bestV == nil {
		var zero V
		return netip.Prefix{}, zero, false
	}
	return bestP, *bestV, true
}

// Walk visits every stored prefix/value pair in depth-first order; the
// traversal stops if fn returns false.
func (t *Trie[V]) Walk(fn func(p netip.Prefix, v V) bool) {
	var rec func(n *trieNode[V]) bool
	rec = func(n *trieNode[V]) bool {
		if n == nil {
			return true
		}
		if n.value != nil && !fn(n.prefix, *n.value) {
			return false
		}
		return rec(n.children[0]) && rec(n.children[1])
	}
	rec(t.root)
}

// DualTrie pairs an IPv4 and an IPv6 trie behind one interface.
type DualTrie[V any] struct {
	v4, v6 *Trie[V]
}

// NewDualTrie creates an empty dual-family trie.
func NewDualTrie[V any]() *DualTrie[V] {
	return &DualTrie[V]{v4: NewTrie[V](false), v6: NewTrie[V](true)}
}

func (d *DualTrie[V]) pick(is6 bool) *Trie[V] {
	if is6 {
		return d.v6
	}
	return d.v4
}

// Insert sets the value for p.
func (d *DualTrie[V]) Insert(p netip.Prefix, v V) { d.pick(p.Addr().Is6()).Insert(p, v) }

// Remove deletes p, reporting whether it was present.
func (d *DualTrie[V]) Remove(p netip.Prefix) bool { return d.pick(p.Addr().Is6()).Remove(p) }

// Get returns the value stored for exactly p.
func (d *DualTrie[V]) Get(p netip.Prefix) (V, bool) { return d.pick(p.Addr().Is6()).Get(p) }

// Lookup returns the longest-prefix match for addr.
func (d *DualTrie[V]) Lookup(a netip.Addr) (netip.Prefix, V, bool) {
	return d.pick(a.Is6()).Lookup(a)
}

// Len returns the number of stored prefixes across both families.
func (d *DualTrie[V]) Len() int { return d.v4.Len() + d.v6.Len() }

// Walk visits IPv4 entries then IPv6 entries.
func (d *DualTrie[V]) Walk(fn func(p netip.Prefix, v V) bool) {
	stop := false
	d.v4.Walk(func(p netip.Prefix, v V) bool {
		if !fn(p, v) {
			stop = true
			return false
		}
		return true
	})
	if stop {
		return
	}
	d.v6.Walk(fn)
}
