// Package rib implements the routing information bases a BGP router
// maintains: a binary radix (Patricia) trie keyed by prefix, per-peer
// Adj-RIBs, a Loc-RIB with the RFC 4271 §9.1 decision process, and
// forwarding tables with longest-prefix-match lookup. vBGP keeps one
// forwarding table per BGP neighbor (paper §3.2.2).
package rib

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"net/netip"
)

// trieNode is a node in a binary radix trie. Nodes with value==nil are
// internal branching points. The prefix is stored as its address
// normalized into the 128-bit space (IPv4 in the top 32 bits of hi, see
// addrHalves) plus the prefix length — 48 bytes per node instead of the
// 112 a netip.Prefix-keyed node costs, so a million-route trie fits
// twice as many nodes per cache line, allocates half the memory, and
// descents compare and branch on integers. The netip form is
// reconstructed on demand (nodePrefix) for walks and lookup results.
type trieNode[V any] struct {
	hi, lo   uint64
	bits     uint8
	value    *V
	children [2]*trieNode[V]
}

// Trie maps prefixes of one address family to values, supporting exact
// match, longest-prefix match, and ordered traversal. The zero Trie is
// empty but family-less; use NewTrie.
type Trie[V any] struct {
	root *trieNode[V]
	v6   bool
	size int
	// Nodes are carved out of chunked arenas (amortizing allocator and
	// GC-mark work over thousands of nodes) and recycled through a
	// freelist threaded via children[0] when pruned. Old chunks stay
	// reachable through the tree itself; arena holds only the chunk
	// currently being filled.
	arena []trieNode[V]
	free  *trieNode[V]
}

// trieArenaMax caps arena chunk size; chunks double from 8 up to this,
// so small tries stay small and million-node tries allocate rarely.
const trieArenaMax = 4096

// NewTrie creates a trie for IPv4 (v6=false) or IPv6 (v6=true) prefixes.
func NewTrie[V any](v6 bool) *Trie[V] {
	t := &Trie[V]{v6: v6}
	t.root = t.newNode(0, 0, 0)
	return t
}

// newNode returns a valueless node keyed (hi, lo, nb), reusing a pruned
// node when one is free.
func (t *Trie[V]) newNode(hi, lo uint64, nb int) *trieNode[V] {
	if n := t.free; n != nil {
		t.free = n.children[0]
		*n = trieNode[V]{hi: hi, lo: lo, bits: uint8(nb)}
		return n
	}
	if len(t.arena) == cap(t.arena) {
		next := 2 * cap(t.arena)
		if next < 8 {
			next = 8
		}
		if next > trieArenaMax {
			next = trieArenaMax
		}
		t.arena = make([]trieNode[V], 0, next)
	}
	t.arena = t.arena[:len(t.arena)+1]
	n := &t.arena[len(t.arena)-1]
	n.hi, n.lo, n.bits = hi, lo, uint8(nb)
	return n
}

// freeNode recycles a detached node into the freelist.
func (t *Trie[V]) freeNode(n *trieNode[V]) {
	*n = trieNode[V]{}
	n.children[0] = t.free
	t.free = n
}

// nodePrefix reconstructs the netip form of a node's key.
func (t *Trie[V]) nodePrefix(n *trieNode[V]) netip.Prefix {
	if t.v6 {
		var raw [16]byte
		binary.BigEndian.PutUint64(raw[:8], n.hi)
		binary.BigEndian.PutUint64(raw[8:], n.lo)
		return netip.PrefixFrom(netip.AddrFrom16(raw), int(n.bits))
	}
	var raw [4]byte
	binary.BigEndian.PutUint32(raw[:], uint32(n.hi>>32))
	return netip.PrefixFrom(netip.AddrFrom4(raw), int(n.bits))
}

// Len returns the number of prefixes with values in the trie.
func (t *Trie[V]) Len() int { return t.size }

// bit128 returns bit i (0 = most significant) of a normalized 128-bit
// address.
func bit128(hi, lo uint64, i int) int {
	if i < 64 {
		return int(hi>>(63-i)) & 1
	}
	return int(lo>>(127-i)) & 1
}

// common128 returns the length of the longest common prefix of two
// normalized addresses, capped at max.
func common128(ahi, alo, bhi, blo uint64, max int) int {
	n := bits.LeadingZeros64(ahi ^ bhi)
	if n == 64 {
		n += bits.LeadingZeros64(alo ^ blo)
	}
	if n > max {
		n = max
	}
	return n
}

// contains128 reports whether the nbits-long prefix keyed (nhi, nlo)
// contains the normalized address (hi, lo). Shifts of 64 or more are
// zero in Go, so nbits 0, 64, and 128 all fall out correctly.
func contains128(nhi, nlo uint64, nbits int, hi, lo uint64) bool {
	if nbits <= 64 {
		return (nhi^hi)>>(64-uint(nbits)) == 0
	}
	return nhi == hi && (nlo^lo)>>(128-uint(nbits)) == 0
}

// mask128 returns the netmask of an nbits-long prefix in normalized
// form.
func mask128(nbits int) (maskHi, maskLo uint64) {
	if nbits <= 64 {
		return ^uint64(0) << (64 - uint(nbits)), 0 // nbits==0 shifts out to 0
	}
	return ^uint64(0), ^uint64(0) << (128 - uint(nbits))
}

func (t *Trie[V]) check(p netip.Prefix) netip.Prefix {
	if p.Addr().Is6() != t.v6 {
		panic(fmt.Sprintf("rib: %s in %s trie", p, map[bool]string{true: "IPv6", false: "IPv4"}[t.v6]))
	}
	return p.Masked()
}

// Insert sets the value for prefix p, replacing any existing value.
func (t *Trie[V]) Insert(p netip.Prefix, v V) {
	t.Upsert(p, func(V, bool) V { return v })
}

// Upsert sets the value for prefix p to fn(old, existed) in a single
// descent — the read-modify-write the RIB's add path performs per
// route, without paying for a Get descent followed by an Insert
// descent.
func (t *Trie[V]) Upsert(p netip.Prefix, fn func(old V, ok bool) V) {
	p = t.check(p)
	hi, lo, _ := addrHalves(p.Addr())
	pb := p.Bits()
	set := func(n *trieNode[V]) {
		if n.value == nil {
			t.size++
			v := fn(*new(V), false)
			n.value = &v
			return
		}
		v := fn(*n.value, true)
		n.value = &v
	}
	n := t.root
	for {
		if int(n.bits) == pb && n.hi == hi && n.lo == lo {
			set(n)
			return
		}
		b := bit128(hi, lo, int(n.bits))
		child := n.children[b]
		if child == nil {
			leaf := t.newNode(hi, lo, pb)
			set(leaf)
			n.children[b] = leaf
			return
		}
		cb := common128(hi, lo, child.hi, child.lo, min(pb, int(child.bits)))
		if cb >= int(child.bits) {
			// child's prefix contains p: descend.
			n = child
			continue
		}
		// Split: insert a branching node covering the common bits.
		bmHi, bmLo := mask128(cb)
		branch := t.newNode(child.hi&bmHi, child.lo&bmLo, cb)
		n.children[b] = branch
		branch.children[bit128(child.hi, child.lo, cb)] = child
		if cb == pb {
			// p itself is the branch prefix (keys already match: cb bits
			// are common with p and p has exactly cb bits).
			set(branch)
			return
		}
		leaf := t.newNode(hi, lo, pb)
		set(leaf)
		branch.children[bit128(hi, lo, cb)] = leaf
		return
	}
}

// Remove deletes the value for prefix p, reporting whether it was present.
// Structural cleanup is conservative: empty leaves are pruned, pass-through
// branch nodes are collapsed.
func (t *Trie[V]) Remove(p netip.Prefix) bool {
	p = t.check(p)
	hi, lo, _ := addrHalves(p.Addr())
	pb := p.Bits()
	var parent *trieNode[V]
	var parentIdx int
	n := t.root
	for n != nil {
		nb := int(n.bits)
		if nb == pb && n.hi == hi && n.lo == lo {
			if n.value == nil {
				return false
			}
			n.value = nil
			t.size--
			t.prune(parent, parentIdx, n)
			return true
		}
		if nb >= pb || !contains128(n.hi, n.lo, nb, hi, lo) {
			return false
		}
		parent, parentIdx = n, bit128(hi, lo, nb)
		n = n.children[parentIdx]
	}
	return false
}

// prune removes or collapses a now-valueless node, recycling it.
func (t *Trie[V]) prune(parent *trieNode[V], idx int, n *trieNode[V]) {
	if parent == nil || n.value != nil {
		return
	}
	switch {
	case n.children[0] == nil && n.children[1] == nil:
		parent.children[idx] = nil
	case n.children[0] == nil:
		parent.children[idx] = n.children[1]
	case n.children[1] == nil:
		parent.children[idx] = n.children[0]
	default:
		return // both children present: n stays as a branch point
	}
	t.freeNode(n)
}

// Get returns the value stored for exactly prefix p.
func (t *Trie[V]) Get(p netip.Prefix) (V, bool) {
	p = t.check(p)
	hi, lo, _ := addrHalves(p.Addr())
	pb := p.Bits()
	n := t.root
	for n != nil {
		nb := int(n.bits)
		if nb == pb && n.hi == hi && n.lo == lo {
			if n.value != nil {
				return *n.value, true
			}
			break
		}
		if nb >= pb || !contains128(n.hi, n.lo, nb, hi, lo) {
			break
		}
		n = n.children[bit128(hi, lo, nb)]
	}
	var zero V
	return zero, false
}

// Lookup returns the value of the longest prefix containing addr.
func (t *Trie[V]) Lookup(addr netip.Addr) (netip.Prefix, V, bool) {
	if addr.Is6() != t.v6 {
		var zero V
		return netip.Prefix{}, zero, false
	}
	hi, lo, maxBits := addrHalves(addr)
	var best *trieNode[V]
	n := t.root
	for n != nil {
		nb := int(n.bits)
		if !contains128(n.hi, n.lo, nb, hi, lo) {
			break
		}
		if n.value != nil {
			best = n
		}
		if nb == int(maxBits) {
			break
		}
		n = n.children[bit128(hi, lo, nb)]
	}
	if best == nil {
		var zero V
		return netip.Prefix{}, zero, false
	}
	return t.nodePrefix(best), *best.value, true
}

// Walk visits every stored prefix/value pair in depth-first order; the
// traversal stops if fn returns false.
func (t *Trie[V]) Walk(fn func(p netip.Prefix, v V) bool) {
	var rec func(n *trieNode[V]) bool
	rec = func(n *trieNode[V]) bool {
		if n == nil {
			return true
		}
		if n.value != nil && !fn(t.nodePrefix(n), *n.value) {
			return false
		}
		return rec(n.children[0]) && rec(n.children[1])
	}
	rec(t.root)
}

// DualTrie pairs an IPv4 and an IPv6 trie behind one interface.
type DualTrie[V any] struct {
	v4, v6 *Trie[V]
}

// NewDualTrie creates an empty dual-family trie.
func NewDualTrie[V any]() *DualTrie[V] {
	return &DualTrie[V]{v4: NewTrie[V](false), v6: NewTrie[V](true)}
}

func (d *DualTrie[V]) pick(is6 bool) *Trie[V] {
	if is6 {
		return d.v6
	}
	return d.v4
}

// Insert sets the value for p.
func (d *DualTrie[V]) Insert(p netip.Prefix, v V) { d.pick(p.Addr().Is6()).Insert(p, v) }

// Upsert sets the value for p to fn(old, existed) in one descent.
func (d *DualTrie[V]) Upsert(p netip.Prefix, fn func(old V, ok bool) V) {
	d.pick(p.Addr().Is6()).Upsert(p, fn)
}

// Remove deletes p, reporting whether it was present.
func (d *DualTrie[V]) Remove(p netip.Prefix) bool { return d.pick(p.Addr().Is6()).Remove(p) }

// Get returns the value stored for exactly p.
func (d *DualTrie[V]) Get(p netip.Prefix) (V, bool) { return d.pick(p.Addr().Is6()).Get(p) }

// Lookup returns the longest-prefix match for addr.
func (d *DualTrie[V]) Lookup(a netip.Addr) (netip.Prefix, V, bool) {
	return d.pick(a.Is6()).Lookup(a)
}

// Len returns the number of stored prefixes across both families.
func (d *DualTrie[V]) Len() int { return d.v4.Len() + d.v6.Len() }

// walkFamily visits one family's entries in depth-first order,
// reporting whether the walk ran to completion.
func (d *DualTrie[V]) walkFamily(v6 bool, fn func(p netip.Prefix, v V) bool) bool {
	done := true
	d.pick(v6).Walk(func(p netip.Prefix, v V) bool {
		if !fn(p, v) {
			done = false
			return false
		}
		return true
	})
	return done
}

// Walk visits IPv4 entries then IPv6 entries.
func (d *DualTrie[V]) Walk(fn func(p netip.Prefix, v V) bool) {
	stop := false
	d.v4.Walk(func(p netip.Prefix, v V) bool {
		if !fn(p, v) {
			stop = true
			return false
		}
		return true
	})
	if stop {
		return
	}
	d.v6.Walk(fn)
}
