package rib

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sync"
	"testing"
)

// shardCounts is the grid the sharding invariant tests sweep: the
// pre-sharding single-lock layout, a non-default power of two, the
// default, and an oversized count that forces short prefixes into the
// spill shard at several shardBits values.
var shardCounts = []int{1, 2, 16, 64}

// shardTestPrefixes returns a mixed prefix set that exercises every
// sharding corner: default routes and other prefixes too short to be
// sharded (spill), host routes, both address families, and a spread of
// /24s and /48s landing in many different shards.
func shardTestPrefixes() []netip.Prefix {
	ps := []netip.Prefix{
		pfx("0.0.0.0/0"), pfx("0.0.0.0/3"), pfx("128.0.0.0/1"), pfx("10.0.0.0/7"),
		pfx("::/0"), pfx("2000::/3"), pfx("2001:db8::/32"), pfx("2001:db8:1::/48"),
		pfx("203.0.113.7/32"), pfx("2001:db8::1/128"),
	}
	for i := 0; i < 64; i++ {
		a := netip.AddrFrom4([4]byte{byte(i * 37), byte(i * 11), byte(i), 0})
		ps = append(ps, netip.PrefixFrom(a, 24).Masked())
		b6 := pfx("2001:db8::/32").Addr().As16()
		b6[4], b6[5] = byte(i*53), byte(i)
		ps = append(ps, netip.PrefixFrom(netip.AddrFrom16(b6), 48).Masked())
	}
	seen := map[netip.Prefix]bool{}
	out := ps[:0]
	for _, p := range ps {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

// bruteLookup is the reference longest-prefix match over a plain map.
func bruteLookup(set map[netip.Prefix]*Path, addr netip.Addr) *Path {
	var best *Path
	bestBits := -1
	for p, pa := range set {
		if p.Contains(addr) && p.Bits() > bestBits {
			best, bestBits = pa, p.Bits()
		}
	}
	return best
}

// TestShardInvariants checks that every shard count yields the same
// table semantics: counts, exact-match paths, best selection, and LPM
// lookups (including spill fallbacks for short prefixes).
func TestShardInvariants(t *testing.T) {
	prefixes := shardTestPrefixes()
	addrs := []netip.Addr{
		ip("0.0.0.1"), ip("9.255.255.255"), ip("10.1.2.3"), ip("129.0.0.1"),
		ip("203.0.113.7"), ip("203.0.113.8"), ip("255.255.255.255"),
		ip("::1"), ip("2001:db8::1"), ip("2001:db8::2"), ip("2001:db8:1::9"),
		ip("fe80::1"),
	}
	for _, p := range prefixes {
		if p.Addr().Is4() {
			addrs = append(addrs, p.Addr())
		}
	}
	for _, shards := range shardCounts {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			tb := NewTableShards("inv", shards)
			ref := map[netip.Prefix]*Path{}
			for i, p := range prefixes {
				best := &Path{Prefix: p, Peer: "a", Attrs: attrsVia(65001), EBGP: true, Seq: uint64(2*i + 1)}
				worse := &Path{Prefix: p, Peer: "b", Attrs: attrsVia(65002, 65003), EBGP: true, Seq: uint64(2*i + 2)}
				tb.Add(worse)
				tb.Add(best)
				ref[p] = best
			}
			if got := tb.Prefixes(); got != len(prefixes) {
				t.Fatalf("Prefixes() = %d, want %d", got, len(prefixes))
			}
			if got := tb.PathCount(); got != 2*len(prefixes) {
				t.Fatalf("PathCount() = %d, want %d", got, 2*len(prefixes))
			}
			for p, want := range ref {
				if got := len(tb.Paths(p)); got != 2 {
					t.Fatalf("%s: %d paths, want 2", p, got)
				}
				if got := tb.Best(p); got != want {
					t.Errorf("Best(%s) = %v, want path via a", p, got)
				}
			}
			for _, a := range addrs {
				if got, want := tb.Lookup(a), bruteLookup(ref, a); got != want {
					t.Errorf("Lookup(%s) = %v, want %v", a, got, want)
				}
			}
			// Withdrawing the winners leaves the runners-up in place.
			for p := range ref {
				if tb.Withdraw(p, "a", 0) == nil {
					t.Fatalf("withdraw %s from a returned nil", p)
				}
			}
			if got := tb.PathCount(); got != len(prefixes) {
				t.Fatalf("PathCount() after withdraw = %d, want %d", got, len(prefixes))
			}
			for p := range ref {
				if got := tb.Best(p); got == nil || got.Peer != "b" {
					t.Fatalf("Best(%s) after withdraw = %v, want path via b", p, got)
				}
			}
		})
	}
}

// TestWalkDeterministicAcrossShards locks in the cross-shard Walk
// contract: the visit order is (family, address, prefix length) —
// identical for every shard count and independent of insertion order.
func TestWalkDeterministicAcrossShards(t *testing.T) {
	prefixes := shardTestPrefixes()
	var want []netip.Prefix // collected from shards=1, then verified sorted
	for _, shards := range shardCounts {
		rng := rand.New(rand.NewSource(int64(shards)))
		order := rng.Perm(len(prefixes))
		tb := NewTableShards("walk", shards)
		for _, i := range order {
			tb.Add(&Path{Prefix: prefixes[i], Peer: "a", Attrs: attrsVia(65001), Seq: uint64(i + 1)})
		}
		var got []netip.Prefix
		tb.Walk(func(p netip.Prefix, paths []*Path) bool {
			got = append(got, p)
			return true
		})
		if len(got) != len(prefixes) {
			t.Fatalf("shards=%d: walked %d prefixes, want %d", shards, len(got), len(prefixes))
		}
		for i := 1; i < len(got); i++ {
			a, b := got[i-1], got[i]
			if a.Addr().Is4() && b.Addr().Is6() {
				continue // family boundary
			}
			if a.Addr().Is6() && b.Addr().Is4() {
				t.Fatalf("shards=%d: IPv4 %s after IPv6 %s", shards, b, a)
			}
			if cmpPrefix(a, b) >= 0 {
				t.Fatalf("shards=%d: walk order not strictly increasing: %s then %s", shards, a, b)
			}
		}
		if want == nil {
			want = got
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("shards=%d: walk[%d] = %s, want %s (differs from shards=1)", shards, i, got[i], want[i])
			}
		}
	}
}

// TestConcurrentShardSoak hammers one table with concurrent adds,
// withdraws, lookups, walks, and snapshot builds. Run under -race this
// is the shard-locking soak; the final state check catches lost updates.
func TestConcurrentShardSoak(t *testing.T) {
	tb := NewTableShards("soak", 16)
	tb.EnableAutoSnapshot(64)
	const writers, perWriter, iters = 4, 64, 40
	var wg, readers sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			peer := fmt.Sprintf("peer%d", w)
			prefixes := make([]netip.Prefix, perWriter)
			for i := range prefixes {
				prefixes[i] = netip.PrefixFrom(netip.AddrFrom4([4]byte{byte(w*64 + i), byte(i), 0, 0}), 24)
			}
			for it := 0; it < iters; it++ {
				batch := make([]*Path, len(prefixes))
				for i, p := range prefixes {
					batch[i] = &Path{Prefix: p, Peer: peer, Attrs: attrsVia(65001), Seq: uint64(it + 1)}
				}
				tb.AddBatch(batch)
				if it == iters-1 {
					break // leave the last generation installed
				}
				reqs := make([]WithdrawRequest, len(prefixes))
				for i, p := range prefixes {
					reqs[i] = WithdrawRequest{Prefix: p, Peer: peer}
				}
				for i, rm := range tb.WithdrawBatch(reqs) {
					if rm == nil {
						t.Errorf("writer %d iter %d: withdraw %s lost", w, it, prefixes[i])
						return
					}
				}
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				tb.Lookup(netip.AddrFrom4([4]byte{byte(i), byte(i >> 8), 1, 1}))
				if i%64 == 0 {
					tb.Walk(func(netip.Prefix, []*Path) bool { return true })
					tb.BuildSnapshot()
					if s := tb.ReadSnapshot(); s == nil {
						t.Error("ReadSnapshot returned nil after BuildSnapshot")
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	if got, want := tb.PathCount(), writers*perWriter; got != want {
		t.Fatalf("PathCount after soak = %d, want %d", got, want)
	}
	if got, want := tb.Prefixes(), writers*perWriter; got != want {
		t.Fatalf("Prefixes after soak = %d, want %d", got, want)
	}
}

// TestCountersRace verifies the churn counters are exact under
// concurrent mutation — the atomics fix for the former read-modify-write
// race on Adds/Withdraws.
func TestCountersRace(t *testing.T) {
	tb := NewTable("counters")
	const workers, iters = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(w), 0, 0}), 24)
			peer := fmt.Sprintf("peer%d", w)
			for i := 0; i < iters; i++ {
				tb.Add(&Path{Prefix: p, Peer: peer, Attrs: attrsVia(65001), Seq: uint64(i + 1)})
				tb.Withdraw(p, peer, 0)
			}
		}(w)
	}
	wg.Wait()
	st := tb.Stats()
	if st.Adds != workers*iters || st.Withdraws != workers*iters {
		t.Fatalf("Adds=%d Withdraws=%d, want %d each", st.Adds, st.Withdraws, workers*iters)
	}
	if tb.PathCount() != 0 || tb.Prefixes() != 0 {
		t.Fatalf("table not empty: paths=%d prefixes=%d", tb.PathCount(), tb.Prefixes())
	}
	if st.WriteLocks != 2*workers*iters {
		t.Fatalf("WriteLocks=%d, want %d", st.WriteLocks, 2*workers*iters)
	}
}

// TestLookupTakesNoWriteLocks is the in-package version of the bench
// guard: a pure lookup phase must leave the write-lock counter unchanged
// whether served from the snapshot or the locked fallback.
func TestLookupTakesNoWriteLocks(t *testing.T) {
	for _, snap := range []bool{false, true} {
		tb := NewTableShards("ro", 16)
		for i := 0; i < 256; i++ {
			p := netip.PrefixFrom(netip.AddrFrom4([4]byte{byte(i), 1, 0, 0}), 24)
			tb.Add(&Path{Prefix: p, Peer: "a", Attrs: attrsVia(65001), Seq: uint64(i + 1)})
		}
		if snap {
			tb.BuildSnapshot()
		}
		before := tb.Stats().WriteLocks
		for i := 0; i < 1024; i++ {
			tb.Lookup(netip.AddrFrom4([4]byte{byte(i), 1, 0, 9}))
		}
		st := tb.Stats()
		if st.WriteLocks != before {
			t.Fatalf("snapshot=%v: lookups took %d write locks", snap, st.WriteLocks-before)
		}
		if snap && st.SnapshotLookups == 0 {
			t.Fatalf("no lookups served from the fresh snapshot")
		}
	}
}

// TestTrieUpsertSingleDescent covers the read-modify-write entry point
// the add path uses: insert-if-absent, in-place replace, and size
// accounting.
func TestTrieUpsertSingleDescent(t *testing.T) {
	tr := NewTrie[int](false)
	tr.Upsert(pfx("10.0.0.0/24"), func(old int, ok bool) int {
		if ok {
			t.Fatalf("first upsert saw existing value %d", old)
		}
		return 1
	})
	if tr.Len() != 1 {
		t.Fatalf("Len = %d after insert", tr.Len())
	}
	tr.Upsert(pfx("10.0.0.0/24"), func(old int, ok bool) int {
		if !ok || old != 1 {
			t.Fatalf("second upsert saw (%d, %v)", old, ok)
		}
		return 2
	})
	if tr.Len() != 1 {
		t.Fatalf("Len = %d after replace", tr.Len())
	}
	if v, ok := tr.Get(pfx("10.0.0.0/24")); !ok || v != 2 {
		t.Fatalf("Get = (%d, %v)", v, ok)
	}
	// A branch-prefix upsert (the split where p is the common prefix).
	tr.Insert(pfx("10.0.1.0/24"), 3)
	tr.Upsert(pfx("10.0.0.0/23"), func(_ int, ok bool) int {
		if ok {
			t.Fatal("branch prefix reported as existing")
		}
		return 4
	})
	if v, ok := tr.Get(pfx("10.0.0.0/23")); !ok || v != 4 {
		t.Fatalf("branch Get = (%d, %v)", v, ok)
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tr.Len())
	}
}

// TestTrieNodeRecycling checks that pruned nodes go through the arena
// freelist and get reused by later inserts, and that churned tries stay
// correct.
func TestTrieNodeRecycling(t *testing.T) {
	tr := NewTrie[int](false)
	tr.Insert(pfx("10.0.0.0/24"), 1)
	tr.Insert(pfx("10.0.1.0/24"), 2)
	if tr.free != nil {
		t.Fatal("freelist non-empty before any removal")
	}
	if !tr.Remove(pfx("10.0.1.0/24")) {
		t.Fatal("Remove returned false")
	}
	if tr.free == nil {
		t.Fatal("pruned leaf was not recycled onto the freelist")
	}
	tr.Insert(pfx("192.168.0.0/16"), 3)
	if tr.free != nil {
		t.Fatal("insert did not consume the recycled node")
	}
	// Churn a window of prefixes and verify contents survive reuse.
	for it := 0; it < 10; it++ {
		for i := 0; i < 32; i++ {
			tr.Insert(netip.PrefixFrom(netip.AddrFrom4([4]byte{172, 16, byte(i), 0}), 24), it*100+i)
		}
		for i := 0; i < 32; i++ {
			p := netip.PrefixFrom(netip.AddrFrom4([4]byte{172, 16, byte(i), 0}), 24)
			if v, ok := tr.Get(p); !ok || v != it*100+i {
				t.Fatalf("iter %d: Get(%s) = (%d, %v)", it, p, v, ok)
			}
			if !tr.Remove(p) {
				t.Fatalf("iter %d: Remove(%s) failed", it, p)
			}
		}
	}
	if v, ok := tr.Get(pfx("10.0.0.0/24")); !ok || v != 1 {
		t.Fatalf("survivor lost after churn: (%d, %v)", v, ok)
	}
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tr.Len())
	}
}

// TestTrieLookupFamilyMismatch pins the integer-key subtlety: the root
// node's key (/0) matches any 128-bit value, so Lookup must reject the
// wrong address family explicitly rather than serve a cross-family
// default route.
func TestTrieLookupFamilyMismatch(t *testing.T) {
	tr := NewTrie[int](false)
	tr.Insert(pfx("0.0.0.0/0"), 1)
	if _, _, ok := tr.Lookup(ip("2001:db8::1")); ok {
		t.Fatal("IPv4 trie answered an IPv6 lookup")
	}
	tr6 := NewTrie[int](true)
	tr6.Insert(pfx("::/0"), 1)
	if _, _, ok := tr6.Lookup(ip("10.0.0.1")); ok {
		t.Fatal("IPv6 trie answered an IPv4 lookup")
	}
}
