package rib

import (
	"encoding/binary"
	"net/netip"
)

// Copy-on-write FIB snapshots: the winning best path per prefix,
// flattened into a compressed read-only trie the dataplane hits without
// touching shard locks.
//
// Consistency rules (the contract the snapshot tests lock in):
//
//  1. A snapshot is immutable after construction and published with a
//     single atomic pointer swap — readers see either the old or the
//     new snapshot in full, never a torn mix.
//  2. A snapshot records the table's mutation version, captured while
//     the builder holds every shard read lock (so no mutation is in
//     flight). Table.Lookup consults the snapshot only when that
//     version still matches the live counter: a stale snapshot is never
//     served, it only wastes the memory until the next rebuild.
//  3. Rebuilds are single-flight: concurrent triggers collapse into one
//     builder goroutine, and publication order follows build order, so
//     versions observed through ReadSnapshot are monotonic.

// Snapshot is an immutable flattened copy of a Table's best paths. All
// nodes of one family live in a single contiguous slice linked by int32
// indexes rather than pointers, in depth-first preorder — so a linear
// scan is an ordered walk, lookups are pointer-chase-free, and the GC
// sees one allocation per family instead of one per node.
type Snapshot struct {
	version uint64
	routes  int
	v4, v6  snapTrie
}

type snapNode struct {
	prefix netip.Prefix
	// keyHi/keyLo and maskHi/maskLo are the prefix pre-masked into the
	// 128-bit address space (IPv4 occupies the top 32 bits), so the
	// containment test on the hot lookup path is four integer ops
	// instead of a netip.Prefix.Contains call per node.
	keyHi, keyLo   uint64
	maskHi, maskLo uint64
	bits           uint8
	// path is the decision-process winner for prefix; nil marks a pure
	// branch node.
	path        *Path
	left, right int32 // node indexes; -1 = none
}

type snapTrie struct {
	nodes []snapNode
	// rootStart/rootBest index the trie by the address's top 16 bits:
	// lookups start at the node a plain descent would reach after
	// consuming those bits, with the best path accumulated on the way —
	// skipping the cache-missing upper levels of a million-route trie.
	// Built only for large tries (snapRootMin); nil means start at 0.
	rootStart []int32
	rootBest  []*Path
}

// snapRootMin is the node count above which a snapshot trie gets the
// 16-bit root index (below it, the table itself costs more than the
// levels it skips).
const snapRootMin = 1 << 13

// addrHalves normalizes an address into the 128-bit space used by the
// snapshot's integer containment tests.
func addrHalves(addr netip.Addr) (hi, lo uint64, maxBits uint8) {
	if addr.Is6() {
		raw := addr.As16()
		return binary.BigEndian.Uint64(raw[:8]), binary.BigEndian.Uint64(raw[8:]), 128
	}
	raw := addr.As4()
	return uint64(binary.BigEndian.Uint32(raw[:])) << 32, 0, 32
}

// prefixHalves pre-masks a prefix into the same normalized space.
func prefixHalves(p netip.Prefix) (keyHi, keyLo, maskHi, maskLo uint64, bits uint8) {
	b := p.Bits()
	if b < 0 {
		b = 0
	}
	bits = uint8(b)
	hi, lo, _ := addrHalves(p.Addr())
	maskHi, maskLo = mask128(b)
	return hi & maskHi, lo & maskLo, maskHi, maskLo, bits
}

// Version returns the table mutation count this snapshot captured.
func (s *Snapshot) Version() uint64 { return s.version }

// Routes returns the number of prefixes with a best path.
func (s *Snapshot) Routes() int { return s.routes }

// Lookup returns the best path for the longest prefix containing addr,
// or nil. It takes no locks and never allocates beyond the address
// bytes.
func (s *Snapshot) Lookup(addr netip.Addr) *Path {
	if addr.Is6() {
		return s.v6.lookup(addr)
	}
	return s.v4.lookup(addr)
}

// Walk visits every prefix and its best path, IPv4 first then IPv6,
// each family ordered by (address, prefix length) — the same order as
// Table.Walk.
func (s *Snapshot) Walk(fn func(prefix netip.Prefix, best *Path) bool) {
	if s.v4.walk(fn) {
		s.v6.walk(fn)
	}
}

func (st *snapTrie) lookup(addr netip.Addr) *Path {
	if len(st.nodes) == 0 {
		return nil
	}
	hi, lo, maxBits := addrHalves(addr)
	var best *Path
	i := int32(0)
	if st.rootStart != nil {
		w := hi >> 48
		best = st.rootBest[w]
		i = st.rootStart[w]
	}
	for i >= 0 {
		n := &st.nodes[i]
		if hi&n.maskHi != n.keyHi || lo&n.maskLo != n.keyLo {
			break
		}
		if n.path != nil {
			best = n.path
		}
		b := n.bits
		if b >= maxBits {
			break
		}
		var bit uint64
		if b < 64 {
			bit = hi >> (63 - b) & 1
		} else {
			bit = lo >> (127 - b) & 1
		}
		if bit == 0 {
			i = n.left
		} else {
			i = n.right
		}
	}
	return best
}

func (st *snapTrie) walk(fn func(prefix netip.Prefix, best *Path) bool) bool {
	// Nodes are stored in DFS preorder, so a linear scan visits
	// prefixes in (address, length) order.
	for i := range st.nodes {
		if n := &st.nodes[i]; n.path != nil && !fn(n.prefix, n.path) {
			return false
		}
	}
	return true
}

// flattenTrie packs a builder trie into the contiguous preorder array.
// The builder nodes already carry normalized integer keys, so the flat
// nodes copy them directly; the netip form is materialized once per
// node for Walk.
func flattenTrie(tr *Trie[*Path]) snapTrie {
	st := snapTrie{nodes: make([]snapNode, 0, 2*tr.Len()+1)}
	var rec func(n *trieNode[*Path]) int32
	rec = func(n *trieNode[*Path]) int32 {
		if n == nil {
			return -1
		}
		idx := int32(len(st.nodes))
		var p *Path
		if n.value != nil {
			p = *n.value
		}
		maskHi, maskLo := mask128(int(n.bits))
		st.nodes = append(st.nodes, snapNode{
			prefix: tr.nodePrefix(n),
			keyHi:  n.hi, keyLo: n.lo, maskHi: maskHi, maskLo: maskLo, bits: n.bits,
			path: p, left: -1, right: -1,
		})
		l := rec(n.children[0])
		r := rec(n.children[1])
		st.nodes[idx].left, st.nodes[idx].right = l, r
		return idx
	}
	rec(tr.root)
	st.buildRoot()
	return st
}

// buildRoot fills the 16-bit root index by running the first 16 bits of
// every possible descent once at build time. Entries are conservative:
// the runtime loop re-checks full containment from the start node, so a
// stop at a node deeper than 16 bits stays correct.
func (st *snapTrie) buildRoot() {
	if len(st.nodes) < snapRootMin {
		return
	}
	st.rootStart = make([]int32, 1<<16)
	st.rootBest = make([]*Path, 1<<16)
	for w := uint64(0); w < 1<<16; w++ {
		hi := w << 48
		var best *Path
		i := int32(0)
		for i >= 0 {
			n := &st.nodes[i]
			if n.bits >= 16 {
				// Containment and branching need address bits the index
				// key does not cover; the runtime descent takes over.
				break
			}
			if hi&n.maskHi != n.keyHi {
				i = -1
				break
			}
			if n.path != nil {
				best = n.path
			}
			if hi>>(63-n.bits)&1 == 0 {
				i = n.left
			} else {
				i = n.right
			}
		}
		st.rootStart[w] = i
		st.rootBest[w] = best
	}
}

// BuildSnapshot flattens the current best paths into a new immutable
// snapshot, publishes it as the table's current one, and returns it.
// The table view is captured under all shard read locks (so it is
// atomic); the flatten itself runs after the locks are released.
func (t *Table) BuildSnapshot() *Snapshot {
	tmp4, tmp6 := NewTrie[*Path](false), NewTrie[*Path](true)
	routes := 0
	t.rlockAll()
	version := t.version.Load()
	t.walkLocked(func(p netip.Prefix, paths []*Path) bool {
		if b := Best(paths); b != nil {
			if p.Addr().Is6() {
				tmp6.Insert(p, b)
			} else {
				tmp4.Insert(p, b)
			}
			routes++
		}
		return true
	})
	t.runlockAll()
	snap := &Snapshot{version: version, routes: routes, v4: flattenTrie(tmp4), v6: flattenTrie(tmp6)}
	t.snap.Store(snap)
	ribSnapshotBuilds.Inc()
	return snap
}

// ReadSnapshot returns the table's current snapshot, or nil if none has
// been built. The snapshot may lag the live table; check Version
// against Stats().Version when freshness matters.
func (t *Table) ReadSnapshot() *Snapshot { return t.snap.Load() }

// EnableAutoSnapshot turns on automatic snapshot maintenance: an
// initial snapshot is built synchronously, and thereafter any mutation
// that leaves the snapshot at least every mutations behind — or any
// lookup that misses the snapshot — schedules a single-flight
// background rebuild. Passing every <= 0 disables auto maintenance
// (explicit BuildSnapshot still works).
func (t *Table) EnableAutoSnapshot(every int) {
	if every <= 0 {
		t.snapEvery.Store(0)
		return
	}
	t.snapEvery.Store(uint64(every))
	t.BuildSnapshot()
}

// maybeSnapshot schedules a background rebuild when auto snapshots are
// enabled and the current snapshot is at least minStale mutations
// behind (minStale 0 means the configured interval). Single-flight:
// while one builder runs, further triggers are dropped; the next
// mutation or missed lookup re-arms.
func (t *Table) maybeSnapshot(minStale uint64) {
	every := t.snapEvery.Load()
	if every == 0 {
		return
	}
	if minStale == 0 {
		minStale = every
	}
	if s := t.snap.Load(); s != nil && t.version.Load()-s.version < minStale {
		return
	}
	if !t.snapBuilding.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer t.snapBuilding.Store(false)
		t.BuildSnapshot()
	}()
}
