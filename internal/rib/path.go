package rib

import (
	"fmt"
	"net/netip"
	"sync/atomic"

	"repro/internal/bgp"
)

// Path is one route for one prefix as learned from one peer, together
// with the metadata the decision process needs.
type Path struct {
	// Prefix is the destination.
	Prefix netip.Prefix
	// ID is the ADD-PATH identifier the route was received with (zero
	// when the session did not negotiate ADD-PATH).
	ID bgp.PathID
	// Attrs are the route's path attributes.
	Attrs *bgp.PathAttrs

	// Peer identifies the session the route was learned from (vBGP uses
	// the neighbor name).
	Peer string
	// PeerAddr is the peer's transport address, the final decision
	// tiebreaker.
	PeerAddr netip.Addr
	// PeerRouterID is the peer's BGP identifier.
	PeerRouterID netip.Addr
	// EBGP records whether the route came over an external session.
	EBGP bool
	// IGPMetric is the cost to reach the BGP next hop.
	IGPMetric uint32
	// Seq orders route arrival: lower is older. Assigned by NextSeq.
	Seq uint64
	// Stale marks a path retained across a graceful restart (RFC 4724):
	// the session that taught it died, but the peer negotiated graceful
	// restart, so the path stays usable until re-advertisement replaces
	// it or SweepStale removes it. Re-adding the same (Peer, ID)
	// replaces the stale copy, clearing the mark.
	Stale bool
	// Damped marks a path suppressed by RFC 2439 flap damping: it stays
	// in the adj-RIB-in (so it can be reused when the penalty decays
	// below the reuse threshold) but must not be exported. The guard
	// layer owns the penalty state; the flag is bookkeeping for
	// visibility and export filtering.
	Damped bool
}

var seqCounter atomic.Uint64

// NextSeq returns a monotonically increasing sequence number used to
// implement the "prefer oldest" tiebreak.
func NextSeq() uint64 { return seqCounter.Add(1) }

// LocalPref returns the path's LOCAL_PREF, applying the conventional
// default of 100 when the attribute is absent.
func (p *Path) LocalPref() uint32 {
	if p.Attrs != nil && p.Attrs.HasLocalPref {
		return p.Attrs.LocalPref
	}
	return 100
}

// MED returns the path's MULTI_EXIT_DISC, defaulting to 0 when absent.
func (p *Path) MED() uint32 {
	if p.Attrs != nil && p.Attrs.HasMED {
		return p.Attrs.MED
	}
	return 0
}

// NextHop returns the protocol next hop: the IPv4 NEXT_HOP or the
// MP_REACH next hop for IPv6 routes.
func (p *Path) NextHop() netip.Addr {
	if p.Attrs == nil {
		return netip.Addr{}
	}
	if p.Prefix.Addr().Is6() {
		return p.Attrs.MPNextHop
	}
	return p.Attrs.NextHop
}

// String formats the path for logs.
func (p *Path) String() string {
	return fmt.Sprintf("%s via %s peer=%s %s", p.Prefix, p.NextHop(), p.Peer, p.Attrs)
}

// Best implements the RFC 4271 §9.1.2.2 decision process (with the
// conventional vendor extensions) over a set of paths for the same
// prefix. It returns nil for an empty slice. Order of evaluation:
//
//  1. highest LOCAL_PREF
//  2. shortest AS path
//  3. lowest ORIGIN (IGP < EGP < INCOMPLETE)
//  4. lowest MED, compared only between routes from the same
//     neighboring AS
//  5. eBGP preferred over iBGP
//  6. lowest IGP metric to the next hop
//  7. oldest route (lowest Seq)
//  8. lowest peer router ID
//  9. lowest peer address
func Best(paths []*Path) *Path {
	var best *Path
	for _, p := range paths {
		if p == nil {
			continue
		}
		if best == nil || better(p, best) {
			best = p
		}
	}
	return best
}

// better reports whether a beats b under the decision process.
func better(a, b *Path) bool {
	if la, lb := a.LocalPref(), b.LocalPref(); la != lb {
		return la > lb
	}
	if la, lb := a.Attrs.ASPathLen(), b.Attrs.ASPathLen(); la != lb {
		return la < lb
	}
	oa, ob := originRank(a), originRank(b)
	if oa != ob {
		return oa < ob
	}
	// MED comparison applies only between routes via the same
	// neighboring AS (RFC 4271 §9.1.2.2 c).
	if a.Attrs.FirstASN() == b.Attrs.FirstASN() {
		if ma, mb := a.MED(), b.MED(); ma != mb {
			return ma < mb
		}
	}
	if a.EBGP != b.EBGP {
		return a.EBGP
	}
	if a.IGPMetric != b.IGPMetric {
		return a.IGPMetric < b.IGPMetric
	}
	if a.Seq != b.Seq {
		return a.Seq < b.Seq
	}
	if a.PeerRouterID != b.PeerRouterID {
		return a.PeerRouterID.Less(b.PeerRouterID)
	}
	return a.PeerAddr.Less(b.PeerAddr)
}

func originRank(p *Path) uint8 {
	if p.Attrs == nil || !p.Attrs.HasOrigin {
		return bgp.OriginIncomplete
	}
	return p.Attrs.Origin
}
