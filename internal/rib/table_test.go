package rib

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sync"
	"testing"

	"repro/internal/bgp"
)

func attrsVia(asns ...uint32) *bgp.PathAttrs {
	return &bgp.PathAttrs{
		Origin: bgp.OriginIGP, HasOrigin: true,
		ASPath:  []bgp.ASPathSegment{{Type: bgp.ASSequence, ASNs: asns}},
		NextHop: ip("192.0.2.1"),
	}
}

func path(prefix string, peer string, id bgp.PathID, asns ...uint32) *Path {
	return &Path{
		Prefix: pfx(prefix), ID: id, Peer: peer,
		Attrs: attrsVia(asns...),
		EBGP:  true, Seq: NextSeq(),
		PeerAddr: ip("10.0.0.1"), PeerRouterID: ip("10.0.0.1"),
	}
}

func TestTableAddWithdraw(t *testing.T) {
	tb := NewTable("test")
	p1 := path("10.0.0.0/24", "n1", 0, 65001)
	p2 := path("10.0.0.0/24", "n2", 0, 65002, 65003)
	tb.Add(p1)
	tb.Add(p2)
	if tb.Prefixes() != 1 || tb.PathCount() != 2 {
		t.Fatalf("prefixes=%d paths=%d", tb.Prefixes(), tb.PathCount())
	}
	if best := tb.Best(pfx("10.0.0.0/24")); best != p1 {
		t.Errorf("best = %v, want shorter path via n1", best)
	}
	if got := tb.Withdraw(pfx("10.0.0.0/24"), "n1", 0); got != p1 {
		t.Errorf("withdraw returned %v", got)
	}
	if best := tb.Best(pfx("10.0.0.0/24")); best != p2 {
		t.Errorf("best after withdraw = %v", best)
	}
	tb.Withdraw(pfx("10.0.0.0/24"), "n2", 0)
	if tb.Prefixes() != 0 || tb.PathCount() != 0 {
		t.Errorf("table not empty: prefixes=%d paths=%d", tb.Prefixes(), tb.PathCount())
	}
}

func TestTableImplicitWithdraw(t *testing.T) {
	tb := NewTable("test")
	tb.Add(path("10.0.0.0/24", "n1", 0, 65001))
	replaced := tb.Add(path("10.0.0.0/24", "n1", 0, 65001, 65002))
	if replaced == nil {
		t.Fatal("re-announce did not replace")
	}
	if tb.PathCount() != 1 {
		t.Errorf("paths = %d, want 1", tb.PathCount())
	}
	if got := tb.Best(pfx("10.0.0.0/24")); got.Attrs.ASPathLen() != 2 {
		t.Errorf("stale path survived: %v", got)
	}
}

func TestTableAddPathIDsDistinct(t *testing.T) {
	tb := NewTable("test")
	tb.Add(path("10.0.0.0/24", "vbgp", 1, 65001))
	tb.Add(path("10.0.0.0/24", "vbgp", 2, 65002))
	if tb.PathCount() != 2 {
		t.Errorf("paths with distinct IDs = %d, want 2", tb.PathCount())
	}
	tb.Withdraw(pfx("10.0.0.0/24"), "vbgp", 1)
	if tb.PathCount() != 1 {
		t.Errorf("paths after ID-1 withdraw = %d", tb.PathCount())
	}
	if best := tb.Best(pfx("10.0.0.0/24")); best.ID != 2 {
		t.Errorf("remaining path ID = %d", best.ID)
	}
}

func TestTableWithdrawPeer(t *testing.T) {
	tb := NewTable("test")
	for i := 0; i < 10; i++ {
		tb.Add(path(fmt.Sprintf("10.%d.0.0/16", i), "down", 0, 65001))
		tb.Add(path(fmt.Sprintf("10.%d.0.0/16", i), "up", 0, 65002))
	}
	tb.Add(path("172.16.0.0/12", "down", 0, 65001))
	removed := tb.WithdrawPeer("down")
	if len(removed) != 11 {
		t.Fatalf("removed %d paths, want 11", len(removed))
	}
	if tb.Prefixes() != 10 || tb.PathCount() != 10 {
		t.Errorf("prefixes=%d paths=%d after peer withdraw", tb.Prefixes(), tb.PathCount())
	}
	if tb.Best(pfx("172.16.0.0/12")) != nil {
		t.Error("peer-only prefix survived")
	}
}

func TestTableLookupLPM(t *testing.T) {
	tb := NewTable("test")
	tb.Add(path("0.0.0.0/0", "transit", 0, 65001))
	tb.Add(path("192.168.0.0/16", "peer", 0, 65002))
	if got := tb.Lookup(ip("192.168.1.1")); got.Peer != "peer" {
		t.Errorf("LPM chose %v", got)
	}
	if got := tb.Lookup(ip("8.8.8.8")); got.Peer != "transit" {
		t.Errorf("default chose %v", got)
	}
}

func TestTableConcurrentAccess(t *testing.T) {
	tb := NewTable("test")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				p := path(fmt.Sprintf("10.%d.%d.0/24", g, i%250), fmt.Sprintf("n%d", g), 0, 65001)
				tb.Add(p)
				tb.Lookup(ip("10.1.1.1"))
				if i%3 == 0 {
					tb.Withdraw(p.Prefix, p.Peer, 0)
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestDecisionLocalPref(t *testing.T) {
	a := path("10.0.0.0/24", "a", 0, 65001, 65002, 65003)
	a.Attrs.LocalPref, a.Attrs.HasLocalPref = 200, true
	b := path("10.0.0.0/24", "b", 0, 65001)
	if Best([]*Path{a, b}) != a {
		t.Error("higher local-pref should beat shorter path")
	}
}

func TestDecisionASPathLen(t *testing.T) {
	a := path("10.0.0.0/24", "a", 0, 65001, 65002)
	b := path("10.0.0.0/24", "b", 0, 65001)
	if Best([]*Path{a, b}) != b {
		t.Error("shorter AS path should win")
	}
}

func TestDecisionOrigin(t *testing.T) {
	a := path("10.0.0.0/24", "a", 0, 65001)
	a.Attrs.Origin = bgp.OriginIncomplete
	b := path("10.0.0.0/24", "b", 0, 65002)
	b.Attrs.Origin = bgp.OriginIGP
	if Best([]*Path{a, b}) != b {
		t.Error("IGP origin should beat incomplete")
	}
}

func TestDecisionMEDSameNeighborOnly(t *testing.T) {
	// Same neighboring AS: MED compared.
	a := path("10.0.0.0/24", "a", 0, 65001)
	a.Attrs.MED, a.Attrs.HasMED = 100, true
	b := path("10.0.0.0/24", "b", 0, 65001)
	b.Attrs.MED, b.Attrs.HasMED = 10, true
	if Best([]*Path{a, b}) != b {
		t.Error("lower MED from same AS should win")
	}
	// Different neighboring AS: MED ignored, falls through to later
	// tiebreaks (here: seq/age, a is older).
	c := path("10.0.0.0/24", "c", 0, 65002)
	c.Attrs.MED, c.Attrs.HasMED = 1000, true
	d := path("10.0.0.0/24", "d", 0, 65003)
	d.Attrs.MED, d.Attrs.HasMED = 1, true
	if Best([]*Path{c, d}) != c {
		t.Error("MED must not compare across neighbor ASes")
	}
}

func TestDecisionEBGPOverIBGP(t *testing.T) {
	a := path("10.0.0.0/24", "a", 0, 65001)
	a.EBGP = false
	a.Seq = 1
	b := path("10.0.0.0/24", "b", 0, 65002)
	b.EBGP = true
	b.Seq = 2
	if Best([]*Path{a, b}) != b {
		t.Error("eBGP should beat iBGP")
	}
}

func TestDecisionIGPMetricAndAge(t *testing.T) {
	a := path("10.0.0.0/24", "a", 0, 65001)
	a.IGPMetric = 10
	b := path("10.0.0.0/24", "b", 0, 65002)
	b.IGPMetric = 5
	if Best([]*Path{a, b}) != b {
		t.Error("lower IGP metric should win")
	}
	c := path("10.0.0.0/24", "c", 0, 65001)
	d := path("10.0.0.0/24", "d", 0, 65002)
	if c.Seq >= d.Seq {
		t.Fatal("seq not monotonic")
	}
	if Best([]*Path{d, c}) != c {
		t.Error("older route should win")
	}
}

func TestDecisionRouterIDTiebreak(t *testing.T) {
	a := path("10.0.0.0/24", "a", 0, 65001)
	b := path("10.0.0.0/24", "b", 0, 65002)
	b.Seq = a.Seq // force equal age
	a.PeerRouterID = ip("10.0.0.9")
	b.PeerRouterID = ip("10.0.0.1")
	if Best([]*Path{a, b}) != b {
		t.Error("lower router ID should win")
	}
}

func TestDecisionEmptyAndNil(t *testing.T) {
	if Best(nil) != nil {
		t.Error("Best(nil) should be nil")
	}
	if Best([]*Path{nil}) != nil {
		t.Error("Best([nil]) should be nil")
	}
}

func TestPathAccessors(t *testing.T) {
	p := path("10.0.0.0/24", "x", 0, 65001)
	if p.LocalPref() != 100 {
		t.Errorf("default local-pref = %d", p.LocalPref())
	}
	if p.MED() != 0 {
		t.Errorf("default MED = %d", p.MED())
	}
	if p.NextHop() != ip("192.0.2.1") {
		t.Errorf("next hop = %s", p.NextHop())
	}
	v6 := &Path{Prefix: pfx("2001:db8::/32"), Attrs: &bgp.PathAttrs{MPNextHop: ip("2001:db8::1")}}
	if v6.NextHop() != ip("2001:db8::1") {
		t.Errorf("v6 next hop = %s", v6.NextHop())
	}
}

func TestFIB(t *testing.T) {
	f := NewFIB("n1")
	f.Set(pfx("0.0.0.0/0"), FIBEntry{NextHop: ip("1.1.1.1"), Out: "n1"})
	f.Set(pfx("192.168.0.0/16"), FIBEntry{NextHop: ip("2.2.2.2"), Out: "n1"})
	e, ok := f.Lookup(ip("192.168.3.4"))
	if !ok || e.NextHop != ip("2.2.2.2") {
		t.Errorf("FIB LPM = %+v,%v", e, ok)
	}
	e, ok = f.Lookup(ip("9.9.9.9"))
	if !ok || e.NextHop != ip("1.1.1.1") {
		t.Errorf("FIB default = %+v,%v", e, ok)
	}
	if f.Len() != 2 {
		t.Errorf("FIB len = %d", f.Len())
	}
	if !f.Delete(pfx("192.168.0.0/16")) {
		t.Error("FIB delete failed")
	}
	e, _ = f.Lookup(ip("192.168.3.4"))
	if e.NextHop != ip("1.1.1.1") {
		t.Error("FIB delete did not take effect")
	}
	n := 0
	f.Walk(func(netip.Prefix, FIBEntry) bool { n++; return true })
	if n != 1 {
		t.Errorf("FIB walk visited %d", n)
	}
}

func TestBestInvariantUnderPermutation(t *testing.T) {
	// The decision process must be a pure function of the path set, not
	// of arrival order (given distinct tiebreak keys).
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(6)
		paths := make([]*Path, n)
		for i := range paths {
			p := path("10.0.0.0/24", fmt.Sprintf("n%d", i), 0, 65001, uint32(65002+rng.Intn(5)))
			p.Attrs.LocalPref, p.Attrs.HasLocalPref = uint32(100+rng.Intn(3)*10), true
			p.Attrs.MED, p.Attrs.HasMED = uint32(rng.Intn(50)), true
			p.EBGP = rng.Intn(2) == 0
			p.IGPMetric = uint32(rng.Intn(4))
			p.PeerRouterID = ip(fmt.Sprintf("10.0.0.%d", i+1))
			p.PeerAddr = p.PeerRouterID
			paths[i] = p
		}
		want := Best(paths)
		for perm := 0; perm < 10; perm++ {
			shuffled := append([]*Path(nil), paths...)
			rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
			if got := Best(shuffled); got != want {
				t.Fatalf("trial %d: best depends on order: %v vs %v", trial, got, want)
			}
		}
	}
}
