package rib

import "net/netip"

// Flap-damping suppression (RFC 2439): a suppressed route is withheld
// from export but retained in the adj-RIB-in so the original
// announcement survives the suppression window and can be re-exported
// the moment the penalty decays below the reuse threshold. The guard
// layer decides *when* a route is suppressed; these helpers record the
// verdict on the stored paths.

// MarkDamped sets or clears the Damped flag on every path for prefix
// learned from peer, returning the number of paths whose flag changed.
// Like MarkPeerStale it is copy-on-write: shared *Path values are never
// mutated, so concurrent readers holding an old slice see consistent
// state. Note that re-adding a path through Table.Add installs a fresh
// (unmarked) copy; callers re-mark on each suppressed update.
func (t *Table) MarkDamped(prefix netip.Prefix, peer string, damped bool) int {
	sh := t.shardFor(prefix)
	t.lockWrite(sh)
	defer sh.mu.Unlock()
	paths, ok := sh.trie.Get(prefix)
	if !ok {
		return 0
	}
	changed := false
	for _, e := range paths {
		if e.Peer == peer && e.Damped != damped {
			changed = true
			break
		}
	}
	if !changed {
		return 0
	}
	out := make([]*Path, len(paths))
	copy(out, paths)
	marked := 0
	for i, e := range out {
		if e.Peer == peer && e.Damped != damped {
			c := *e
			c.Damped = damped
			out[i] = &c
			marked++
		}
	}
	sh.trie.Insert(prefix, out)
	return marked
}

// DampedCount returns how many paths are currently marked damped
// (all peers, both families).
func (t *Table) DampedCount() int {
	n := 0
	t.rlockAll()
	defer t.runlockAll()
	t.walkLocked(func(_ netip.Prefix, paths []*Path) bool {
		for _, e := range paths {
			if e.Damped {
				n++
			}
		}
		return true
	})
	return n
}
