package rib

import "repro/internal/telemetry"

// Route-churn counters aggregated across every table in the process
// (per-table counts stay on the Table — see Table.Stats — for the
// Fig. 6b accounting). ribPaths tracks live paths; tables that are dropped
// wholesale (e.g. a neighbor removed with its Adj-RIBs) leave their
// residue in the gauge, which is acceptable for an occupancy signal.
var (
	ribAdds      *telemetry.Counter
	ribWithdraws *telemetry.Counter
	ribPaths     *telemetry.Gauge
	// ribStaleMarked counts paths marked stale at graceful-restart
	// session drops; ribStaleSwept counts stale paths removed because
	// the restart window lapsed or End-of-RIB arrived without
	// re-advertisement.
	ribStaleMarked *telemetry.Counter
	ribStaleSwept  *telemetry.Counter
	// ribStaleAdopted counts stale paths re-claimed in place by a
	// restarted control plane (AdoptPath) instead of re-announced.
	ribStaleAdopted *telemetry.Counter
	// ribSnapshotBuilds counts FIB-snapshot rebuilds (explicit and
	// auto-maintained) across every table.
	ribSnapshotBuilds *telemetry.Counter
)

func init() {
	reg := telemetry.Default()
	ribAdds = reg.Counter("rib_adds_total")
	ribWithdraws = reg.Counter("rib_withdraws_total")
	ribPaths = reg.Gauge("rib_paths")
	ribStaleMarked = reg.Counter("rib_stale_marked_total")
	ribStaleSwept = reg.Counter("rib_stale_swept_total")
	ribStaleAdopted = reg.Counter("rib_stale_adopted_total")
	ribSnapshotBuilds = reg.Counter("rib_snapshot_builds_total")
}
