package rib

import (
	"math/bits"
	"net/netip"
	"sync"
	"sync/atomic"

	"repro/internal/bgp"
)

// DefaultShards is the shard count NewTable uses. Sixteen shards keep
// the per-table fixed cost negligible (a few empty trie roots) while
// removing essentially all write-lock contention at full-table scale —
// the paper's AMS-IX PoP carries 2.7M routes across 854 peers (§4.2),
// and a single-lock trie serializes every one of them.
const DefaultShards = 16

// maxShards caps the shard count at 256 so the shard index always fits
// in the leading byte of the address.
const maxShards = 256

// shard is one slice of a Table: a lock and the trie it guards.
type shard struct {
	mu   sync.RWMutex
	trie *DualTrie[[]*Path]
}

// Table is a routing information base holding, per prefix, every path
// currently known. It serves as an Adj-RIB-In (holding one peer's paths),
// an Adj-RIB-Out, or a Loc-RIB (holding all peers' paths), depending on
// what the caller feeds it. Paths are keyed by (Peer, ID) within a
// prefix: adding a path with the same key replaces the previous one, the
// implicit-withdraw rule of RFC 4271 §3.1.
//
// The table is sharded by prefix range: a prefix's leading shardBits
// bits select its shard, each shard has its own lock and trie, and
// prefixes too short to have shardBits bits land in a spill shard.
// Because all prefixes that can contain an address share its leading
// bits (or are shorter than shardBits), longest-prefix match needs at
// most one shard plus the spill — never a cross-shard search. Counters
// are lock-free atomics, so stats readers never touch shard locks.
//
// Table is safe for concurrent use.
type Table struct {
	// Name labels the table in logs ("loc-rib", "adj-in:AMS-IX-RS1", ...).
	Name string

	shardBits uint8
	shards    []*shard
	spill     *shard // prefixes shorter than shardBits

	paths     atomic.Int64
	adds      atomic.Uint64
	withdraws atomic.Uint64

	// version counts mutations; it is bumped inside the shard critical
	// section, so a snapshot built under all shard read locks observes a
	// stable value that exactly identifies the table state it captured.
	version atomic.Uint64

	// snap is the current copy-on-write FIB snapshot (see snapshot.go).
	snap         atomic.Pointer[Snapshot]
	snapEvery    atomic.Uint64
	snapBuilding atomic.Bool

	// Read/write accounting, all lock-free. writeLocks counts shard
	// write-lock acquisitions and is incremented only on mutation paths:
	// the ribscale benchmark guard asserts its delta stays zero across a
	// pure-lookup phase, catching any accidental serialization of reads.
	lookups       atomic.Uint64
	snapLookups   atomic.Uint64
	lockedLookups atomic.Uint64
	writeLocks    atomic.Uint64
}

// NewTable creates an empty table with DefaultShards shards.
func NewTable(name string) *Table { return NewTableShards(name, DefaultShards) }

// NewTableShards creates an empty table with the given shard count,
// rounded up to a power of two and clamped to [1, 256]. shards=1 is the
// pre-sharding single-lock layout; the ribscale benchmark uses it as
// its contention baseline.
func NewTableShards(name string, shards int) *Table {
	if shards < 1 {
		shards = 1
	}
	if shards > maxShards {
		shards = maxShards
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	t := &Table{
		Name:      name,
		shardBits: uint8(bits.TrailingZeros(uint(n))),
		shards:    make([]*shard, n),
		spill:     &shard{trie: NewDualTrie[[]*Path]()},
	}
	for i := range t.shards {
		t.shards[i] = &shard{trie: NewDualTrie[[]*Path]()}
	}
	return t
}

// shardIndex maps a prefix to its shard: the leading shardBits bits of
// the address, or len(shards) (the spill) for prefixes too short to
// have them.
func (t *Table) shardIndex(p netip.Prefix) int {
	if t.shardBits == 0 {
		return 0
	}
	if p.Bits() < int(t.shardBits) {
		return len(t.shards)
	}
	return t.addrShard(p.Addr())
}

// addrShard returns the index of the shard owning prefixes that start
// at addr (callers must handle the spill themselves).
func (t *Table) addrShard(a netip.Addr) int {
	if t.shardBits == 0 {
		return 0
	}
	var b0 byte
	if a.Is6() {
		b0 = a.As16()[0]
	} else {
		b0 = a.As4()[0]
	}
	return int(b0 >> (8 - t.shardBits))
}

func (t *Table) shardAt(i int) *shard {
	if i == len(t.shards) {
		return t.spill
	}
	return t.shards[i]
}

func (t *Table) shardFor(p netip.Prefix) *shard { return t.shardAt(t.shardIndex(p)) }

// lockWrite acquires sh's write lock, counting the acquisition and
// bumping the mutation version inside the critical section.
func (t *Table) lockWrite(sh *shard) {
	t.writeLocks.Add(1)
	sh.mu.Lock()
	t.version.Add(1)
}

// rlockAll takes every lock in the table (spill first, then shards in
// index order) for operations that need an atomic cross-shard view.
// Mutators only ever hold one shard lock at a time, so the fixed order
// cannot deadlock against them.
func (t *Table) rlockAll() {
	t.spill.mu.RLock()
	for _, sh := range t.shards {
		sh.mu.RLock()
	}
}

func (t *Table) runlockAll() {
	for i := len(t.shards) - 1; i >= 0; i-- {
		t.shards[i].mu.RUnlock()
	}
	t.spill.mu.RUnlock()
}

// eachShard visits every shard including the spill.
func (t *Table) eachShard(fn func(sh *shard)) {
	for _, sh := range t.shards {
		fn(sh)
	}
	if t.shardBits > 0 {
		fn(t.spill)
	}
}

// Add inserts or replaces the path identified by (p.Peer, p.ID) for
// p.Prefix. It returns the path it replaced, if any.
func (t *Table) Add(p *Path) *Path {
	sh := t.shardFor(p.Prefix)
	t.lockWrite(sh)
	replaced := t.addLocked(sh, p)
	sh.mu.Unlock()
	t.adds.Add(1)
	ribAdds.Inc()
	if replaced == nil {
		t.paths.Add(1)
		ribPaths.Add(1)
	}
	t.maybeSnapshot(0)
	return replaced
}

// AddBatch inserts every path, grouping them by shard so each shard's
// write lock is taken at most once per call instead of once per path,
// with churn counters updated once per batch.
func (t *Table) AddBatch(paths []*Path) {
	if len(paths) == 0 {
		return
	}
	fresh := 0
	if t.shardBits == 0 {
		sh := t.shards[0]
		t.lockWrite(sh)
		for _, p := range paths {
			if t.addLocked(sh, p) == nil {
				fresh++
			}
		}
		sh.mu.Unlock()
	} else {
		buckets := make([][]*Path, len(t.shards)+1)
		for _, p := range paths {
			i := t.shardIndex(p.Prefix)
			buckets[i] = append(buckets[i], p)
		}
		for i, group := range buckets {
			if len(group) == 0 {
				continue
			}
			sh := t.shardAt(i)
			t.lockWrite(sh)
			for _, p := range group {
				if t.addLocked(sh, p) == nil {
					fresh++
				}
			}
			sh.mu.Unlock()
		}
	}
	t.adds.Add(uint64(len(paths)))
	ribAdds.Add(uint64(len(paths)))
	if fresh > 0 {
		t.paths.Add(int64(fresh))
		ribPaths.Add(int64(fresh))
	}
	t.maybeSnapshot(0)
}

// addLocked inserts p under sh's write lock and returns the replaced
// path, if any. Callers maintain the add/path counters.
func (t *Table) addLocked(sh *shard, p *Path) *Path {
	var replaced *Path
	sh.trie.Upsert(p.Prefix, func(existing []*Path, _ bool) []*Path {
		for i, e := range existing {
			if e.Peer == p.Peer && e.ID == p.ID {
				out := make([]*Path, len(existing))
				copy(out, existing)
				out[i] = p
				replaced = e
				return out
			}
		}
		return append(append(make([]*Path, 0, len(existing)+1), existing...), p)
	})
	return replaced
}

// Withdraw removes the path identified by (peer, id) for prefix,
// returning the removed path or nil.
func (t *Table) Withdraw(prefix netip.Prefix, peer string, id bgp.PathID) *Path {
	sh := t.shardFor(prefix)
	t.lockWrite(sh)
	removed := t.withdrawLocked(sh, prefix, peer, id)
	sh.mu.Unlock()
	t.withdraws.Add(1)
	ribWithdraws.Inc()
	if removed != nil {
		t.paths.Add(-1)
		ribPaths.Add(-1)
	}
	t.maybeSnapshot(0)
	return removed
}

// WithdrawRequest names one path to remove: the (prefix, peer, path ID)
// key of the implicit-withdraw rule.
type WithdrawRequest struct {
	Prefix netip.Prefix
	Peer   string
	ID     bgp.PathID
}

// WithdrawBatch removes the named paths, taking each shard's write lock
// at most once. The result is aligned with reqs: removed[i] is the path
// removed for reqs[i], or nil if it was not present.
func (t *Table) WithdrawBatch(reqs []WithdrawRequest) []*Path {
	removed := make([]*Path, len(reqs))
	if len(reqs) == 0 {
		return removed
	}
	buckets := make([][]int, len(t.shards)+1)
	for ri, r := range reqs {
		i := t.shardIndex(r.Prefix)
		buckets[i] = append(buckets[i], ri)
	}
	gone := 0
	for i, idxs := range buckets {
		if len(idxs) == 0 {
			continue
		}
		sh := t.shardAt(i)
		t.lockWrite(sh)
		for _, ri := range idxs {
			r := reqs[ri]
			if removed[ri] = t.withdrawLocked(sh, r.Prefix, r.Peer, r.ID); removed[ri] != nil {
				gone++
			}
		}
		sh.mu.Unlock()
	}
	t.withdraws.Add(uint64(len(reqs)))
	ribWithdraws.Add(uint64(len(reqs)))
	if gone > 0 {
		t.paths.Add(int64(-gone))
		ribPaths.Add(int64(-gone))
	}
	t.maybeSnapshot(0)
	return removed
}

// withdrawLocked removes the named path under sh's write lock. Callers
// maintain the withdraw/path counters.
func (t *Table) withdrawLocked(sh *shard, prefix netip.Prefix, peer string, id bgp.PathID) *Path {
	existing, ok := sh.trie.Get(prefix)
	if !ok {
		return nil
	}
	for i, e := range existing {
		if e.Peer == peer && e.ID == id {
			out := append(append([]*Path(nil), existing[:i]...), existing[i+1:]...)
			if len(out) == 0 {
				sh.trie.Remove(prefix)
			} else {
				sh.trie.Insert(prefix, out)
			}
			return e
		}
	}
	return nil
}

// WithdrawPeer removes every path learned from peer, returning the
// removed paths. Used when a session goes down. Shards are swept one at
// a time, so concurrent readers may briefly observe a partial removal.
func (t *Table) WithdrawPeer(peer string) []*Path {
	var removed []*Path
	t.eachShard(func(sh *shard) {
		t.lockWrite(sh)
		removed = append(removed, t.removeMatchingLocked(sh, func(_ netip.Prefix, e *Path) bool {
			return e.Peer == peer
		})...)
		sh.mu.Unlock()
	})
	n := len(removed)
	t.paths.Add(-int64(n))
	t.withdraws.Add(uint64(n))
	ribWithdraws.Add(uint64(n))
	ribPaths.Add(-int64(n))
	t.maybeSnapshot(0)
	return removed
}

// removeMatchingLocked removes every path in sh for which match returns
// true, returning them. The caller holds sh's write lock and owns the
// path/withdraw counter updates.
func (t *Table) removeMatchingLocked(sh *shard, match func(p netip.Prefix, e *Path) bool) []*Path {
	var removed []*Path
	var updates []tableEntry
	sh.trie.Walk(func(p netip.Prefix, paths []*Path) bool {
		var left []*Path
		for _, e := range paths {
			if match(p, e) {
				removed = append(removed, e)
			} else {
				left = append(left, e)
			}
		}
		if len(left) != len(paths) {
			updates = append(updates, tableEntry{p, left})
		}
		return true
	})
	for _, u := range updates {
		if len(u.paths) == 0 {
			sh.trie.Remove(u.prefix)
		} else {
			sh.trie.Insert(u.prefix, u.paths)
		}
	}
	return removed
}

// Paths returns the paths known for prefix (shared slice: do not modify).
func (t *Table) Paths(prefix netip.Prefix) []*Path {
	sh := t.shardFor(prefix)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	paths, _ := sh.trie.Get(prefix)
	return paths
}

// Best returns the decision-process winner for prefix, or nil.
func (t *Table) Best(prefix netip.Prefix) *Path {
	return Best(t.Paths(prefix))
}

// Lookup returns the best path for the longest prefix containing addr.
//
// When a fresh FIB snapshot exists (see BuildSnapshot) the lookup is
// answered from it without touching any lock; otherwise it falls back
// to the owning shard's read lock (plus the spill for short prefixes).
// The snapshot is consulted only when its version matches the table's
// mutation counter, so a stale snapshot is never served.
func (t *Table) Lookup(addr netip.Addr) *Path {
	t.lookups.Add(1)
	if s := t.snap.Load(); s != nil && s.version == t.version.Load() {
		t.snapLookups.Add(1)
		return s.Lookup(addr)
	}
	t.lockedLookups.Add(1)
	t.maybeSnapshot(1)
	sh := t.shards[t.addrShard(addr)]
	sh.mu.RLock()
	_, paths, ok := sh.trie.Lookup(addr)
	sh.mu.RUnlock()
	if !ok && t.shardBits > 0 {
		// No match among prefixes long enough to be sharded; the only
		// remaining candidates are the short (super-net) prefixes in the
		// spill shard.
		t.spill.mu.RLock()
		_, paths, ok = t.spill.trie.Lookup(addr)
		t.spill.mu.RUnlock()
	}
	if !ok {
		return nil
	}
	return Best(paths)
}

// tableEntry pairs a prefix with its paths, for buffered walks.
type tableEntry struct {
	prefix netip.Prefix
	paths  []*Path
}

// cmpPrefix orders prefixes of one address family by (address, length)
// — exactly the order a single trie's depth-first walk produces.
func cmpPrefix(a, b netip.Prefix) int {
	if c := a.Addr().Compare(b.Addr()); c != 0 {
		return c
	}
	return a.Bits() - b.Bits()
}

// Walk visits every prefix and its paths, IPv4 first then IPv6, each
// family ordered by (address, prefix length). The order is identical
// for every shard count — shard i holds only prefixes whose leading
// bits equal i, so visiting shards in index order and merge-sorting the
// spill in keeps history segments and CLI dumps byte-stable. All shard
// locks are held for the duration, so the view is atomic. The callback
// must not retain or modify the slice.
func (t *Table) Walk(fn func(prefix netip.Prefix, paths []*Path) bool) {
	t.rlockAll()
	defer t.runlockAll()
	t.walkLocked(fn)
}

// walkLocked implements Walk; callers hold all shard read locks (or
// otherwise have exclusive access).
func (t *Table) walkLocked(fn func(prefix netip.Prefix, paths []*Path) bool) {
	if t.walkFamilyLocked(false, fn) {
		t.walkFamilyLocked(true, fn)
	}
}

func (t *Table) walkFamilyLocked(v6 bool, fn func(prefix netip.Prefix, paths []*Path) bool) bool {
	var spill []tableEntry
	if t.shardBits > 0 {
		t.spill.trie.walkFamily(v6, func(p netip.Prefix, paths []*Path) bool {
			spill = append(spill, tableEntry{p, paths})
			return true
		})
	}
	si := 0
	cont := true
	for _, sh := range t.shards {
		sh.trie.walkFamily(v6, func(p netip.Prefix, paths []*Path) bool {
			for si < len(spill) && cmpPrefix(spill[si].prefix, p) < 0 {
				if !fn(spill[si].prefix, spill[si].paths) {
					cont = false
					return false
				}
				si++
			}
			if !fn(p, paths) {
				cont = false
				return false
			}
			return true
		})
		if !cont {
			return false
		}
	}
	for ; si < len(spill); si++ {
		if !fn(spill[si].prefix, spill[si].paths) {
			return false
		}
	}
	return true
}

// WalkBest visits every prefix with its decision-process winner.
func (t *Table) WalkBest(fn func(prefix netip.Prefix, best *Path) bool) {
	t.Walk(func(p netip.Prefix, paths []*Path) bool {
		if b := Best(paths); b != nil {
			return fn(p, b)
		}
		return true
	})
}

// Prefixes returns the number of distinct prefixes in the table.
func (t *Table) Prefixes() int {
	t.rlockAll()
	defer t.runlockAll()
	n := t.spill.trie.Len()
	for _, sh := range t.shards {
		n += sh.trie.Len()
	}
	return n
}

// PathCount returns the total number of paths across all prefixes.
func (t *Table) PathCount() int { return int(t.paths.Load()) }

// AddCount returns the number of Add operations over the table's
// lifetime. Lock-free; safe to read concurrently with mutations.
func (t *Table) AddCount() uint64 { return t.adds.Load() }

// WithdrawCount returns the number of withdraw operations (including
// peer withdrawals and stale sweeps) over the table's lifetime.
func (t *Table) WithdrawCount() uint64 { return t.withdraws.Load() }

// TableStats is a point-in-time sample of a table's lock-free
// read/write accounting.
type TableStats struct {
	// Adds and Withdraws count mutations, for churn accounting in the
	// update-rate experiments (paper Fig. 6b).
	Adds      uint64
	Withdraws uint64
	// Lookups counts Lookup calls; SnapshotLookups of those were served
	// by the lock-free FIB snapshot, LockedLookups fell back to shard
	// read locks.
	Lookups         uint64
	SnapshotLookups uint64
	LockedLookups   uint64
	// WriteLocks counts shard write-lock acquisitions. Only mutations
	// acquire write locks; a pure-lookup phase must leave it unchanged.
	WriteLocks uint64
	// Version is the table's mutation counter; SnapshotVersion is the
	// mutation count captured by the current FIB snapshot (zero when no
	// snapshot exists). Equal values mean the snapshot is fresh.
	Version         uint64
	SnapshotVersion uint64
}

// Stats samples the table's counters without taking any lock.
func (t *Table) Stats() TableStats {
	st := TableStats{
		Adds:            t.adds.Load(),
		Withdraws:       t.withdraws.Load(),
		Lookups:         t.lookups.Load(),
		SnapshotLookups: t.snapLookups.Load(),
		LockedLookups:   t.lockedLookups.Load(),
		WriteLocks:      t.writeLocks.Load(),
		Version:         t.version.Load(),
	}
	if s := t.snap.Load(); s != nil {
		st.SnapshotVersion = s.version
	}
	return st
}

// ShardCount returns the number of range shards (excluding the spill).
func (t *Table) ShardCount() int { return len(t.shards) }

// FIBEntry is a forwarding table entry: the resolved next hop for a
// prefix and the logical output port.
type FIBEntry struct {
	NextHop netip.Addr
	// Out names the egress: a vBGP neighbor name or backbone peer.
	Out string
}

// FIB is a forwarding information base with longest-prefix-match lookup.
// vBGP maintains one FIB per BGP neighbor so that the destination MAC of
// each experiment frame selects the neighbor's table (paper §3.2.2).
type FIB struct {
	Name string

	mu   sync.RWMutex
	trie *DualTrie[FIBEntry]
}

// NewFIB creates an empty forwarding table.
func NewFIB(name string) *FIB {
	return &FIB{Name: name, trie: NewDualTrie[FIBEntry]()}
}

// Set installs or replaces the entry for prefix.
func (f *FIB) Set(prefix netip.Prefix, e FIBEntry) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.trie.Insert(prefix, e)
}

// Delete removes the entry for prefix.
func (f *FIB) Delete(prefix netip.Prefix) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.trie.Remove(prefix)
}

// Lookup returns the longest-prefix-match entry for addr.
func (f *FIB) Lookup(addr netip.Addr) (FIBEntry, bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	_, e, ok := f.trie.Lookup(addr)
	return e, ok
}

// Len returns the number of entries.
func (f *FIB) Len() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.trie.Len()
}

// Walk visits every entry.
func (f *FIB) Walk(fn func(prefix netip.Prefix, e FIBEntry) bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	f.trie.Walk(fn)
}
