package rib

import (
	"net/netip"
	"sync"

	"repro/internal/bgp"
)

// Table is a routing information base holding, per prefix, every path
// currently known. It serves as an Adj-RIB-In (holding one peer's paths),
// an Adj-RIB-Out, or a Loc-RIB (holding all peers' paths), depending on
// what the caller feeds it. Paths are keyed by (Peer, ID) within a
// prefix: adding a path with the same key replaces the previous one, the
// implicit-withdraw rule of RFC 4271 §3.1.
//
// Table is safe for concurrent use.
type Table struct {
	// Name labels the table in logs ("loc-rib", "adj-in:AMS-IX-RS1", ...).
	Name string

	mu    sync.RWMutex
	trie  *DualTrie[[]*Path]
	paths int

	// Adds and Withdraws count mutations, for churn accounting in the
	// update-rate experiments (paper Fig. 6b).
	Adds      uint64
	Withdraws uint64
}

// NewTable creates an empty table.
func NewTable(name string) *Table {
	return &Table{Name: name, trie: NewDualTrie[[]*Path]()}
}

// Add inserts or replaces the path identified by (p.Peer, p.ID) for
// p.Prefix. It returns the path it replaced, if any.
func (t *Table) Add(p *Path) *Path {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.Adds++
	ribAdds.Inc()
	existing, _ := t.trie.Get(p.Prefix)
	for i, e := range existing {
		if e.Peer == p.Peer && e.ID == p.ID {
			out := make([]*Path, len(existing))
			copy(out, existing)
			out[i] = p
			t.trie.Insert(p.Prefix, out)
			return e
		}
	}
	t.paths++
	ribPaths.Add(1)
	t.trie.Insert(p.Prefix, append(append([]*Path(nil), existing...), p))
	return nil
}

// Withdraw removes the path identified by (peer, id) for prefix,
// returning the removed path or nil.
func (t *Table) Withdraw(prefix netip.Prefix, peer string, id bgp.PathID) *Path {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.Withdraws++
	ribWithdraws.Inc()
	existing, ok := t.trie.Get(prefix)
	if !ok {
		return nil
	}
	for i, e := range existing {
		if e.Peer == peer && e.ID == id {
			out := append(append([]*Path(nil), existing[:i]...), existing[i+1:]...)
			t.paths--
			ribPaths.Add(-1)
			if len(out) == 0 {
				t.trie.Remove(prefix)
			} else {
				t.trie.Insert(prefix, out)
			}
			return e
		}
	}
	return nil
}

// WithdrawPeer removes every path learned from peer, returning the
// removed paths. Used when a session goes down.
func (t *Table) WithdrawPeer(peer string) []*Path {
	t.mu.Lock()
	defer t.mu.Unlock()
	var removed []*Path
	var updates []struct {
		p    netip.Prefix
		left []*Path
	}
	t.trie.Walk(func(p netip.Prefix, paths []*Path) bool {
		var left []*Path
		for _, e := range paths {
			if e.Peer == peer {
				removed = append(removed, e)
			} else {
				left = append(left, e)
			}
		}
		if len(left) != len(paths) {
			updates = append(updates, struct {
				p    netip.Prefix
				left []*Path
			}{p, left})
		}
		return true
	})
	for _, u := range updates {
		if len(u.left) == 0 {
			t.trie.Remove(u.p)
		} else {
			t.trie.Insert(u.p, u.left)
		}
	}
	t.paths -= len(removed)
	t.Withdraws += uint64(len(removed))
	ribWithdraws.Add(uint64(len(removed)))
	ribPaths.Add(-int64(len(removed)))
	return removed
}

// Paths returns the paths known for prefix (shared slice: do not modify).
func (t *Table) Paths(prefix netip.Prefix) []*Path {
	t.mu.RLock()
	defer t.mu.RUnlock()
	paths, _ := t.trie.Get(prefix)
	return paths
}

// Best returns the decision-process winner for prefix, or nil.
func (t *Table) Best(prefix netip.Prefix) *Path {
	return Best(t.Paths(prefix))
}

// Lookup returns the best path for the longest prefix containing addr.
func (t *Table) Lookup(addr netip.Addr) *Path {
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, paths, ok := t.trie.Lookup(addr)
	if !ok {
		return nil
	}
	return Best(paths)
}

// Walk visits every prefix and its paths. The callback must not retain or
// modify the slice.
func (t *Table) Walk(fn func(prefix netip.Prefix, paths []*Path) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.trie.Walk(fn)
}

// WalkBest visits every prefix with its decision-process winner.
func (t *Table) WalkBest(fn func(prefix netip.Prefix, best *Path) bool) {
	t.Walk(func(p netip.Prefix, paths []*Path) bool {
		if b := Best(paths); b != nil {
			return fn(p, b)
		}
		return true
	})
}

// Prefixes returns the number of distinct prefixes in the table.
func (t *Table) Prefixes() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.trie.Len()
}

// PathCount returns the total number of paths across all prefixes.
func (t *Table) PathCount() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.paths
}

// FIBEntry is a forwarding table entry: the resolved next hop for a
// prefix and the logical output port.
type FIBEntry struct {
	NextHop netip.Addr
	// Out names the egress: a vBGP neighbor name or backbone peer.
	Out string
}

// FIB is a forwarding information base with longest-prefix-match lookup.
// vBGP maintains one FIB per BGP neighbor so that the destination MAC of
// each experiment frame selects the neighbor's table (paper §3.2.2).
type FIB struct {
	Name string

	mu   sync.RWMutex
	trie *DualTrie[FIBEntry]
}

// NewFIB creates an empty forwarding table.
func NewFIB(name string) *FIB {
	return &FIB{Name: name, trie: NewDualTrie[FIBEntry]()}
}

// Set installs or replaces the entry for prefix.
func (f *FIB) Set(prefix netip.Prefix, e FIBEntry) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.trie.Insert(prefix, e)
}

// Delete removes the entry for prefix.
func (f *FIB) Delete(prefix netip.Prefix) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.trie.Remove(prefix)
}

// Lookup returns the longest-prefix-match entry for addr.
func (f *FIB) Lookup(addr netip.Addr) (FIBEntry, bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	_, e, ok := f.trie.Lookup(addr)
	return e, ok
}

// Len returns the number of entries.
func (f *FIB) Len() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.trie.Len()
}

// Walk visits every entry.
func (f *FIB) Walk(fn func(prefix netip.Prefix, e FIBEntry) bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	f.trie.Walk(fn)
}
