package rib

import "net/netip"

// Graceful-restart stale-path retention (RFC 4724 §4.2): when a session
// whose peer negotiated graceful restart drops, its Adj-RIB-In paths are
// marked stale instead of withdrawn, so forwarding continues while the
// peer restarts. Re-learning a path (same Peer and ID) replaces the
// stale copy through the normal Add path; whatever is still stale when
// End-of-RIB arrives — or when the restart timer lapses — is swept.

// MarkPeerStale marks every path learned from peer as stale, returning
// the number marked. Marking is copy-on-write: shared *Path values are
// never mutated, each marked slot gets a stale copy, so concurrent
// readers holding the old slice see consistent state.
func (t *Table) MarkPeerStale(peer string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	var updates []struct {
		p     netip.Prefix
		paths []*Path
	}
	marked := 0
	t.trie.Walk(func(p netip.Prefix, paths []*Path) bool {
		changed := false
		for _, e := range paths {
			if e.Peer == peer && !e.Stale {
				changed = true
				break
			}
		}
		if !changed {
			return true
		}
		out := make([]*Path, len(paths))
		copy(out, paths)
		for i, e := range out {
			if e.Peer == peer && !e.Stale {
				c := *e
				c.Stale = true
				out[i] = &c
				marked++
			}
		}
		updates = append(updates, struct {
			p     netip.Prefix
			paths []*Path
		}{p, out})
		return true
	})
	for _, u := range updates {
		t.trie.Insert(u.p, u.paths)
	}
	ribStaleMarked.Add(uint64(marked))
	return marked
}

// SweepStale removes every still-stale path learned from peer for the
// given family (v6 selects IPv6 prefixes), returning the removed paths.
// Paths re-learned since MarkPeerStale were replaced by fresh copies and
// survive. Safe to call late: it only ever removes paths still marked.
func (t *Table) SweepStale(peer string, v6 bool) []*Path {
	t.mu.Lock()
	defer t.mu.Unlock()
	var removed []*Path
	var updates []struct {
		p    netip.Prefix
		left []*Path
	}
	t.trie.Walk(func(p netip.Prefix, paths []*Path) bool {
		if p.Addr().Is6() != v6 {
			return true
		}
		var left []*Path
		for _, e := range paths {
			if e.Peer == peer && e.Stale {
				removed = append(removed, e)
			} else {
				left = append(left, e)
			}
		}
		if len(left) != len(paths) {
			updates = append(updates, struct {
				p    netip.Prefix
				left []*Path
			}{p, left})
		}
		return true
	})
	for _, u := range updates {
		if len(u.left) == 0 {
			t.trie.Remove(u.p)
		} else {
			t.trie.Insert(u.p, u.left)
		}
	}
	t.paths -= len(removed)
	t.Withdraws += uint64(len(removed))
	ribWithdraws.Add(uint64(len(removed)))
	ribStaleSwept.Add(uint64(len(removed)))
	ribPaths.Add(-int64(len(removed)))
	return removed
}

// StaleCount returns how many of peer's paths are currently stale
// (both families).
func (t *Table) StaleCount(peer string) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := 0
	t.trie.Walk(func(_ netip.Prefix, paths []*Path) bool {
		for _, e := range paths {
			if e.Peer == peer && e.Stale {
				n++
			}
		}
		return true
	})
	return n
}
