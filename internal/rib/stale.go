package rib

import (
	"net/netip"

	"repro/internal/bgp"
)

// Graceful-restart stale-path retention (RFC 4724 §4.2): when a session
// whose peer negotiated graceful restart drops, its Adj-RIB-In paths are
// marked stale instead of withdrawn, so forwarding continues while the
// peer restarts. Re-learning a path (same Peer and ID) replaces the
// stale copy through the normal Add path; whatever is still stale when
// End-of-RIB arrives — or when the restart timer lapses — is swept.

// MarkPeerStale marks every path learned from peer as stale, returning
// the number marked. Marking is copy-on-write: shared *Path values are
// never mutated, each marked slot gets a stale copy, so concurrent
// readers holding the old slice see consistent state. Shards are marked
// one at a time; readers may briefly see a partially marked table.
func (t *Table) MarkPeerStale(peer string) int {
	marked := 0
	t.eachShard(func(sh *shard) {
		t.lockWrite(sh)
		defer sh.mu.Unlock()
		var updates []tableEntry
		sh.trie.Walk(func(p netip.Prefix, paths []*Path) bool {
			changed := false
			for _, e := range paths {
				if e.Peer == peer && !e.Stale {
					changed = true
					break
				}
			}
			if !changed {
				return true
			}
			out := make([]*Path, len(paths))
			copy(out, paths)
			for i, e := range out {
				if e.Peer == peer && !e.Stale {
					c := *e
					c.Stale = true
					out[i] = &c
					marked++
				}
			}
			updates = append(updates, tableEntry{p, out})
			return true
		})
		for _, u := range updates {
			sh.trie.Insert(u.prefix, u.paths)
		}
	})
	ribStaleMarked.Add(uint64(marked))
	t.maybeSnapshot(0)
	return marked
}

// SweepStale removes every still-stale path learned from peer for the
// given family (v6 selects IPv6 prefixes), returning the removed paths.
// Paths re-learned since MarkPeerStale were replaced by fresh copies and
// survive. Safe to call late: it only ever removes paths still marked.
func (t *Table) SweepStale(peer string, v6 bool) []*Path {
	var removed []*Path
	t.eachShard(func(sh *shard) {
		t.lockWrite(sh)
		removed = append(removed, t.removeMatchingLocked(sh, func(p netip.Prefix, e *Path) bool {
			return p.Addr().Is6() == v6 && e.Peer == peer && e.Stale
		})...)
		sh.mu.Unlock()
	})
	n := len(removed)
	t.paths.Add(-int64(n))
	t.withdraws.Add(uint64(n))
	ribWithdraws.Add(uint64(n))
	ribStaleSwept.Add(uint64(n))
	ribPaths.Add(-int64(n))
	t.maybeSnapshot(0)
	return removed
}

// AdoptPath clears the stale mark on the path identified by the
// (prefix, peer, id) implicit-withdraw key, returning true when a
// stale copy was found. A restarted control plane calls this after
// verifying a graceful-restart-retained route still matches its
// recovered desired state: the route is re-claimed in place instead of
// re-announced, so no sweep removes it and no update budget is burned.
// Copy-on-write like MarkPeerStale — concurrent readers holding the
// old slice keep seeing consistent state.
func (t *Table) AdoptPath(prefix netip.Prefix, peer string, id bgp.PathID) bool {
	sh := t.shardFor(prefix)
	t.lockWrite(sh)
	adopted := false
	if paths, ok := sh.trie.Get(prefix); ok {
		for i, e := range paths {
			if e.Peer == peer && e.ID == id && e.Stale {
				out := make([]*Path, len(paths))
				copy(out, paths)
				c := *e
				c.Stale = false
				out[i] = &c
				sh.trie.Insert(prefix, out)
				adopted = true
				break
			}
		}
	}
	sh.mu.Unlock()
	if adopted {
		ribStaleAdopted.Inc()
		t.maybeSnapshot(0)
	}
	return adopted
}

// StaleCount returns how many of peer's paths are currently stale
// (both families).
func (t *Table) StaleCount(peer string) int {
	n := 0
	t.rlockAll()
	defer t.runlockAll()
	t.walkLocked(func(_ netip.Prefix, paths []*Path) bool {
		for _, e := range paths {
			if e.Peer == peer && e.Stale {
				n++
			}
		}
		return true
	})
	return n
}
