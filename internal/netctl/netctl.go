// Package netctl implements Peering's network controller (§5): it
// reconciles a vBGP server's actual network configuration with the
// intended state from the central configuration model, applying the
// minimum set of changes with transactional semantics.
//
// The controller never resets-and-rebuilds: configuration compatible
// with the intent is kept (so BGP sessions and tunnels survive config
// pushes), incompatible configuration is removed, and missing
// configuration is added. If any step fails, every applied step is
// rolled back so the node is never left in an inconsistent state.
//
// One Linux-specific quirk is modeled faithfully: an interface's primary
// address is whichever was added first and cannot be changed in place,
// yet Peering must control it because it sources ICMP errors. When the
// primary is wrong the controller removes and re-adds the interface's
// addresses in the intended order.
package netctl

import (
	"fmt"
	"net/netip"
	"sort"

	"repro/internal/ethernet"
	"repro/internal/netsim"
)

// IfaceIntent is the desired state of one interface.
type IfaceIntent struct {
	// Addrs in order; Addrs[0] is the intended primary address.
	Addrs []netip.Addr
	// ExtraMACs the interface must accept (vBGP's per-neighbor MACs).
	ExtraMACs []ethernet.MAC
}

// Intent is the desired network state of one node.
type Intent struct {
	// Ifaces maps interface name to desired state. Interfaces present
	// on the node but absent from the intent are left untouched (they
	// belong to other subsystems).
	Ifaces map[string]IfaceIntent
}

// Op is one reversible configuration change.
type Op struct {
	// Desc describes the op for logs and dry runs.
	Desc string

	apply  func() error
	revert func() error
}

// Controller reconciles intents against live interfaces.
type Controller struct {
	// Ifaces is the node's interface table.
	Ifaces map[string]*netsim.Interface
	// OnOp, when set, intercepts each op before it applies; returning an
	// error aborts the transaction (test hook for failure injection).
	OnOp func(op Op) error
	// Logf, when set, receives a line per applied op.
	Logf func(format string, args ...any)

	// Applied counts ops applied over the controller's lifetime; a
	// reconcile of an already-compliant node applies zero.
	Applied int
	// RolledBack counts transactions that failed and were reverted.
	RolledBack int
}

// NewController creates a controller over the node's interfaces.
func NewController(ifaces map[string]*netsim.Interface) *Controller {
	return &Controller{Ifaces: ifaces}
}

// Plan computes the minimal op list taking the node from its actual
// state to the intent. A nil error with an empty plan means the node is
// compliant.
func (c *Controller) Plan(intent Intent) ([]Op, error) {
	var ops []Op
	names := make([]string, 0, len(intent.Ifaces))
	for name := range intent.Ifaces {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		want := intent.Ifaces[name]
		ifc := c.Ifaces[name]
		if ifc == nil {
			return nil, fmt.Errorf("netctl: intent references unknown interface %q", name)
		}
		ops = append(ops, c.planAddrs(ifc, want.Addrs)...)
		ops = append(ops, c.planMACs(ifc, want.ExtraMACs)...)
	}
	return ops, nil
}

// planAddrs diffs one interface's address list.
func (c *Controller) planAddrs(ifc *netsim.Interface, want []netip.Addr) []Op {
	have := ifc.Addrs()
	wantSet := make(map[netip.Addr]bool, len(want))
	for _, a := range want {
		wantSet[a] = true
	}
	haveSet := make(map[netip.Addr]bool, len(have))
	for _, a := range have {
		haveSet[a] = true
	}

	// Wrong primary: the kernel cannot change it in place, so reset the
	// whole address list in intended order (§5).
	if len(want) > 0 && len(have) > 0 && have[0] != want[0] {
		haveCopy := append([]netip.Addr(nil), have...)
		wantCopy := append([]netip.Addr(nil), want...)
		return []Op{{
			Desc: fmt.Sprintf("%s: reset addresses to fix primary (%s -> %s)", ifc.Name, have[0], want[0]),
			apply: func() error {
				ifc.SetAddrs(wantCopy)
				return nil
			},
			revert: func() error {
				ifc.SetAddrs(haveCopy)
				return nil
			},
		}}
	}

	var ops []Op
	for _, a := range have {
		if !wantSet[a] {
			addr := a
			ops = append(ops, Op{
				Desc:   fmt.Sprintf("%s: remove address %s", ifc.Name, addr),
				apply:  func() error { ifc.RemoveAddr(addr); return nil },
				revert: func() error { ifc.AddAddr(addr); return nil },
			})
		}
	}
	for _, a := range want {
		if !haveSet[a] {
			addr := a
			ops = append(ops, Op{
				Desc:   fmt.Sprintf("%s: add address %s", ifc.Name, addr),
				apply:  func() error { ifc.AddAddr(addr); return nil },
				revert: func() error { ifc.RemoveAddr(addr); return nil },
			})
		}
	}
	return ops
}

// planMACs diffs the accepted-MAC set against the intent.
func (c *Controller) planMACs(ifc *netsim.Interface, want []ethernet.MAC) []Op {
	wantSet := make(map[ethernet.MAC]bool, len(want))
	for _, m := range want {
		wantSet[m] = true
	}
	var ops []Op
	have := ifc.ExtraMACs()
	sort.Slice(have, func(i, j int) bool { return have[i].String() < have[j].String() })
	for _, m := range have {
		if !wantSet[m] {
			mac := m
			ops = append(ops, Op{
				Desc:   fmt.Sprintf("%s: stop accepting MAC %s", ifc.Name, mac),
				apply:  func() error { ifc.RemoveMAC(mac); return nil },
				revert: func() error { ifc.AddMAC(mac); return nil },
			})
		}
	}
	for _, m := range want {
		if !ifc.HasMAC(m) {
			mac := m
			ops = append(ops, Op{
				Desc:   fmt.Sprintf("%s: accept MAC %s", ifc.Name, mac),
				apply:  func() error { ifc.AddMAC(mac); return nil },
				revert: func() error { ifc.RemoveMAC(mac); return nil },
			})
		}
	}
	return ops
}

// Apply executes a plan transactionally: on any failure every applied op
// is reverted in reverse order and the error is returned.
func (c *Controller) Apply(ops []Op) error {
	applied := make([]Op, 0, len(ops))
	for _, op := range ops {
		if c.OnOp != nil {
			if err := c.OnOp(op); err != nil {
				c.rollback(applied)
				return fmt.Errorf("netctl: %s: %w (rolled back %d ops)", op.Desc, err, len(applied))
			}
		}
		if err := op.apply(); err != nil {
			c.rollback(applied)
			return fmt.Errorf("netctl: %s: %w (rolled back %d ops)", op.Desc, err, len(applied))
		}
		if c.Logf != nil {
			c.Logf("netctl: %s", op.Desc)
		}
		applied = append(applied, op)
		c.Applied++
	}
	return nil
}

func (c *Controller) rollback(applied []Op) {
	c.RolledBack++
	for i := len(applied) - 1; i >= 0; i-- {
		if err := applied[i].revert(); err != nil && c.Logf != nil {
			c.Logf("netctl: revert %s failed: %v", applied[i].Desc, err)
		}
	}
}

// Reconcile plans and applies in one step, returning the number of ops
// applied.
func (c *Controller) Reconcile(intent Intent) (int, error) {
	ops, err := c.Plan(intent)
	if err != nil {
		return 0, err
	}
	if err := c.Apply(ops); err != nil {
		return 0, err
	}
	return len(ops), nil
}
