package netctl

import (
	"errors"
	"net/netip"
	"strings"
	"testing"

	"repro/internal/ethernet"
	"repro/internal/netsim"
)

func a(s string) netip.Addr { return netip.MustParseAddr(s) }

func mac(b byte) ethernet.MAC { return ethernet.MAC{0x02, 0x7f, 0, 0, 0, b} }

func node() (map[string]*netsim.Interface, *netsim.Interface) {
	ifc := netsim.NewInterface("exp0", ethernet.MAC{0x02, 0x10, 0, 0, 0, 1})
	return map[string]*netsim.Interface{"exp0": ifc}, ifc
}

func TestReconcileFromScratch(t *testing.T) {
	ifaces, ifc := node()
	c := NewController(ifaces)
	n, err := c.Reconcile(Intent{Ifaces: map[string]IfaceIntent{
		"exp0": {Addrs: []netip.Addr{a("100.65.0.254"), a("100.65.0.253")}, ExtraMACs: []ethernet.MAC{mac(1), mac(2)}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Errorf("ops = %d, want 4", n)
	}
	if ifc.PrimaryAddr() != a("100.65.0.254") {
		t.Errorf("primary = %s", ifc.PrimaryAddr())
	}
	if !ifc.HasMAC(mac(1)) || !ifc.HasMAC(mac(2)) {
		t.Error("MACs not installed")
	}
}

func TestReconcileIdempotent(t *testing.T) {
	ifaces, _ := node()
	c := NewController(ifaces)
	intent := Intent{Ifaces: map[string]IfaceIntent{
		"exp0": {Addrs: []netip.Addr{a("100.65.0.254")}, ExtraMACs: []ethernet.MAC{mac(1)}},
	}}
	if _, err := c.Reconcile(intent); err != nil {
		t.Fatal(err)
	}
	n, err := c.Reconcile(intent)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("second reconcile applied %d ops, want 0 (minimal change)", n)
	}
}

func TestPrimaryAddressReset(t *testing.T) {
	ifaces, ifc := node()
	ifc.AddAddr(a("10.0.0.2")) // wrong primary
	ifc.AddAddr(a("10.0.0.1"))
	c := NewController(ifaces)
	ops, err := c.Plan(Intent{Ifaces: map[string]IfaceIntent{
		"exp0": {Addrs: []netip.Addr{a("10.0.0.1"), a("10.0.0.2")}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 1 || !strings.Contains(ops[0].Desc, "reset addresses") {
		t.Fatalf("plan = %v", ops)
	}
	if err := c.Apply(ops); err != nil {
		t.Fatal(err)
	}
	if ifc.PrimaryAddr() != a("10.0.0.1") {
		t.Errorf("primary after reset = %s", ifc.PrimaryAddr())
	}
	if len(ifc.Addrs()) != 2 {
		t.Errorf("addresses lost: %v", ifc.Addrs())
	}
}

func TestRemovesStaleState(t *testing.T) {
	ifaces, ifc := node()
	ifc.AddAddr(a("10.0.0.1"))
	ifc.AddAddr(a("10.0.0.9")) // stale
	ifc.AddMAC(mac(9))         // stale
	c := NewController(ifaces)
	if _, err := c.Reconcile(Intent{Ifaces: map[string]IfaceIntent{
		"exp0": {Addrs: []netip.Addr{a("10.0.0.1")}, ExtraMACs: nil},
	}}); err != nil {
		t.Fatal(err)
	}
	if ifc.HasAddr(a("10.0.0.9")) {
		t.Error("stale address kept")
	}
	if ifc.HasMAC(mac(9)) {
		t.Error("stale MAC kept")
	}
	if !ifc.HasAddr(a("10.0.0.1")) {
		t.Error("compatible address removed")
	}
}

func TestTransactionalRollback(t *testing.T) {
	ifaces, ifc := node()
	ifc.AddAddr(a("10.0.0.1"))
	c := NewController(ifaces)
	fail := errors.New("injected failure")
	count := 0
	c.OnOp = func(op Op) error {
		count++
		if count == 3 {
			return fail
		}
		return nil
	}
	_, err := c.Reconcile(Intent{Ifaces: map[string]IfaceIntent{
		"exp0": {Addrs: []netip.Addr{a("10.0.0.1"), a("10.0.0.2"), a("10.0.0.3")},
			ExtraMACs: []ethernet.MAC{mac(1)}},
	}})
	if !errors.Is(err, fail) {
		t.Fatalf("err = %v", err)
	}
	// All-or-nothing: the two applied ops must have been reverted.
	if got := ifc.Addrs(); len(got) != 1 || got[0] != a("10.0.0.1") {
		t.Errorf("partial state survived rollback: %v", got)
	}
	if ifc.HasMAC(mac(1)) {
		t.Error("partial MAC survived rollback")
	}
	if c.RolledBack != 1 {
		t.Errorf("RolledBack = %d", c.RolledBack)
	}
}

func TestUnknownInterfaceRejected(t *testing.T) {
	c := NewController(map[string]*netsim.Interface{})
	if _, err := c.Plan(Intent{Ifaces: map[string]IfaceIntent{"ghost": {}}}); err == nil {
		t.Error("unknown interface accepted")
	}
}

func TestUnmanagedInterfaceUntouched(t *testing.T) {
	ifaces, _ := node()
	other := netsim.NewInterface("wan0", ethernet.MAC{0x02, 0x10, 0, 0, 0, 2})
	other.AddAddr(a("203.0.113.1"))
	ifaces["wan0"] = other
	c := NewController(ifaces)
	if _, err := c.Reconcile(Intent{Ifaces: map[string]IfaceIntent{
		"exp0": {Addrs: []netip.Addr{a("10.0.0.1")}},
	}}); err != nil {
		t.Fatal(err)
	}
	if !other.HasAddr(a("203.0.113.1")) {
		t.Error("controller touched an unmanaged interface")
	}
}

func TestReconcileKeepsSessionsAlive(t *testing.T) {
	// The paper's key operational property: pushing config must not
	// disturb running state (BGP sessions, filters). We model it by
	// checking the interface's handler and filter chain are untouched by
	// a reconcile that only adjusts addresses.
	ifaces, ifc := node()
	ifc.AddAddr(a("10.0.0.1"))
	called := 0
	ifc.SetHandler(func(*netsim.Interface, *ethernet.Frame) { called++ })
	ifc.AddIngressFilter(netsim.FilterFunc(func([]byte) netsim.Verdict { return netsim.VerdictPass }))

	c := NewController(ifaces)
	if _, err := c.Reconcile(Intent{Ifaces: map[string]IfaceIntent{
		"exp0": {Addrs: []netip.Addr{a("10.0.0.1"), a("10.0.0.2")}},
	}}); err != nil {
		t.Fatal(err)
	}
	// Attach to a segment and verify frames still reach the handler
	// through the original filter chain.
	seg := netsim.NewSegment("lan")
	ifc.Attach(seg)
	tx := netsim.NewInterface("tx", ethernet.MAC{0x02, 0x10, 0, 0, 0, 9})
	tx.Attach(seg)
	tx.Send(&ethernet.Frame{Dst: ifc.MAC(), Type: ethernet.TypeIPv6})
	if called != 1 {
		t.Error("handler lost across reconcile")
	}
}
