package traffic

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

func link(name string, mbps float64, lat time.Duration) Link {
	return Link{Name: name, CapacityBps: mbps * 1e6, Latency: lat}
}

func TestSingleFlowApproachesCapacity(t *testing.T) {
	bps, err := MeasureSingleFlow([]Link{link("a", 400, 10*time.Millisecond)})
	if err != nil {
		t.Fatal(err)
	}
	if bps < 0.70*400e6 || bps > 400e6*1.01 {
		t.Errorf("single flow = %.0f Mbps, want ~70-100%% of 400", bps/1e6)
	}
}

func TestBottleneckIsMinimumLink(t *testing.T) {
	path := []Link{
		link("fast", 1000, 5*time.Millisecond),
		link("slow", 100, 5*time.Millisecond),
		link("fast2", 750, 5*time.Millisecond),
	}
	bps, err := MeasureSingleFlow(path)
	if err != nil {
		t.Fatal(err)
	}
	if bps > 100e6*1.01 {
		t.Errorf("throughput %.0f Mbps exceeds the 100 Mbps bottleneck", bps/1e6)
	}
	if bps < 60e6 {
		t.Errorf("throughput %.0f Mbps too far below bottleneck", bps/1e6)
	}
}

func TestTwoFlowsShareFairly(t *testing.T) {
	s := NewSim()
	shared := link("shared", 400, 10*time.Millisecond)
	f1, err := s.AddFlow("f1", []Link{shared})
	if err != nil {
		t.Fatal(err)
	}
	f2, err := s.AddFlow("f2", []Link{shared})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(2 * time.Second)
	d := s.Run(8 * time.Second)
	b1, b2 := f1.ThroughputBps(d), f2.ThroughputBps(d)
	if b1+b2 > 400e6*1.01 {
		t.Errorf("aggregate %.0f Mbps exceeds capacity", (b1+b2)/1e6)
	}
	ratio := b1 / b2
	if ratio < 0.5 || ratio > 2.0 {
		t.Errorf("unfair split: %.0f vs %.0f Mbps", b1/1e6, b2/1e6)
	}
}

func TestLongerRTTLowerShare(t *testing.T) {
	// Classic AIMD RTT bias: the short-RTT flow claims more of the
	// bottleneck. The model must reproduce the direction of the effect.
	s := NewSim()
	shared := link("shared", 400, 0)
	short := []Link{shared, link("short-tail", 1000, 5*time.Millisecond)}
	long := []Link{shared, link("long-tail", 1000, 50*time.Millisecond)}
	f1, _ := s.AddFlow("short", short)
	f2, _ := s.AddFlow("long", long)
	s.Run(3 * time.Second)
	d := s.Run(10 * time.Second)
	if f1.ThroughputBps(d) <= f2.ThroughputBps(d) {
		t.Errorf("short RTT flow (%.0f Mbps) should out-compete long RTT flow (%.0f Mbps)",
			f1.ThroughputBps(d)/1e6, f2.ThroughputBps(d)/1e6)
	}
}

func TestPaperBackboneEnvelope(t *testing.T) {
	// §6: across PoP pairs iperf3 measured min 60, avg ~400, max 750
	// Mbps. Provisioned capacities in that range must yield throughput
	// in that range.
	for _, mbps := range []float64{60, 400, 750} {
		bps, err := MeasureSingleFlow([]Link{link("bb", mbps, 20*time.Millisecond)})
		if err != nil {
			t.Fatal(err)
		}
		if bps < 0.55*mbps*1e6 || bps > mbps*1e6*1.01 {
			t.Errorf("capacity %.0f: throughput %.0f Mbps out of envelope", mbps, bps/1e6)
		}
	}
}

func TestFlowValidation(t *testing.T) {
	s := NewSim()
	if _, err := s.AddFlow("empty", nil); err == nil {
		t.Error("empty path accepted")
	}
	if _, err := s.AddFlow("nocap", []Link{{Name: "x"}}); err == nil {
		t.Error("uncapacitated link accepted")
	}
}

func TestUncapacitatedLinkErrorNamesEndpoints(t *testing.T) {
	// The error must identify the offending link AND the flow endpoints
	// (first and last links of the path) so a misconfigured mesh is
	// debuggable from the message alone.
	s := NewSim()
	path := []Link{
		link("pop01-out", 100, time.Millisecond),
		{Name: "dark-segment"}, // no capacity
		link("pop03-in", 100, time.Millisecond),
	}
	_, err := s.AddFlow("bulk", path)
	if err == nil {
		t.Fatal("uncapacitated link accepted")
	}
	for _, want := range []string{"bulk", "dark-segment", "pop01-out", "pop03-in"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

func TestMaxMinFairnessSharedBottleneck(t *testing.T) {
	// Max-min fairness across ≥3 flows sharing one bottleneck: each
	// scenario lists flows crossing a shared 300 Mbps link, some with
	// private tails that further constrain them. Flows limited only by
	// the bottleneck should converge near equal shares of what remains
	// after the tail-limited flows take their (smaller) allocations.
	bottleneck := link("bottleneck", 300, 5*time.Millisecond)
	cases := []struct {
		name  string
		tails []float64 // private tail capacity per flow, Mbps; 0 = none
		// wantMbps is the max-min allocation per flow.
		wantMbps []float64
	}{
		{
			name:     "three-equal",
			tails:    []float64{0, 0, 0},
			wantMbps: []float64{100, 100, 100},
		},
		{
			name:     "one-tail-limited",
			tails:    []float64{40, 0, 0},
			wantMbps: []float64{40, 130, 130},
		},
		{
			name:     "four-two-limited",
			tails:    []float64{30, 50, 0, 0},
			wantMbps: []float64{30, 50, 110, 110},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := NewSim()
			flows := make([]*Flow, len(tc.tails))
			for i, tail := range tc.tails {
				path := []Link{bottleneck}
				if tail > 0 {
					path = append(path, link(fmt.Sprintf("tail%d", i), tail, 5*time.Millisecond))
				}
				f, err := s.AddFlow(fmt.Sprintf("f%d", i), path)
				if err != nil {
					t.Fatal(err)
				}
				flows[i] = f
			}
			s.Run(3 * time.Second)
			d := s.Run(10 * time.Second)
			var total float64
			for i, f := range flows {
				got := f.ThroughputBps(d) / 1e6
				total += got
				want := tc.wantMbps[i]
				// The AIMD fluid model oscillates around the fair share;
				// accept a generous band but require the ordering and the
				// rough magnitudes of the max-min allocation.
				if got < 0.5*want || got > 1.3*want+5 {
					t.Errorf("flow %d: %.0f Mbps, max-min share %.0f", i, got, want)
				}
			}
			if total > 300*1.01 {
				t.Errorf("aggregate %.0f Mbps exceeds bottleneck capacity", total)
			}
		})
	}
}

func TestZeroLatencyDefaultsSane(t *testing.T) {
	f := &Flow{Path: []Link{link("l", 100, 0)}}
	if f.RTT() <= 0 {
		t.Error("RTT must be positive")
	}
	if f.ThroughputBps(0) != 0 {
		t.Error("zero interval throughput should be 0")
	}
}
