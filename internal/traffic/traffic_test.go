package traffic

import (
	"testing"
	"time"
)

func link(name string, mbps float64, lat time.Duration) Link {
	return Link{Name: name, CapacityBps: mbps * 1e6, Latency: lat}
}

func TestSingleFlowApproachesCapacity(t *testing.T) {
	bps, err := MeasureSingleFlow([]Link{link("a", 400, 10*time.Millisecond)})
	if err != nil {
		t.Fatal(err)
	}
	if bps < 0.70*400e6 || bps > 400e6*1.01 {
		t.Errorf("single flow = %.0f Mbps, want ~70-100%% of 400", bps/1e6)
	}
}

func TestBottleneckIsMinimumLink(t *testing.T) {
	path := []Link{
		link("fast", 1000, 5*time.Millisecond),
		link("slow", 100, 5*time.Millisecond),
		link("fast2", 750, 5*time.Millisecond),
	}
	bps, err := MeasureSingleFlow(path)
	if err != nil {
		t.Fatal(err)
	}
	if bps > 100e6*1.01 {
		t.Errorf("throughput %.0f Mbps exceeds the 100 Mbps bottleneck", bps/1e6)
	}
	if bps < 60e6 {
		t.Errorf("throughput %.0f Mbps too far below bottleneck", bps/1e6)
	}
}

func TestTwoFlowsShareFairly(t *testing.T) {
	s := NewSim()
	shared := link("shared", 400, 10*time.Millisecond)
	f1, err := s.AddFlow("f1", []Link{shared})
	if err != nil {
		t.Fatal(err)
	}
	f2, err := s.AddFlow("f2", []Link{shared})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(2 * time.Second)
	d := s.Run(8 * time.Second)
	b1, b2 := f1.ThroughputBps(d), f2.ThroughputBps(d)
	if b1+b2 > 400e6*1.01 {
		t.Errorf("aggregate %.0f Mbps exceeds capacity", (b1+b2)/1e6)
	}
	ratio := b1 / b2
	if ratio < 0.5 || ratio > 2.0 {
		t.Errorf("unfair split: %.0f vs %.0f Mbps", b1/1e6, b2/1e6)
	}
}

func TestLongerRTTLowerShare(t *testing.T) {
	// Classic AIMD RTT bias: the short-RTT flow claims more of the
	// bottleneck. The model must reproduce the direction of the effect.
	s := NewSim()
	shared := link("shared", 400, 0)
	short := []Link{shared, link("short-tail", 1000, 5*time.Millisecond)}
	long := []Link{shared, link("long-tail", 1000, 50*time.Millisecond)}
	f1, _ := s.AddFlow("short", short)
	f2, _ := s.AddFlow("long", long)
	s.Run(3 * time.Second)
	d := s.Run(10 * time.Second)
	if f1.ThroughputBps(d) <= f2.ThroughputBps(d) {
		t.Errorf("short RTT flow (%.0f Mbps) should out-compete long RTT flow (%.0f Mbps)",
			f1.ThroughputBps(d)/1e6, f2.ThroughputBps(d)/1e6)
	}
}

func TestPaperBackboneEnvelope(t *testing.T) {
	// §6: across PoP pairs iperf3 measured min 60, avg ~400, max 750
	// Mbps. Provisioned capacities in that range must yield throughput
	// in that range.
	for _, mbps := range []float64{60, 400, 750} {
		bps, err := MeasureSingleFlow([]Link{link("bb", mbps, 20*time.Millisecond)})
		if err != nil {
			t.Fatal(err)
		}
		if bps < 0.55*mbps*1e6 || bps > mbps*1e6*1.01 {
			t.Errorf("capacity %.0f: throughput %.0f Mbps out of envelope", mbps, bps/1e6)
		}
	}
}

func TestFlowValidation(t *testing.T) {
	s := NewSim()
	if _, err := s.AddFlow("empty", nil); err == nil {
		t.Error("empty path accepted")
	}
	if _, err := s.AddFlow("nocap", []Link{{Name: "x"}}); err == nil {
		t.Error("uncapacitated link accepted")
	}
}

func TestZeroLatencyDefaultsSane(t *testing.T) {
	f := &Flow{Path: []Link{link("l", 100, 0)}}
	if f.RTT() <= 0 {
		t.Error("RTT must be positive")
	}
	if f.ThroughputBps(0) != 0 {
		t.Error("zero interval throughput should be 0")
	}
}
