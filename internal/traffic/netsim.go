package traffic

import "repro/internal/netsim"

// AsLink converts a netsim segment's provisioned capacity and latency
// metadata into a traffic model link.
func AsLink(s *netsim.Segment) Link {
	return Link{Name: s.Name, CapacityBps: s.CapacityBps, Latency: s.Latency}
}
