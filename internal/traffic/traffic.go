// Package traffic models bulk TCP transfers over capacity-constrained
// paths with a deterministic fluid-flow simulation: each flow maintains
// an AIMD congestion window, links apportion capacity among the flows
// crossing them, and congestion causes multiplicative decrease.
//
// The paper measures backbone TCP throughput with iperf3 between PoP
// pairs (§6: average ≈400 Mbps, min 60, max 750). Moving gigabits of
// real bytes through the in-memory data plane would measure the host
// CPU, not the provisioned capacities, so the throughput experiment runs
// on this model instead, parameterized by the same per-link capacity and
// latency metadata the netsim segments carry.
package traffic

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Link is a capacity-constrained hop. netsim.Segment satisfies the shape
// via AsLink.
type Link struct {
	// Name identifies the link in reports.
	Name string
	// CapacityBps is the link capacity in bits per second.
	CapacityBps float64
	// Latency is the one-way propagation delay.
	Latency time.Duration
}

// Flow is one bulk transfer.
type Flow struct {
	// Name identifies the flow in reports.
	Name string
	// Path is the sequence of links the flow crosses.
	Path []Link

	cwnd     float64 // congestion window, bytes
	ssthresh float64
	rtt      time.Duration
	// delivered accumulates bytes over the measured interval.
	delivered float64
}

// MSS is the segment size used by the window model.
const MSS = 1460

// RTT returns the flow's round-trip time (twice the path latency).
func (f *Flow) RTT() time.Duration {
	var oneWay time.Duration
	for _, l := range f.Path {
		oneWay += l.Latency
	}
	if oneWay == 0 {
		oneWay = time.Millisecond
	}
	return 2 * oneWay
}

// ThroughputBps returns the goodput measured by the last Sim.Run.
func (f *Flow) ThroughputBps(measured time.Duration) float64 {
	if measured <= 0 {
		return 0
	}
	return f.delivered * 8 / measured.Seconds()
}

// Sim simulates a set of concurrent flows.
type Sim struct {
	flows []*Flow
	// Step is the simulation quantum. Defaults to 10ms.
	Step time.Duration
}

// NewSim creates an empty simulation.
func NewSim() *Sim { return &Sim{Step: 10 * time.Millisecond} }

// AddFlow registers a flow over path.
func (s *Sim) AddFlow(name string, path []Link) (*Flow, error) {
	if len(path) == 0 {
		return nil, fmt.Errorf("traffic: flow %s has an empty path", name)
	}
	for _, l := range path {
		if l.CapacityBps <= 0 {
			return nil, fmt.Errorf("traffic: flow %s (%s -> %s) crosses uncapacitated link %s",
				name, path[0].Name, path[len(path)-1].Name, l.Name)
		}
	}
	f := &Flow{Name: name, Path: path}
	f.rtt = f.RTT()
	f.cwnd = 10 * MSS // RFC 6928 initial window
	f.ssthresh = math.Inf(1)
	s.flows = append(s.flows, f)
	return f, nil
}

// Run advances the simulation by d of virtual time and returns the
// measured interval (the full d). Throughput is read per flow with
// ThroughputBps(d). Run may be called repeatedly; delivered counters
// reset at each call so a warmup Run can be discarded.
func (s *Sim) Run(d time.Duration) time.Duration {
	for _, f := range s.flows {
		f.delivered = 0
	}
	steps := int(d / s.Step)
	dt := s.Step.Seconds()
	for i := 0; i < steps; i++ {
		// Offered rate per flow this step: cwnd per RTT.
		offered := make([]float64, len(s.flows)) // bytes/sec
		for j, f := range s.flows {
			offered[j] = f.cwnd / f.rtt.Seconds()
		}
		// Apportion each link's capacity among its flows by per-link
		// water-filling: flows below the link's fair share keep their
		// rate, the rest split what remains equally. Only flows actually
		// clamped see a congestion signal, so a flow bottlenecked
		// elsewhere does not back off here — this is what makes the
		// steady state max-min fair across shared bottlenecks. Links are
		// visited in sorted-name order so allocation is deterministic.
		achieved := make([]float64, len(s.flows))
		copy(achieved, offered)
		congested := make([]bool, len(s.flows))
		byLink := make(map[string][]int)
		linkCap := make(map[string]float64)
		for j, f := range s.flows {
			for _, l := range f.Path {
				byLink[l.Name] = append(byLink[l.Name], j)
				linkCap[l.Name] = l.CapacityBps / 8 // bytes/sec
			}
		}
		linkNames := make([]string, 0, len(byLink))
		for name := range byLink {
			linkNames = append(linkNames, name)
		}
		sort.Strings(linkNames)
		// Two sweeps: clamping at one link can lower a flow's rate at a
		// link visited earlier, freeing share for that link's other
		// flows; rates only ever decrease, so this converges fast.
		for pass := 0; pass < 2; pass++ {
			for _, name := range linkNames {
				idxs := byLink[name]
				var sum float64
				for _, j := range idxs {
					sum += achieved[j]
				}
				c := linkCap[name]
				if sum <= c {
					continue
				}
				// Water-fill: process flows in ascending rate order;
				// each takes min(rate, remaining/flows-left).
				order := append([]int(nil), idxs...)
				sort.Slice(order, func(a, b int) bool { return achieved[order[a]] < achieved[order[b]] })
				remaining := c
				for k, j := range order {
					share := remaining / float64(len(order)-k)
					if achieved[j] > share {
						achieved[j] = share
						congested[j] = true
					}
					remaining -= achieved[j]
				}
			}
		}
		// Deliver and adjust windows.
		for j, f := range s.flows {
			f.delivered += achieved[j] * dt
			rttsPerStep := dt / f.rtt.Seconds()
			if congested[j] {
				// Multiplicative decrease, at most once per RTT.
				if rttsPerStep > 1 {
					rttsPerStep = 1
				}
				f.ssthresh = f.cwnd / 2
				f.cwnd = math.Max(f.cwnd/2, 2*MSS)
			} else if f.cwnd < f.ssthresh {
				// Slow start: double per RTT.
				f.cwnd *= math.Pow(2, rttsPerStep)
				if f.cwnd > f.ssthresh {
					f.cwnd = f.ssthresh
				}
			} else {
				// Congestion avoidance: +1 MSS per RTT.
				f.cwnd += MSS * rttsPerStep
			}
		}
	}
	return d
}

// MeasureSingleFlow is a convenience harness: it runs one flow over path
// with a warmup and returns steady-state throughput in bits per second.
func MeasureSingleFlow(path []Link) (float64, error) {
	s := NewSim()
	f, err := s.AddFlow("probe", path)
	if err != nil {
		return 0, err
	}
	s.Run(2 * time.Second)      // warmup: exit slow start
	d := s.Run(8 * time.Second) // measured interval
	return f.ThroughputBps(d), nil
}
