package policy

import "repro/internal/telemetry"

// Verdict counters (policy_verdicts_total{action=...}), shared by every
// engine in the process, plus the fail-closed trip counter. Rate-limit
// rejections get their own action label so operators can tell a
// misbehaving experiment from an unauthorized one.
var (
	verdictAccept         *telemetry.Counter
	verdictAcceptModified *telemetry.Counter
	verdictReject         *telemetry.Counter
	verdictRateLimited    *telemetry.Counter
	verdictROVInvalid     *telemetry.Counter
	verdictDamped         *telemetry.Counter
	failClosedTrips       *telemetry.Counter
	auditEvicted          *telemetry.Counter
)

func init() {
	reg := telemetry.Default()
	verdictAccept = reg.Counter("policy_verdicts_total", telemetry.L("action", "accept"))
	verdictAcceptModified = reg.Counter("policy_verdicts_total", telemetry.L("action", "accept-modified"))
	verdictReject = reg.Counter("policy_verdicts_total", telemetry.L("action", "reject"))
	verdictRateLimited = reg.Counter("policy_verdicts_total", telemetry.L("action", "rate-limited"))
	verdictROVInvalid = reg.Counter("policy_verdicts_total", telemetry.L("action", "rov-invalid"))
	verdictDamped = reg.Counter("policy_verdicts_total", telemetry.L("action", "damped"))
	failClosedTrips = reg.Counter("policy_fail_closed_total")
	auditEvicted = reg.Counter("policy_audit_evicted_total")
}
