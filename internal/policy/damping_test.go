package policy

import (
	"strings"
	"testing"
	"time"

	"repro/internal/guard"
)

func TestDampingSuppressesFlappingExperiment(t *testing.T) {
	en := newTestEngine()
	now := time.Unix(1700000000, 0)
	en.Now = func() time.Time { return now }
	clock := func() time.Time { return now }
	en.SetDamper(guard.NewDamper(guard.DampingConfig{HalfLife: time.Minute, Now: clock}))
	defer en.Damper().Close()

	prefix := pfx("184.164.224.0/24")
	announce := func() Result { return en.EvaluateAnnouncement("exp1", "amsix", prefix, originAttrs(61574)) }
	withdraw := func() Result { return en.EvaluateWithdraw("exp1", "amsix", prefix) }

	// announce (free) + withdraw (1000) + announce (2000) + withdraw
	// (3000 → suppressed). Withdrawals themselves are never blocked.
	for i, res := range []Result{announce(), withdraw(), announce(), withdraw()} {
		if res.Action != ActionAccept {
			t.Fatalf("update %d rejected before suppression: %v", i, res.Reasons)
		}
	}
	res := announce()
	if res.Action != ActionReject {
		t.Fatal("announcement of suppressed route accepted")
	}
	if len(res.Reasons) == 0 || !strings.Contains(res.Reasons[0], "flap damping") {
		t.Fatalf("reasons = %v, want flap-damping verdict", res.Reasons)
	}
	// Withdrawals still pass while suppressed.
	if res := withdraw(); res.Action != ActionAccept {
		t.Fatalf("withdrawal blocked under suppression: %v", res.Reasons)
	}
	// Another experiment's use of an overlapping prefix is unaffected:
	// damping keys on (experiment, PoP), and so is the same experiment
	// at a different PoP.
	if res := en.EvaluateAnnouncement("exp1", "seattle", prefix, originAttrs(61574)); res.Action != ActionAccept {
		t.Fatalf("other PoP caught suppression: %v", res.Reasons)
	}
	// Decay below the reuse threshold releases the route.
	now = now.Add(10 * time.Minute)
	if res := announce(); res.Action != ActionAccept {
		t.Fatalf("announcement after decay rejected: %v", res.Reasons)
	}
}

func TestRateLimitRejectionReportsObservedCount(t *testing.T) {
	en := newTestEngine()
	now := time.Unix(1700000000, 0)
	en.Now = func() time.Time { return now }

	prefix := pfx("184.164.224.0/24")
	for i := 0; i < DefaultDailyUpdateLimit; i++ {
		if res := en.EvaluateAnnouncement("exp1", "amsix", prefix, originAttrs(61574)); res.Action != ActionAccept {
			t.Fatalf("update %d rejected: %v", i, res.Reasons)
		}
	}
	res := en.EvaluateAnnouncement("exp1", "amsix", prefix, originAttrs(61574))
	if res.Action != ActionReject {
		t.Fatal("over-budget update accepted")
	}
	// The verdict must state both the limit and the observed window
	// count so an operator sees the load, not just the line it crossed.
	want := "exceeds 144/day (observed 144 in window)"
	if len(res.Reasons) == 0 || !strings.Contains(res.Reasons[0], want) {
		t.Fatalf("reasons = %v, want substring %q", res.Reasons, want)
	}
	// The audit entry carries the same message.
	audit := en.Audit()
	last := audit[len(audit)-1]
	if len(last.Reasons) == 0 || !strings.Contains(last.Reasons[0], want) {
		t.Fatalf("audit reasons = %v, want substring %q", last.Reasons, want)
	}
}
