package policy

import (
	"fmt"
	"net/netip"
	"strings"
	"testing"
	"time"

	"repro/internal/bgp"
)

const platformASN = 47065

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }

func newTestEngine() *Engine {
	en := NewEngine(platformASN)
	en.Register(&Experiment{
		Name:     "exp1",
		Prefixes: []netip.Prefix{pfx("184.164.224.0/23"), pfx("2804:269c::/32")},
		ASNs:     []uint32{61574},
	})
	return en
}

func originAttrs(asns ...uint32) *bgp.PathAttrs {
	return &bgp.PathAttrs{
		Origin: bgp.OriginIGP, HasOrigin: true,
		ASPath:  []bgp.ASPathSegment{{Type: bgp.ASSequence, ASNs: asns}},
		NextHop: netip.MustParseAddr("100.65.0.1"),
	}
}

func TestAcceptOwnPrefix(t *testing.T) {
	en := newTestEngine()
	res := en.EvaluateAnnouncement("exp1", "amsix", pfx("184.164.224.0/24"), originAttrs(61574))
	if res.Action != ActionAccept {
		t.Fatalf("action = %s, reasons = %v", res.Action, res.Reasons)
	}
}

func TestRejectHijack(t *testing.T) {
	en := newTestEngine()
	res := en.EvaluateAnnouncement("exp1", "amsix", pfx("8.8.8.0/24"), originAttrs(61574))
	if res.Action != ActionReject {
		t.Fatal("hijack of foreign prefix accepted")
	}
	// Covering supernet of the allocation is also a violation.
	res = en.EvaluateAnnouncement("exp1", "amsix", pfx("184.164.0.0/16"), originAttrs(61574))
	if res.Action != ActionReject {
		t.Fatal("supernet announcement accepted")
	}
}

func TestAcceptSubnetOfAllocation(t *testing.T) {
	en := newTestEngine()
	res := en.EvaluateAnnouncement("exp1", "amsix", pfx("184.164.225.128/25"), originAttrs(61574))
	if res.Action != ActionAccept {
		t.Fatalf("subnet rejected: %v", res.Reasons)
	}
	res = en.EvaluateAnnouncement("exp1", "amsix", pfx("2804:269c:1::/48"), originAttrs(61574))
	if res.Action != ActionAccept {
		t.Fatalf("v6 subnet rejected: %v", res.Reasons)
	}
}

func TestRejectUnknownExperiment(t *testing.T) {
	en := newTestEngine()
	res := en.EvaluateAnnouncement("ghost", "amsix", pfx("184.164.224.0/24"), originAttrs(61574))
	if res.Action != ActionReject {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRejectUnauthorizedOrigin(t *testing.T) {
	en := newTestEngine()
	res := en.EvaluateAnnouncement("exp1", "amsix", pfx("184.164.224.0/24"), originAttrs(64512))
	if res.Action != ActionReject {
		t.Fatal("foreign origin ASN accepted")
	}
	// With the transit capability the same announcement is legitimate.
	en.Register(&Experiment{
		Name:     "exp2",
		Prefixes: []netip.Prefix{pfx("184.164.226.0/24")},
		ASNs:     []uint32{61575},
		Caps:     Capabilities{AllowTransit: true},
	})
	res = en.EvaluateAnnouncement("exp2", "amsix", pfx("184.164.226.0/24"), originAttrs(61575, 64512))
	if res.Action != ActionAccept {
		t.Fatalf("transit capability did not permit: %v", res.Reasons)
	}
}

func TestPoisoningCapability(t *testing.T) {
	en := newTestEngine()
	// Poisoned path: experiment ASN with two foreign ASNs inserted.
	attrs := originAttrs(61574, 3356, 174, 61574)
	res := en.EvaluateAnnouncement("exp1", "amsix", pfx("184.164.224.0/24"), attrs)
	if res.Action != ActionReject {
		t.Fatal("poisoning without capability accepted")
	}
	en.Register(&Experiment{
		Name:     "exp1",
		Prefixes: []netip.Prefix{pfx("184.164.224.0/23")},
		ASNs:     []uint32{61574},
		Caps:     Capabilities{MaxPoisonedASNs: 2},
	})
	res = en.EvaluateAnnouncement("exp1", "amsix", pfx("184.164.224.0/24"), attrs)
	if res.Action != ActionAccept {
		t.Fatalf("2 poisons within capability rejected: %v", res.Reasons)
	}
	attrs3 := originAttrs(61574, 3356, 174, 2914, 61574)
	res = en.EvaluateAnnouncement("exp1", "amsix", pfx("184.164.224.0/24"), attrs3)
	if res.Action != ActionReject {
		t.Fatal("3 poisons beyond capability accepted")
	}
}

func TestPathLengthCap(t *testing.T) {
	en := newTestEngine()
	long := make([]uint32, DefaultMaxPathLen+1)
	for i := range long {
		long[i] = 61574 // prepending only: no poison budget needed
	}
	res := en.EvaluateAnnouncement("exp1", "amsix", pfx("184.164.224.0/24"), originAttrs(long...))
	if res.Action != ActionReject {
		t.Fatal("over-long path accepted")
	}
	ok := make([]uint32, DefaultMaxPathLen)
	for i := range ok {
		ok[i] = 61574
	}
	res = en.EvaluateAnnouncement("exp1", "amsix", pfx("184.164.224.0/24"), originAttrs(ok...))
	if res.Action != ActionAccept {
		t.Fatalf("prepending within cap rejected: %v", res.Reasons)
	}
}

func TestCommunityStrippedWithoutCapability(t *testing.T) {
	en := newTestEngine()
	attrs := originAttrs(61574)
	attrs.Communities = []bgp.Community{bgp.NewCommunity(3356, 70)}
	attrs.LargeCommunities = []bgp.LargeCommunity{{Global: 1, Local1: 2, Local2: 3}}
	res := en.EvaluateAnnouncement("exp1", "amsix", pfx("184.164.224.0/24"), attrs)
	if res.Action != ActionAcceptModified {
		t.Fatalf("action = %s", res.Action)
	}
	if len(res.Attrs.Communities) != 0 || len(res.Attrs.LargeCommunities) != 0 {
		t.Error("communities not stripped")
	}
	// Original attrs must be untouched (engine works on a clone).
	if len(attrs.Communities) != 1 {
		t.Error("engine mutated caller's attributes")
	}
}

func TestCommunityAllowedWithCapability(t *testing.T) {
	en := newTestEngine()
	en.Register(&Experiment{
		Name:     "exp1",
		Prefixes: []netip.Prefix{pfx("184.164.224.0/23")},
		ASNs:     []uint32{61574},
		Caps:     Capabilities{MaxCommunities: 4},
	})
	attrs := originAttrs(61574)
	attrs.Communities = []bgp.Community{bgp.NewCommunity(3356, 70), bgp.NewCommunity(174, 990)}
	res := en.EvaluateAnnouncement("exp1", "amsix", pfx("184.164.224.0/24"), attrs)
	if res.Action != ActionAccept {
		t.Fatalf("action = %s reasons = %v", res.Action, res.Reasons)
	}
	if len(res.Attrs.Communities) != 2 {
		t.Error("communities lost despite capability")
	}
}

func TestTransitiveAttrsStripped(t *testing.T) {
	en := newTestEngine()
	attrs := originAttrs(61574)
	attrs.Unknown = []bgp.UnknownAttr{{Flags: bgp.FlagOptional | bgp.FlagTransitive, Type: 99, Data: []byte{1}}}
	res := en.EvaluateAnnouncement("exp1", "amsix", pfx("184.164.224.0/24"), attrs)
	if res.Action != ActionAcceptModified || len(res.Attrs.Unknown) != 0 {
		t.Fatalf("non-standard attribute survived: %s %v", res.Action, res.Attrs.Unknown)
	}

	en.Register(&Experiment{
		Name:     "exp1",
		Prefixes: []netip.Prefix{pfx("184.164.224.0/23")},
		ASNs:     []uint32{61574},
		Caps:     Capabilities{AllowTransitiveAttrs: true},
	})
	res = en.EvaluateAnnouncement("exp1", "amsix", pfx("184.164.224.0/24"), attrs)
	if res.Action != ActionAccept || len(res.Attrs.Unknown) != 1 {
		t.Fatalf("capability did not permit transitive attr: %s", res.Action)
	}
}

func TestRateLimit144PerDay(t *testing.T) {
	en := newTestEngine()
	now := time.Unix(1700000000, 0)
	en.Now = func() time.Time { return now }

	prefix := pfx("184.164.224.0/24")
	for i := 0; i < DefaultDailyUpdateLimit; i++ {
		res := en.EvaluateAnnouncement("exp1", "amsix", prefix, originAttrs(61574))
		if res.Action != ActionAccept {
			t.Fatalf("update %d rejected: %v", i, res.Reasons)
		}
		now = now.Add(time.Second)
	}
	res := en.EvaluateAnnouncement("exp1", "amsix", prefix, originAttrs(61574))
	if res.Action != ActionReject {
		t.Fatal("update 145 accepted")
	}
	if en.RateBudgetRemaining(prefix, "amsix") != 0 {
		t.Error("budget should be exhausted")
	}

	// A different PoP has its own budget; a different prefix too.
	if res := en.EvaluateAnnouncement("exp1", "seattle", prefix, originAttrs(61574)); res.Action != ActionAccept {
		t.Error("other PoP shares budget")
	}
	if res := en.EvaluateAnnouncement("exp1", "amsix", pfx("184.164.225.0/24"), originAttrs(61574)); res.Action != ActionAccept {
		t.Error("other prefix shares budget")
	}

	// The window slides: 24h later the budget frees up.
	now = now.Add(25 * time.Hour)
	if res := en.EvaluateAnnouncement("exp1", "amsix", prefix, originAttrs(61574)); res.Action != ActionAccept {
		t.Error("budget did not recover after window")
	}
}

func TestWithdrawalsConsumeBudgetAndValidate(t *testing.T) {
	en := newTestEngine()
	now := time.Unix(1700000000, 0)
	en.Now = func() time.Time { return now }

	if res := en.EvaluateWithdraw("exp1", "amsix", pfx("184.164.224.0/24")); res.Action != ActionAccept {
		t.Fatalf("legitimate withdraw rejected: %v", res.Reasons)
	}
	if res := en.EvaluateWithdraw("exp1", "amsix", pfx("8.8.8.0/24")); res.Action != ActionReject {
		t.Fatal("foreign withdraw accepted")
	}
	if got := en.RateBudgetRemaining(pfx("184.164.224.0/24"), "amsix"); got != DefaultDailyUpdateLimit-1 {
		t.Errorf("budget = %d", got)
	}
}

func TestFailClosed(t *testing.T) {
	en := newTestEngine()
	en.SetFailed(true)
	res := en.EvaluateAnnouncement("exp1", "amsix", pfx("184.164.224.0/24"), originAttrs(61574))
	if res.Action != ActionReject {
		t.Fatal("failed engine accepted an announcement")
	}
	if res := en.EvaluateWithdraw("exp1", "amsix", pfx("184.164.224.0/24")); res.Action != ActionReject {
		t.Fatal("failed engine accepted a withdraw")
	}
	en.SetFailed(false)
	if res := en.EvaluateAnnouncement("exp1", "amsix", pfx("184.164.224.0/24"), originAttrs(61574)); res.Action != ActionAccept {
		t.Fatal("recovered engine still rejecting")
	}
}

func TestPanicInPolicyFailsClosed(t *testing.T) {
	en := newTestEngine()
	// A nil Now function makes evaluation panic; the engine must recover,
	// reject, and mark itself failed.
	en.Now = nil
	res := en.EvaluateAnnouncement("exp1", "amsix", pfx("184.164.224.0/24"), originAttrs(61574))
	if res.Action != ActionReject {
		t.Fatal("panic did not reject")
	}
	en.Now = time.Now
	res = en.EvaluateAnnouncement("exp1", "amsix", pfx("184.164.224.0/24"), originAttrs(61574))
	if res.Action != ActionReject {
		t.Fatal("engine did not stay failed after panic")
	}
}

func TestAuditLog(t *testing.T) {
	en := newTestEngine()
	en.EvaluateAnnouncement("exp1", "amsix", pfx("8.8.8.0/24"), originAttrs(61574))
	en.EvaluateAnnouncement("exp1", "amsix", pfx("184.164.224.0/24"), originAttrs(61574))
	audit := en.Audit()
	if len(audit) != 2 {
		t.Fatalf("audit entries = %d", len(audit))
	}
	if audit[0].Action != ActionReject || audit[1].Action != ActionAccept {
		t.Errorf("audit actions: %s %s", audit[0].Action, audit[1].Action)
	}
	if !strings.Contains(audit[0].String(), "outside allocation") {
		t.Errorf("audit line: %s", audit[0])
	}
}

func TestNilAttrsAccepted(t *testing.T) {
	en := newTestEngine()
	res := en.EvaluateAnnouncement("exp1", "amsix", pfx("184.164.224.0/24"), nil)
	if res.Action != ActionAccept {
		t.Fatalf("nil attrs: %s %v", res.Action, res.Reasons)
	}
}

func TestUnregister(t *testing.T) {
	en := newTestEngine()
	en.Unregister("exp1")
	res := en.EvaluateAnnouncement("exp1", "amsix", pfx("184.164.224.0/24"), originAttrs(61574))
	if res.Action != ActionReject {
		t.Fatal("unregistered experiment accepted")
	}
	if en.Experiment("exp1") != nil {
		t.Error("Experiment() after unregister")
	}
}

func TestExperimentsSorted(t *testing.T) {
	en := newTestEngine()
	en.Register(&Experiment{Name: "alpha"})
	got := en.Experiments()
	if len(got) != 2 || got[0] != "alpha" || got[1] != "exp1" {
		t.Errorf("experiments = %v", got)
	}
}

func TestGlobalDailyLimitAcrossPoPs(t *testing.T) {
	en := newTestEngine()
	en.GlobalDailyLimit = 5
	now := time.Unix(1700000000, 0)
	en.Now = func() time.Time { return now }
	prefix := pfx("184.164.224.0/24")

	// Spread updates across PoPs: each PoP is far under its own 144
	// budget, but the AS-wide counter saturates at 5.
	pops := []string{"amsix", "seattle", "phoenix"}
	accepted := 0
	for i := 0; i < 10; i++ {
		res := en.EvaluateAnnouncement("exp1", pops[i%3], prefix, originAttrs(61574))
		if res.Action == ActionAccept {
			accepted++
		}
		now = now.Add(time.Second)
	}
	if accepted != 5 {
		t.Errorf("accepted %d updates, want the AS-wide cap of 5", accepted)
	}
	// Other prefixes have their own global budget.
	if res := en.EvaluateAnnouncement("exp1", "amsix", pfx("184.164.225.0/24"), originAttrs(61574)); res.Action != ActionAccept {
		t.Error("unrelated prefix blocked by another prefix's budget")
	}
	// The window slides for the global counter too.
	now = now.Add(25 * time.Hour)
	if res := en.EvaluateAnnouncement("exp1", "amsix", prefix, originAttrs(61574)); res.Action != ActionAccept {
		t.Error("global budget did not recover")
	}
}

// TestAuditEvictionKeepsRecent pins the cap-eviction contract: when the
// log fills, the OLDEST half is discarded and every entry after the cut
// survives in order — attribution needs recency. The eviction is also
// visible to operators through policy_audit_evicted_total.
func TestAuditEvictionKeepsRecent(t *testing.T) {
	en := NewEngine(platformASN)
	en.auditCap = 100
	evictedBefore := auditEvicted.Value()

	for i := 0; i < 150; i++ {
		en.record(AuditEntry{Experiment: fmt.Sprintf("e%d", i)})
	}

	// Cap hit at entry 100: the oldest 50 go, then growth resumes.
	log := en.Audit()
	if len(log) != 100 {
		t.Fatalf("audit length = %d, want 100", len(log))
	}
	if got := log[0].Experiment; got != "e50" {
		t.Errorf("oldest surviving entry = %s, want e50 (oldest half evicted)", got)
	}
	if got := log[len(log)-1].Experiment; got != "e149" {
		t.Errorf("newest entry = %s, want e149 (most recent always survive)", got)
	}
	for i, e := range log {
		if want := fmt.Sprintf("e%d", 50+i); e.Experiment != want {
			t.Fatalf("log[%d] = %s, want %s (contiguous, newest last)", i, e.Experiment, want)
		}
	}
	if got := auditEvicted.Value() - evictedBefore; got != 50 {
		t.Errorf("policy_audit_evicted_total advanced by %d, want 50", got)
	}
}

// TestRateLimitDayBoundary exercises the sliding window exactly at the
// 24-hour boundary: updates spread one per 10-minute slot fill the 144
// budget; the update at slot 144 lands exactly 24h after the first,
// which is still inside the window (the cutoff is exclusive), so it is
// rejected; one ε past 24h after the first slides it out and is
// accepted again.
func TestRateLimitDayBoundary(t *testing.T) {
	en := newTestEngine()
	start := time.Unix(1700000000, 0)
	now := start
	en.Now = func() time.Time { return now }
	prefix := pfx("184.164.224.0/24")

	for i := 0; i < DefaultDailyUpdateLimit; i++ {
		now = start.Add(time.Duration(i) * 10 * time.Minute)
		if res := en.EvaluateAnnouncement("exp1", "amsix", prefix, originAttrs(61574)); res.Action != ActionAccept {
			t.Fatalf("slot %d rejected: %v", i, res.Reasons)
		}
	}

	// Slot 144 is exactly start+24h: the first update is not yet Before
	// the cutoff, so the window still holds all 144.
	now = start.Add(24 * time.Hour)
	if res := en.EvaluateAnnouncement("exp1", "amsix", prefix, originAttrs(61574)); res.Action != ActionReject {
		t.Fatal("update at the 144th slot (exactly 24h) accepted; window must still be full")
	}
	if got := en.RateBudgetRemaining(prefix, "amsix"); got != 0 {
		t.Errorf("budget at the boundary = %d, want 0", got)
	}

	// 24h+ε after the first update it leaves the window.
	now = start.Add(24*time.Hour + time.Second)
	if res := en.EvaluateAnnouncement("exp1", "amsix", prefix, originAttrs(61574)); res.Action != ActionAccept {
		t.Fatalf("update 24h+ε after the first rejected: %v", res.Reasons)
	}
}
