// Package policy implements vBGP's control-plane enforcement engine
// (paper §3.3, §4.7): it interposes between experiment BGP sessions and
// the router, evaluates every announcement against the experiment's
// allocation and capabilities, enforces update rate limits, strips
// disallowed attributes, logs everything for attribution, and fails
// closed when unhealthy.
//
// The engine is deliberately decoupled from the routing engine so that
// policies can be stateful, evolve independently, and be validated with
// unit tests that inject conditions — the design rationale of §3.3.
package policy

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/bgp"
	"repro/internal/guard"
	"repro/internal/rpki"
	"repro/internal/telemetry"
)

// Capabilities is the per-experiment capability set (paper §4.7). The
// zero value is the default "basic announcements only" privilege level,
// per the principle of least privilege.
type Capabilities struct {
	// MaxPoisonedASNs is how many foreign ASNs the experiment may insert
	// into AS paths (BGP poisoning). Zero forbids poisoning.
	MaxPoisonedASNs int
	// MaxCommunities is how many BGP communities (regular or large) an
	// announcement may carry. Zero means communities are stripped.
	MaxCommunities int
	// AllowTransitiveAttrs permits optional transitive attributes
	// unknown to the platform. When false they are stripped.
	AllowTransitiveAttrs bool
	// AllowTransit permits announcing routes whose origin ASN is not one
	// of the experiment's ASNs (legitimately providing transit for an
	// experimental prefix).
	AllowTransit bool
	// MaxPathLen bounds the total AS-path length, rejecting the
	// "paths with thousands of ASes" experiments the paper declined.
	// Zero selects DefaultMaxPathLen.
	MaxPathLen int
}

// DefaultMaxPathLen is the AS-path length cap applied when an
// experiment's capability set does not override it.
const DefaultMaxPathLen = 16

// DefaultDailyUpdateLimit is the per-prefix-per-PoP update budget:
// 144 updates/day, an average of one every 10 minutes (paper §4.7).
const DefaultDailyUpdateLimit = 144

// Experiment is the enforcement-relevant registration of one approved
// experiment: its allocation and capabilities.
type Experiment struct {
	// Name identifies the experiment.
	Name string
	// Prefixes is the experiment's address allocation. Announcements
	// must be these prefixes or subnets of them.
	Prefixes []netip.Prefix
	// ASNs are the origin AS numbers the experiment may use.
	ASNs []uint32
	// Caps is the experiment's capability set.
	Caps Capabilities
}

// allows reports whether p is within the experiment's allocation.
func (e *Experiment) allows(p netip.Prefix) bool {
	for _, a := range e.Prefixes {
		if a.Bits() <= p.Bits() && a.Contains(p.Addr()) {
			return true
		}
	}
	return false
}

func (e *Experiment) ownsASN(asn uint32) bool {
	for _, a := range e.ASNs {
		if a == asn {
			return true
		}
	}
	return false
}

func (e *Experiment) maxPathLen() int {
	if e.Caps.MaxPathLen > 0 {
		return e.Caps.MaxPathLen
	}
	return DefaultMaxPathLen
}

// Action is the engine's decision for one route.
type Action int

// Actions.
const (
	ActionAccept Action = iota
	ActionAcceptModified
	ActionReject
)

// String names the action.
func (a Action) String() string {
	return [...]string{"accept", "accept-modified", "reject"}[a]
}

// AuditEntry records one enforcement decision for attribution (§3.3).
type AuditEntry struct {
	Time       time.Time
	Experiment string
	PoP        string
	Prefix     netip.Prefix
	Action     Action
	Reasons    []string
}

// String formats the entry as one log line.
func (e AuditEntry) String() string {
	return fmt.Sprintf("%s exp=%s pop=%s prefix=%s action=%s reasons=[%s]",
		e.Time.UTC().Format(time.RFC3339), e.Experiment, e.PoP, e.Prefix,
		e.Action, strings.Join(e.Reasons, "; "))
}

// Engine is the control-plane enforcement engine. One Engine may be
// shared by every PoP of the platform, giving AS-wide policies
// synchronized state (paper §3.3: "state can be synchronized among vBGP
// instances to enable AS-wide policies"); per-PoP rate limits key on the
// PoP name.
type Engine struct {
	// PlatformASN is the platform's own AS number, which experiments'
	// paths are allowed to contain (vBGP prepends it on export).
	PlatformASN uint32

	// DailyUpdateLimit overrides DefaultDailyUpdateLimit when non-zero.
	DailyUpdateLimit int

	// GlobalDailyLimit, when non-zero, additionally caps the total
	// number of updates for one prefix across ALL PoPs per 24 hours —
	// the AS-wide synchronized policy the paper gives as the example of
	// what decoupled enforcement enables (§3.3: "limiting the total
	// number of times a prefix can be announced or withdrawn across all
	// PoPs during a 24 hour period").
	GlobalDailyLimit int

	// Now overrides the clock (tests).
	Now func() time.Time

	mu          sync.Mutex
	experiments map[string]*Experiment
	rate        map[rateKey][]time.Time
	failed      bool
	audit       []AuditEntry
	auditCap    int
	validator   rpki.Validator
	damper      *guard.Damper
}

type rateKey struct {
	prefix netip.Prefix
	pop    string
}

// NewEngine creates an engine with no registered experiments.
func NewEngine(platformASN uint32) *Engine {
	return &Engine{
		PlatformASN: platformASN,
		Now:         time.Now,
		experiments: make(map[string]*Experiment),
		rate:        make(map[rateKey][]time.Time),
		auditCap:    10000,
	}
}

// Register adds or replaces an experiment's authorization.
func (en *Engine) Register(e *Experiment) {
	en.mu.Lock()
	defer en.mu.Unlock()
	en.experiments[e.Name] = e
}

// Unregister removes an experiment's authorization.
func (en *Engine) Unregister(name string) {
	en.mu.Lock()
	defer en.mu.Unlock()
	delete(en.experiments, name)
}

// Experiment returns the registration for name, or nil.
func (en *Engine) Experiment(name string) *Experiment {
	en.mu.Lock()
	defer en.mu.Unlock()
	return en.experiments[name]
}

// SetFailed marks the engine unhealthy. While failed, every evaluation
// rejects: the engine fails closed, blocking all experiment announcements
// from propagating upstream (paper §4.7, "Impact of misbehaving
// experiments").
func (en *Engine) SetFailed(failed bool) {
	en.mu.Lock()
	defer en.mu.Unlock()
	if failed && !en.failed {
		failClosedTrips.Inc()
	}
	en.failed = failed
}

// SetValidator installs an RPKI origin validator. Once set, experiment
// announcements whose (prefix, origin) pair is Invalid against the
// validated cache are rejected before they reach the routing engine —
// the platform refuses to originate provably unauthorized routes even
// for experiments whose static allocation would otherwise allow them.
func (en *Engine) SetValidator(v rpki.Validator) {
	en.mu.Lock()
	defer en.mu.Unlock()
	en.validator = v
}

// SetDamper installs (or, with nil, removes) an RFC 2439 flap damper.
// With a damper set, every evaluated announcement and withdrawal
// registers a flap keyed ("experiment@pop", prefix), and announcements
// of suppressed routes are rejected until the penalty decays below the
// reuse threshold. Withdrawals are never blocked.
func (en *Engine) SetDamper(d *guard.Damper) {
	en.mu.Lock()
	defer en.mu.Unlock()
	en.damper = d
}

// Damper returns the installed flap damper, if any.
func (en *Engine) Damper() *guard.Damper {
	en.mu.Lock()
	defer en.mu.Unlock()
	return en.damper
}

// Audit returns a copy of the recorded decisions, newest last.
func (en *Engine) Audit() []AuditEntry {
	en.mu.Lock()
	defer en.mu.Unlock()
	return append([]AuditEntry(nil), en.audit...)
}

func (en *Engine) record(e AuditEntry) {
	if len(en.audit) >= en.auditCap {
		// Evict the oldest half: attribution needs recency, so the most
		// recent decisions always survive.
		evicted := len(en.audit) / 2
		en.audit = en.audit[evicted:]
		auditEvicted.Add(uint64(evicted))
	}
	en.audit = append(en.audit, e)
}

// Result is the outcome of evaluating one announcement.
type Result struct {
	Action Action
	// Attrs is the (possibly modified) attribute set to propagate when
	// Action is not ActionReject.
	Attrs *bgp.PathAttrs
	// Reasons explains rejections and modifications.
	Reasons []string
}

// EvaluateAnnouncement checks a single-prefix announcement from an
// experiment at a PoP. Any panic inside evaluation marks the engine
// failed (fail closed) and rejects.
func (en *Engine) EvaluateAnnouncement(expName, pop string, prefix netip.Prefix, attrs *bgp.PathAttrs) (res Result) {
	defer func() {
		if r := recover(); r != nil {
			en.SetFailed(true)
			verdictReject.Inc()
			res = Result{Action: ActionReject, Reasons: []string{fmt.Sprintf("internal policy error: %v (failing closed)", r)}}
		}
	}()
	en.mu.Lock()
	defer en.mu.Unlock()

	rejectWith := func(c *telemetry.Counter, reasons ...string) Result {
		c.Inc()
		r := Result{Action: ActionReject, Reasons: reasons}
		en.record(AuditEntry{Time: en.Now(), Experiment: expName, PoP: pop, Prefix: prefix, Action: ActionReject, Reasons: reasons})
		return r
	}
	reject := func(reasons ...string) Result { return rejectWith(verdictReject, reasons...) }

	if en.failed {
		return reject("enforcement engine unhealthy: failing closed")
	}
	exp := en.experiments[expName]
	if exp == nil {
		return reject("unknown experiment")
	}

	// Prefix ownership: no hijacks (§4.7 "policing content").
	if !exp.allows(prefix) {
		return reject(fmt.Sprintf("prefix %s outside allocation", prefix))
	}

	if attrs == nil {
		attrs = &bgp.PathAttrs{}
	}
	out := attrs.Clone()
	var mods []string

	// Origin ASN validation.
	if origin := out.OriginASN(); origin != 0 && !exp.ownsASN(origin) && origin != en.PlatformASN {
		if !exp.Caps.AllowTransit {
			return reject(fmt.Sprintf("origin AS%d not authorized", origin))
		}
	}

	// RPKI route origin validation (RFC 6811): an announcement whose
	// (prefix, origin) is Invalid against the validated cache never
	// leaves the platform. NotFound passes — most address space has no
	// ROA, and rejecting it would break every legacy experiment.
	if en.validator != nil {
		origin := out.OriginASN()
		if origin == 0 {
			if len(exp.ASNs) > 0 {
				origin = exp.ASNs[0]
			} else {
				origin = en.PlatformASN
			}
		}
		if st := en.validator.Validate(prefix, origin); st == rpki.Invalid {
			return rejectWith(verdictROVInvalid,
				fmt.Sprintf("RPKI invalid: origin AS%d not authorized for %s by any ROA", origin, prefix))
		}
	}

	// Path length and poisoning budget.
	if l := out.ASPathLen(); l > exp.maxPathLen() {
		return reject(fmt.Sprintf("AS path length %d exceeds cap %d", l, exp.maxPathLen()))
	}
	foreign := map[uint32]bool{}
	for _, asn := range out.ASPathFlat() {
		if asn != en.PlatformASN && !exp.ownsASN(asn) {
			foreign[asn] = true
		}
	}
	if len(foreign) > 0 && !exp.Caps.AllowTransit {
		if len(foreign) > exp.Caps.MaxPoisonedASNs {
			return reject(fmt.Sprintf("%d poisoned ASNs exceeds capability %d",
				len(foreign), exp.Caps.MaxPoisonedASNs))
		}
	}

	// Community capability: count both kinds against the budget; strip
	// when over (the paper's emulated-experiment test checks exactly
	// this stripping behavior, §4.7 "Testing security policies").
	if n := len(out.Communities) + len(out.LargeCommunities); n > exp.Caps.MaxCommunities {
		if len(out.Communities) > 0 {
			mods = append(mods, fmt.Sprintf("stripped %d communities (capability %d)",
				len(out.Communities), exp.Caps.MaxCommunities))
			out.Communities = nil
		}
		if len(out.LargeCommunities) > 0 {
			mods = append(mods, fmt.Sprintf("stripped %d large communities", len(out.LargeCommunities)))
			out.LargeCommunities = nil
		}
	}

	// Transitive attribute capability.
	if !exp.Caps.AllowTransitiveAttrs && len(out.Unknown) > 0 {
		mods = append(mods, fmt.Sprintf("stripped %d non-standard attributes", len(out.Unknown)))
		out.Unknown = nil
	}

	// Flap damping (RFC 2439): every announcement registers a flap;
	// once a route is suppressed, further announcements are rejected
	// until the penalty decays below the reuse threshold. Checked before
	// the rate limit so suppressed churn does not consume daily budget.
	if en.damper != nil {
		if sup, p := en.damper.Announce(dampKey(expName, pop, prefix)); sup {
			return rejectWith(verdictDamped, fmt.Sprintf("flap damping: %s from %s at %s suppressed (penalty %.0f ≥ %.0f)",
				prefix, expName, pop, p, en.damper.Config().SuppressThreshold))
		}
	}

	// Update rate limit (per prefix per PoP).
	if ok, observed := en.admitRateLocked(prefix, pop); !ok {
		return rejectWith(verdictRateLimited, fmt.Sprintf("update rate for %s at %s exceeds %d/day (observed %d in window)",
			prefix, pop, en.dailyLimit(), observed))
	}

	action := ActionAccept
	if len(mods) > 0 {
		action = ActionAcceptModified
		verdictAcceptModified.Inc()
	} else {
		verdictAccept.Inc()
	}
	en.record(AuditEntry{Time: en.Now(), Experiment: expName, PoP: pop, Prefix: prefix, Action: action, Reasons: mods})
	return Result{Action: action, Attrs: out, Reasons: mods}
}

// EvaluateWithdraw checks a withdrawal: it must reference the
// experiment's own allocation and it consumes rate budget like an
// announcement (withdrawals are BGP updates too).
func (en *Engine) EvaluateWithdraw(expName, pop string, prefix netip.Prefix) Result {
	en.mu.Lock()
	defer en.mu.Unlock()
	rejectWith := func(c *telemetry.Counter, reasons ...string) Result {
		c.Inc()
		en.record(AuditEntry{Time: en.Now(), Experiment: expName, PoP: pop, Prefix: prefix, Action: ActionReject, Reasons: reasons})
		return Result{Action: ActionReject, Reasons: reasons}
	}
	reject := func(reasons ...string) Result { return rejectWith(verdictReject, reasons...) }
	if en.failed {
		return reject("enforcement engine unhealthy: failing closed")
	}
	exp := en.experiments[expName]
	if exp == nil {
		return reject("unknown experiment")
	}
	if !exp.allows(prefix) {
		return reject(fmt.Sprintf("prefix %s outside allocation", prefix))
	}
	// A withdrawal of an announced route is a flap, but withdrawals are
	// never blocked: suppression only withholds advertisements.
	if en.damper != nil {
		en.damper.Withdraw(dampKey(expName, pop, prefix))
	}
	if ok, observed := en.admitRateLocked(prefix, pop); !ok {
		return rejectWith(verdictRateLimited, fmt.Sprintf("update rate for %s at %s exceeds %d/day (observed %d in window)",
			prefix, pop, en.dailyLimit(), observed))
	}
	verdictAccept.Inc()
	en.record(AuditEntry{Time: en.Now(), Experiment: expName, PoP: pop, Prefix: prefix, Action: ActionAccept})
	return Result{Action: ActionAccept}
}

// dampKey keys the policy damper per (experiment, PoP, prefix): one
// experiment flapping a prefix at one PoP must not suppress another
// experiment's (or another PoP's) use of the same prefix.
func dampKey(expName, pop string, prefix netip.Prefix) guard.Key {
	return guard.Key{Peer: expName + "@" + pop, Prefix: prefix}
}

func (en *Engine) dailyLimit() int {
	if en.DailyUpdateLimit > 0 {
		return en.DailyUpdateLimit
	}
	return DefaultDailyUpdateLimit
}

// admitRateLocked implements 24-hour sliding-window counters per
// (prefix, PoP) and, when configured, per prefix across all PoPs. On
// rejection it reports the observed count in the window that tripped,
// so the verdict and audit entry can show load, not just the limit.
func (en *Engine) admitRateLocked(prefix netip.Prefix, pop string) (ok bool, observed int) {
	now := en.Now()
	cutoff := now.Add(-24 * time.Hour)

	prune := func(key rateKey) []time.Time {
		hist := en.rate[key]
		for len(hist) > 0 && hist[0].Before(cutoff) {
			hist = hist[1:]
		}
		en.rate[key] = hist
		return hist
	}

	key := rateKey{prefix, pop}
	hist := prune(key)
	if len(hist) >= en.dailyLimit() {
		return false, len(hist)
	}
	// AS-wide budget: the empty PoP name keys the synchronized counter.
	globalKey := rateKey{prefix, ""}
	if en.GlobalDailyLimit > 0 {
		if g := prune(globalKey); len(g) >= en.GlobalDailyLimit {
			return false, len(g)
		}
	}
	en.rate[key] = append(hist, now)
	if en.GlobalDailyLimit > 0 {
		en.rate[globalKey] = append(en.rate[globalKey], now)
	}
	return true, len(hist) + 1
}

// RateBudgetRemaining reports how many updates remain in the current
// 24-hour window for (prefix, pop).
func (en *Engine) RateBudgetRemaining(prefix netip.Prefix, pop string) int {
	en.mu.Lock()
	defer en.mu.Unlock()
	key := rateKey{prefix, pop}
	cutoff := en.Now().Add(-24 * time.Hour)
	n := 0
	for _, t := range en.rate[key] {
		if !t.Before(cutoff) {
			n++
		}
	}
	if rem := en.dailyLimit() - n; rem > 0 {
		return rem
	}
	return 0
}

// Experiments returns the registered experiment names, sorted.
func (en *Engine) Experiments() []string {
	en.mu.Lock()
	defer en.mu.Unlock()
	names := make([]string, 0, len(en.experiments))
	for n := range en.experiments {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
