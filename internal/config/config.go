// Package config implements Peering's intent-based configuration
// pipeline (§5): a central desired-state model describing experiments,
// PoPs, and interconnections; validation; a versioned store with canary
// deployment and rollback; and generators that transform the model into
// per-service configurations (routing-engine config text, enforcement
// engine registrations, VPN credentials, and network-controller
// intents).
package config

import (
	"fmt"
	"net/netip"
	"sort"

	"repro/internal/netctl"
	"repro/internal/policy"
)

// ExperimentSpec is one approved experiment in the model.
type ExperimentSpec struct {
	// Name identifies the experiment.
	Name string
	// Owner is the responsible researcher (attribution).
	Owner string
	// ASNs the experiment may originate from.
	ASNs []uint32
	// Prefixes allocated to the experiment.
	Prefixes []netip.Prefix
	// Caps is the granted capability set (§4.7).
	Caps policy.Capabilities
	// Approved gates activation; unapproved experiments generate no
	// configuration.
	Approved bool
	// VPNKey is the tunnel credential issued on approval.
	VPNKey string
}

// IfaceSpec is one router interface.
type IfaceSpec struct {
	Name string
	// Role is "experiment", "backbone", or "neighbor".
	Role string
	// Addr is the interface address with prefix.
	Addr netip.Prefix
}

// NeighborSpec is one interconnection at a PoP.
type NeighborSpec struct {
	Name string
	// ID is the platform-wide neighbor identifier (1..9999).
	ID uint32
	// ASN of the neighbor.
	ASN uint32
	// Addr on the shared segment.
	Addr netip.Addr
	// Interface names the PoP interface the neighbor is on.
	Interface string
	// RouteServer marks transparent route-server sessions.
	RouteServer bool
	// Transit marks transit interconnections (vs peering).
	Transit bool
}

// PoPSpec is one point of presence.
type PoPSpec struct {
	Name     string
	RouterID netip.Addr
	// LocalPool is the PoP's next-hop pool for experiments.
	LocalPool netip.Prefix
	// BandwidthLimitBps shapes experiment traffic at
	// bandwidth-constrained sites (two sites in the paper); 0 = none.
	BandwidthLimitBps float64
	Interfaces        []IfaceSpec
	Neighbors         []NeighborSpec
}

// Model is the central desired-state database content.
type Model struct {
	PlatformASN uint32
	GlobalPool  netip.Prefix
	Experiments []ExperimentSpec
	PoPs        []PoPSpec
}

// Validate checks platform-wide invariants: nonzero 16-bit-safe unique
// neighbor IDs, non-overlapping experiment allocations, approved
// experiments with allocations, interface references.
func (m *Model) Validate() error {
	ids := make(map[uint32]string)
	for _, pop := range m.PoPs {
		ifaces := make(map[string]bool)
		for _, ifc := range pop.Interfaces {
			if ifaces[ifc.Name] {
				return fmt.Errorf("config: pop %s: duplicate interface %s", pop.Name, ifc.Name)
			}
			ifaces[ifc.Name] = true
		}
		for _, n := range pop.Neighbors {
			if n.ID == 0 || n.ID > 9999 {
				return fmt.Errorf("config: pop %s neighbor %s: ID %d outside 1..9999", pop.Name, n.Name, n.ID)
			}
			if prev, dup := ids[n.ID]; dup {
				return fmt.Errorf("config: neighbor ID %d reused by %s and %s/%s", n.ID, prev, pop.Name, n.Name)
			}
			ids[n.ID] = pop.Name + "/" + n.Name
			if !ifaces[n.Interface] {
				return fmt.Errorf("config: pop %s neighbor %s: unknown interface %s", pop.Name, n.Name, n.Interface)
			}
		}
	}
	for i, e := range m.Experiments {
		if !e.Approved {
			continue
		}
		if len(e.Prefixes) == 0 || len(e.ASNs) == 0 {
			return fmt.Errorf("config: experiment %s approved without allocation", e.Name)
		}
		for _, p := range e.Prefixes {
			for _, other := range m.Experiments[:i] {
				if !other.Approved {
					continue
				}
				for _, q := range other.Prefixes {
					if p.Overlaps(q) {
						return fmt.Errorf("config: experiments %s and %s have overlapping prefixes %s/%s",
							e.Name, other.Name, p, q)
					}
				}
			}
		}
	}
	return nil
}

// PoP returns the named PoP spec, or nil.
func (m *Model) PoP(name string) *PoPSpec {
	for i := range m.PoPs {
		if m.PoPs[i].Name == name {
			return &m.PoPs[i]
		}
	}
	return nil
}

// ApprovedExperiments returns the active experiments sorted by name.
func (m *Model) ApprovedExperiments() []ExperimentSpec {
	var out []ExperimentSpec
	for _, e := range m.Experiments {
		if e.Approved {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// SyncPolicy reconciles an enforcement engine with the model: approved
// experiments are registered, everything else unregistered — without
// disturbing unrelated state (rate-limit history survives).
func (m *Model) SyncPolicy(en *policy.Engine) {
	want := make(map[string]bool)
	for _, e := range m.ApprovedExperiments() {
		want[e.Name] = true
		en.Register(&policy.Experiment{
			Name:     e.Name,
			Prefixes: e.Prefixes,
			ASNs:     e.ASNs,
			Caps:     e.Caps,
		})
	}
	for _, name := range en.Experiments() {
		if !want[name] {
			en.Unregister(name)
		}
	}
}

// NetworkIntent derives the network-controller intent for a PoP.
func (m *Model) NetworkIntent(pop string) (netctl.Intent, error) {
	p := m.PoP(pop)
	if p == nil {
		return netctl.Intent{}, fmt.Errorf("config: unknown pop %s", pop)
	}
	intent := netctl.Intent{Ifaces: make(map[string]netctl.IfaceIntent)}
	for _, ifc := range p.Interfaces {
		intent.Ifaces[ifc.Name] = netctl.IfaceIntent{
			Addrs: []netip.Addr{ifc.Addr.Addr()},
		}
	}
	return intent, nil
}
