package config

import (
	"fmt"
	"sort"
	"sync"
)

// Store is the versioned configuration database: every Put snapshots a
// new revision that can be inspected, deployed, and rolled back (§5:
// "all configuration files ... are stored in a version-control system
// where they can be inspected and rolled back if needed").
type Store struct {
	mu    sync.Mutex
	revs  []Model        // revs[i] is revision i+1
	notes map[int]string // revision -> commit note (only noted revisions)
}

// NewStore creates an empty store.
func NewStore() *Store { return &Store{notes: make(map[int]string)} }

// Put validates and stores a new revision, returning its number.
func (s *Store) Put(m Model) (int, error) {
	return s.PutNoted(m, "")
}

// PutNoted is Put with a commit note recorded against the new revision
// (the control plane writes "created foo @3"-style notes so the
// revision log reads like a change history).
func (s *Store) PutNoted(m Model, note string) (int, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.revs = append(s.revs, m)
	rev := len(s.revs)
	if note != "" {
		if s.notes == nil {
			s.notes = make(map[int]string)
		}
		s.notes[rev] = note
	}
	return rev, nil
}

// Note returns the commit note recorded for a revision ("" when none).
func (s *Store) Note(rev int) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.notes[rev]
}

// Notes returns a copy of every recorded commit note, keyed by revision.
func (s *Store) Notes() map[int]string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[int]string, len(s.notes))
	for k, v := range s.notes {
		out[k] = v
	}
	return out
}

// Get returns revision rev (1-based).
func (s *Store) Get(rev int) (Model, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if rev < 1 || rev > len(s.revs) {
		return Model{}, fmt.Errorf("config: no revision %d (have 1..%d)", rev, len(s.revs))
	}
	return s.revs[rev-1], nil
}

// Latest returns the newest revision and its number, or rev 0 when
// empty.
func (s *Store) Latest() (Model, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.revs) == 0 {
		return Model{}, 0
	}
	return s.revs[len(s.revs)-1], len(s.revs)
}

// Revisions returns a copy of the full revision log, oldest first
// (revs[i] is revision i+1). The control plane's durability layer
// snapshots it so a restarted daemon reproduces the exact revision
// numbering (§5: configuration history survives in version control).
func (s *Store) Revisions() []Model {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Model(nil), s.revs...)
}

// Rollback re-stores revision rev as the newest revision, returning the
// new revision number.
func (s *Store) Rollback(rev int) (int, error) {
	m, err := s.Get(rev)
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.revs = append(s.revs, m)
	return len(s.revs), nil
}

// Deployer rolls revisions out to PoPs with canarying: a new revision is
// applied to a canary subset first, then promoted to the rest (§5: "we
// canary the new configuration on a subset of our production fleet").
type Deployer struct {
	store *Store
	// Apply pushes one model to one PoP (wired to SyncPolicy +
	// netctl.Reconcile + router config regeneration by the platform).
	Apply func(pop string, m Model) error

	mu       sync.Mutex
	deployed map[string]int // pop -> revision
}

// NewDeployer creates a deployer over the store.
func NewDeployer(store *Store, apply func(pop string, m Model) error) *Deployer {
	return &Deployer{store: store, Apply: apply, deployed: make(map[string]int)}
}

// Canary applies revision rev to the named PoPs only.
func (d *Deployer) Canary(rev int, pops []string) error {
	m, err := d.store.Get(rev)
	if err != nil {
		return err
	}
	for _, pop := range pops {
		if err := d.Apply(pop, m); err != nil {
			return fmt.Errorf("config: canary %s: %w", pop, err)
		}
		d.mu.Lock()
		d.deployed[pop] = rev
		d.mu.Unlock()
	}
	return nil
}

// Promote applies revision rev to every PoP in the model that is not
// already running it.
func (d *Deployer) Promote(rev int) error {
	m, err := d.store.Get(rev)
	if err != nil {
		return err
	}
	for _, pop := range m.PoPs {
		d.mu.Lock()
		cur := d.deployed[pop.Name]
		d.mu.Unlock()
		if cur == rev {
			continue
		}
		if err := d.Apply(pop.Name, m); err != nil {
			return fmt.Errorf("config: promote %s: %w", pop.Name, err)
		}
		d.mu.Lock()
		d.deployed[pop.Name] = rev
		d.mu.Unlock()
	}
	return nil
}

// Restore seeds the deployed map from recovered state without invoking
// Apply: the revisions were already pushed before the restart, and the
// control plane re-syncs policy as part of its own recovery pass.
func (d *Deployer) Restore(deployed map[string]int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for pop, rev := range deployed {
		d.deployed[pop] = rev
	}
}

// Deployed returns the revision each PoP runs, sorted by PoP name.
func (d *Deployer) Deployed() map[string]int {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[string]int, len(d.deployed))
	for k, v := range d.deployed {
		out[k] = v
	}
	return out
}

// Fleet returns the deployed PoP names, sorted.
func (d *Deployer) Fleet() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, 0, len(d.deployed))
	for k := range d.deployed {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
