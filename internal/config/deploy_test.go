package config

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// TestDeployerMidPromoteFailure drives a fleet-wide promote that dies
// halfway: the deployer must report the true partial rollout — PoPs
// applied before the failure at the new revision, the rest still on the
// old one — and a retry after the fault clears must touch only the
// PoPs left behind.
func TestDeployerMidPromoteFailure(t *testing.T) {
	s := NewStore()
	rev1, _ := s.Put(sampleModel())
	rev2, _ := s.Put(sampleModel())

	boom := errors.New("router config rejected")
	var failSeattle bool
	applied := make(map[string]int)
	d := NewDeployer(s, func(pop string, m Model) error {
		if failSeattle && pop == "seattle" {
			return boom
		}
		applied[pop]++
		return nil
	})
	if err := d.Promote(rev1); err != nil {
		t.Fatal(err)
	}

	// Promote iterates the model's PoPs in order (amsix, seattle):
	// amsix takes rev2, then seattle's apply fails.
	failSeattle = true
	err := d.Promote(rev2)
	if !errors.Is(err, boom) {
		t.Fatalf("mid-promote error = %v, want %v", err, boom)
	}
	dep := d.Deployed()
	if dep["amsix"] != rev2 || dep["seattle"] != rev1 {
		t.Fatalf("after failed promote deployed = %v, want amsix@%d seattle@%d", dep, rev2, rev1)
	}

	// Retry once the fault clears: only the straggler is re-applied.
	failSeattle = false
	before := applied["amsix"]
	if err := d.Promote(rev2); err != nil {
		t.Fatal(err)
	}
	if applied["amsix"] != before {
		t.Error("retry re-applied a PoP already at the target revision")
	}
	dep = d.Deployed()
	if dep["amsix"] != rev2 || dep["seattle"] != rev2 {
		t.Fatalf("after retry deployed = %v, want fleet-wide %d", dep, rev2)
	}
}

// TestDeployerConcurrentCanaryPromote races canaries against a
// fleet-wide promote of a different revision. The deployer must stay
// race-clean (run under -race) and every PoP must land on one of the
// two revisions — never a torn or unknown value.
func TestDeployerConcurrentCanaryPromote(t *testing.T) {
	s := NewStore()
	rev1, _ := s.Put(sampleModel())
	rev2, _ := s.Put(sampleModel())

	d := NewDeployer(s, func(pop string, m Model) error {
		time.Sleep(time.Millisecond) // widen the race window
		return nil
	})

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			if err := d.Canary(rev1, []string{"amsix"}); err != nil {
				t.Errorf("canary: %v", err)
			}
		}()
		go func() {
			defer wg.Done()
			if err := d.Promote(rev2); err != nil {
				t.Errorf("promote: %v", err)
			}
		}()
	}
	wg.Wait()

	for pop, rev := range d.Deployed() {
		if rev != rev1 && rev != rev2 {
			t.Errorf("pop %s deployed at %d, want %d or %d", pop, rev, rev1, rev2)
		}
	}
	// A final quiescent promote converges the whole fleet.
	if err := d.Promote(rev2); err != nil {
		t.Fatal(err)
	}
	dep := d.Deployed()
	if dep["amsix"] != rev2 || dep["seattle"] != rev2 {
		t.Fatalf("final deployed = %v, want fleet-wide %d", dep, rev2)
	}
}
