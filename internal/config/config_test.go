package config

import (
	"errors"
	"fmt"
	"net/netip"
	"strings"
	"testing"

	"repro/internal/policy"
)

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }
func a(s string) netip.Addr     { return netip.MustParseAddr(s) }

func sampleModel() Model {
	return Model{
		PlatformASN: 47065,
		GlobalPool:  pfx("127.127.0.0/16"),
		Experiments: []ExperimentSpec{
			{Name: "exp1", Owner: "alice", ASNs: []uint32{61574},
				Prefixes: []netip.Prefix{pfx("184.164.224.0/23")}, Approved: true, VPNKey: "k1"},
			{Name: "exp2", Owner: "bob", ASNs: []uint32{61575},
				Prefixes: []netip.Prefix{pfx("184.164.226.0/24")}, Approved: true, VPNKey: "k2",
				Caps: policy.Capabilities{MaxPoisonedASNs: 2, MaxCommunities: 4}},
			{Name: "pending", Owner: "carol", Approved: false},
		},
		PoPs: []PoPSpec{
			{
				Name: "amsix", RouterID: a("198.51.100.1"), LocalPool: pfx("127.65.0.0/16"),
				Interfaces: []IfaceSpec{
					{Name: "ix0", Role: "neighbor", Addr: pfx("80.249.208.254/21")},
					{Name: "exp0", Role: "experiment", Addr: pfx("100.65.0.254/24")},
					{Name: "bb0", Role: "backbone", Addr: pfx("100.127.0.1/24")},
				},
				Neighbors: []NeighborSpec{
					{Name: "rs1", ID: 1, ASN: 64700, Addr: a("80.249.208.250"), Interface: "ix0", RouteServer: true},
					{Name: "transit1", ID: 2, ASN: 3356, Addr: a("80.249.208.1"), Interface: "ix0", Transit: true},
				},
			},
			{
				Name: "seattle", RouterID: a("198.51.100.2"), LocalPool: pfx("127.66.0.0/16"),
				BandwidthLimitBps: 100e6,
				Interfaces: []IfaceSpec{
					{Name: "ix0", Role: "neighbor", Addr: pfx("206.81.80.254/23")},
					{Name: "exp0", Role: "experiment", Addr: pfx("100.66.0.254/24")},
				},
				Neighbors: []NeighborSpec{
					{Name: "rs1", ID: 10, ASN: 64701, Addr: a("206.81.80.250"), Interface: "ix0", RouteServer: true},
				},
			},
		},
	}
}

func TestValidateAccepts(t *testing.T) {
	m := sampleModel()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Model)
	}{
		{"duplicate neighbor ID", func(m *Model) { m.PoPs[1].Neighbors[0].ID = 1 }},
		{"zero neighbor ID", func(m *Model) { m.PoPs[0].Neighbors[0].ID = 0 }},
		{"ID too large", func(m *Model) { m.PoPs[0].Neighbors[0].ID = 10000 }},
		{"unknown interface", func(m *Model) { m.PoPs[0].Neighbors[0].Interface = "ghost" }},
		{"duplicate interface", func(m *Model) {
			m.PoPs[0].Interfaces = append(m.PoPs[0].Interfaces, m.PoPs[0].Interfaces[0])
		}},
		{"overlapping allocations", func(m *Model) {
			m.Experiments[1].Prefixes = []netip.Prefix{pfx("184.164.224.0/24")}
		}},
		{"approved without allocation", func(m *Model) { m.Experiments[2].Approved = true }},
	}
	for _, c := range cases {
		m := sampleModel()
		c.mutate(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: validation passed", c.name)
		}
	}
}

func TestSyncPolicy(t *testing.T) {
	m := sampleModel()
	en := policy.NewEngine(m.PlatformASN)
	m.SyncPolicy(en)
	if got := en.Experiments(); len(got) != 2 || got[0] != "exp1" || got[1] != "exp2" {
		t.Fatalf("registered = %v", got)
	}
	// Capabilities flow through.
	if en.Experiment("exp2").Caps.MaxPoisonedASNs != 2 {
		t.Error("capabilities lost in sync")
	}
	// De-approving removes, approving new adds; others untouched.
	m.Experiments[0].Approved = false
	m.Experiments[2].Approved = true
	m.Experiments[2].ASNs = []uint32{61576}
	m.Experiments[2].Prefixes = []netip.Prefix{pfx("184.164.228.0/24")}
	m.SyncPolicy(en)
	if got := en.Experiments(); len(got) != 2 || got[0] != "exp2" || got[1] != "pending" {
		t.Fatalf("after resync = %v", got)
	}
}

func TestNetworkIntent(t *testing.T) {
	m := sampleModel()
	intent, err := m.NetworkIntent("amsix")
	if err != nil {
		t.Fatal(err)
	}
	if len(intent.Ifaces) != 3 {
		t.Errorf("interfaces = %d", len(intent.Ifaces))
	}
	if got := intent.Ifaces["ix0"].Addrs[0]; got != a("80.249.208.254") {
		t.Errorf("ix0 addr = %s", got)
	}
	if _, err := m.NetworkIntent("nope"); err == nil {
		t.Error("unknown pop accepted")
	}
}

func TestRenderRouterConfig(t *testing.T) {
	m := sampleModel()
	text, err := RenderRouterConfig(&m, "amsix")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"router id 198.51.100.1",
		"protocol bgp rs1",
		"add paths rx",
		"neighbor 80.249.208.1 as 3356",
		"protocol bgp mux_exp1",
		"if net ~ 184.164.224.0/23 then accept",
		"reject;",
		"table t_rs1",
		"table t_transit1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("rendered config missing %q", want)
		}
	}
	// Unapproved experiments generate nothing.
	if strings.Contains(text, "pending") {
		t.Error("unapproved experiment leaked into config")
	}
}

func TestRenderedConfigScalesWithNeighbors(t *testing.T) {
	// "configuration files for BIRD alone can exceed over 10,000 lines
	// at large PoPs" — line count must grow linearly with neighbors.
	m := sampleModel()
	small, _ := RenderRouterConfig(&m, "amsix")
	for i := 0; i < 500; i++ {
		m.PoPs[0].Neighbors = append(m.PoPs[0].Neighbors, NeighborSpec{
			Name: fmt.Sprintf("peer%d", i), ID: uint32(100 + i), ASN: uint32(20000 + i),
			Addr: a("80.249.209.1"), Interface: "ix0",
		})
	}
	big, err := RenderRouterConfig(&m, "amsix")
	if err != nil {
		t.Fatal(err)
	}
	smallLines := strings.Count(small, "\n")
	bigLines := strings.Count(big, "\n")
	if bigLines < smallLines+500*10 {
		t.Errorf("config did not scale: %d -> %d lines", smallLines, bigLines)
	}
}

func TestRenderVPNConfig(t *testing.T) {
	m := sampleModel()
	text := RenderVPNConfig(&m)
	if !strings.Contains(text, "client exp1 key k1") || !strings.Contains(text, "client exp2 key k2") {
		t.Errorf("vpn config: %s", text)
	}
	if strings.Contains(text, "pending") {
		t.Error("unapproved credential issued")
	}
}

func TestStoreVersioning(t *testing.T) {
	s := NewStore()
	if _, n := s.Latest(); n != 0 {
		t.Fatal("empty store should report rev 0")
	}
	m := sampleModel()
	r1, err := s.Put(m)
	if err != nil || r1 != 1 {
		t.Fatalf("put: %d %v", r1, err)
	}
	m2 := sampleModel()
	m2.Experiments[0].Approved = false
	r2, _ := s.Put(m2)
	if r2 != 2 {
		t.Fatalf("rev2 = %d", r2)
	}
	got, err := s.Get(1)
	if err != nil || !got.Experiments[0].Approved {
		t.Error("rev 1 mutated")
	}
	r3, err := s.Rollback(1)
	if err != nil || r3 != 3 {
		t.Fatalf("rollback: %d %v", r3, err)
	}
	latest, n := s.Latest()
	if n != 3 || !latest.Experiments[0].Approved {
		t.Error("rollback content wrong")
	}
	if _, err := s.Get(99); err == nil {
		t.Error("missing revision fetched")
	}
	bad := sampleModel()
	bad.PoPs[0].Neighbors[0].ID = 0
	if _, err := s.Put(bad); err == nil {
		t.Error("invalid model stored")
	}
}

func TestDeployerCanaryThenPromote(t *testing.T) {
	s := NewStore()
	rev, _ := s.Put(sampleModel())
	applied := make(map[string]int)
	d := NewDeployer(s, func(pop string, m Model) error {
		applied[pop]++
		return nil
	})
	if err := d.Canary(rev, []string{"amsix"}); err != nil {
		t.Fatal(err)
	}
	if applied["amsix"] != 1 || applied["seattle"] != 0 {
		t.Fatalf("after canary: %v", applied)
	}
	if err := d.Promote(rev); err != nil {
		t.Fatal(err)
	}
	// The canary PoP is not re-applied.
	if applied["amsix"] != 1 || applied["seattle"] != 1 {
		t.Fatalf("after promote: %v", applied)
	}
	dep := d.Deployed()
	if dep["amsix"] != rev || dep["seattle"] != rev {
		t.Errorf("deployed = %v", dep)
	}
	if fleet := d.Fleet(); len(fleet) != 2 || fleet[0] != "amsix" {
		t.Errorf("fleet = %v", fleet)
	}
}

func TestDeployerApplyFailure(t *testing.T) {
	s := NewStore()
	rev, _ := s.Put(sampleModel())
	boom := errors.New("apply failed")
	d := NewDeployer(s, func(pop string, m Model) error { return boom })
	if err := d.Canary(rev, []string{"amsix"}); !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
	if len(d.Deployed()) != 0 {
		t.Error("failed apply recorded as deployed")
	}
}
