// Package workload generates the synthetic inputs for the paper's
// scalability evaluation (§6): route tables of configurable size
// (Fig. 6a), BGP update streams at configurable rates (Fig. 6b), and the
// AMS-IX-scale exchange profile.
package workload

import (
	"math/rand"
	"net/netip"

	"repro/internal/bgp"
)

// RouteSpec is one synthetic route.
type RouteSpec struct {
	Prefix netip.Prefix
	Attrs  *bgp.PathAttrs
}

// Generator produces deterministic synthetic routes and updates.
type Generator struct {
	rng *rand.Rand
	// NeighborASN is the first hop of generated paths.
	NeighborASN uint32
	// NextHop is the next hop of generated routes.
	NextHop netip.Addr
}

// NewGenerator creates a generator seeded deterministically.
func NewGenerator(seed int64, neighborASN uint32, nextHop netip.Addr) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed)), NeighborASN: neighborASN, NextHop: nextHop}
}

// prefixFor maps an index to a unique prefix. Indexes spread across the
// 2000::-free IPv4 unicast space as /24s; beyond 2^21 they continue as
// /25s, /26s, ... so arbitrarily many unique prefixes exist.
func prefixFor(i int) netip.Prefix {
	bits := 24
	for i >= 1<<21 {
		i -= 1 << 21
		bits++
	}
	addr := netip.AddrFrom4([4]byte{
		byte(1 + (i>>16)&0x7f), byte(i >> 8), byte(i), 0,
	})
	return netip.PrefixFrom(addr, bits).Masked()
}

// Route generates the i-th route. The same (seed, i) yields the same
// route.
func (g *Generator) Route(i int) RouteSpec {
	pathLen := 2 + g.rng.Intn(4) // 3-6 hops including neighbor
	asns := make([]uint32, 0, pathLen+1)
	asns = append(asns, g.NeighborASN)
	for j := 0; j < pathLen; j++ {
		asns = append(asns, uint32(1000+g.rng.Intn(60000)))
	}
	attrs := &bgp.PathAttrs{
		Origin: bgp.OriginIGP, HasOrigin: true,
		ASPath:  []bgp.ASPathSegment{{Type: bgp.ASSequence, ASNs: asns}},
		NextHop: g.NextHop,
	}
	if g.rng.Float64() < 0.3 {
		attrs.MED, attrs.HasMED = uint32(g.rng.Intn(100)), true
	}
	if g.rng.Float64() < 0.25 {
		n := 1 + g.rng.Intn(3)
		for k := 0; k < n; k++ {
			attrs.Communities = append(attrs.Communities,
				bgp.NewCommunity(uint16(g.rng.Intn(65000)), uint16(g.rng.Intn(1000))))
		}
	}
	return RouteSpec{Prefix: prefixFor(i), Attrs: attrs}
}

// Routes generates n routes.
func (g *Generator) Routes(n int) []RouteSpec {
	out := make([]RouteSpec, n)
	for i := range out {
		out[i] = g.Route(i)
	}
	return out
}

// UpdateKind distinguishes stream events.
type UpdateKind int

// Stream event kinds.
const (
	KindAnnounce UpdateKind = iota
	KindWithdraw
)

// UpdateEvent is one element of an update stream.
type UpdateEvent struct {
	Kind  UpdateKind
	Route RouteSpec
}

// Stream produces n churn events over a working set of size setSize:
// initial announcements followed by a mix of re-announcements (with
// mutated paths, as real churn mostly is) and withdraw/re-announce
// pairs. Matches the Fig. 6b workload: a sustained stream of updates
// pushed through the full filter stack.
func (g *Generator) Stream(setSize, n int) []UpdateEvent {
	routes := g.Routes(setSize)
	out := make([]UpdateEvent, 0, n)
	for i := 0; i < n; i++ {
		idx := g.rng.Intn(setSize)
		r := routes[idx]
		if g.rng.Float64() < 0.1 {
			out = append(out, UpdateEvent{Kind: KindWithdraw, Route: r})
			continue
		}
		// Re-announce with a mutated path (prepend churn).
		mut := *r.Attrs
		mutPath := make([]bgp.ASPathSegment, len(r.Attrs.ASPath))
		copy(mutPath, r.Attrs.ASPath)
		mut.ASPath = mutPath
		mut.PrependAS(g.NeighborASN, g.rng.Intn(2)+1)
		out = append(out, UpdateEvent{Kind: KindAnnounce, Route: RouteSpec{Prefix: r.Prefix, Attrs: &mut}})
	}
	return out
}

// Update converts an event into a BGP UPDATE message.
func (e UpdateEvent) Update() *bgp.Update {
	if e.Kind == KindWithdraw {
		return &bgp.Update{Withdrawn: []bgp.NLRI{{Prefix: e.Route.Prefix}}}
	}
	return &bgp.Update{Attrs: e.Route.Attrs, NLRI: []bgp.NLRI{{Prefix: e.Route.Prefix}}}
}

// IXProfile describes one of the paper's exchanges (§4.2).
type IXProfile struct {
	Name         string
	Members      int
	Bilateral    int
	RouteServers int
	Transits     int
}

// PaperIXPs are the four exchanges with the §4.2 membership counts.
var PaperIXPs = []IXProfile{
	{Name: "AMS-IX", Members: 854, Bilateral: 106, RouteServers: 4, Transits: 2},
	{Name: "Seattle-IX", Members: 306, Bilateral: 63, RouteServers: 2, Transits: 2},
	{Name: "Phoenix-IX", Members: 140, Bilateral: 10, RouteServers: 2, Transits: 1},
	{Name: "IX.br/MG", Members: 129, Bilateral: 6, RouteServers: 2, Transits: 1},
}

// Scale shrinks a profile by factor (for tests and CI-speed benches),
// keeping at least one of everything.
func (p IXProfile) Scale(factor int) IXProfile {
	if factor <= 1 {
		return p
	}
	s := p
	s.Members = max(1, p.Members/factor)
	s.Bilateral = max(1, p.Bilateral/factor)
	return s
}
