package workload

import (
	"net/netip"
	"testing"
	"testing/quick"

	"repro/internal/bgp"
)

func TestPrefixForUnique(t *testing.T) {
	seen := make(map[netip.Prefix]bool)
	for i := 0; i < 100000; i++ {
		p := prefixFor(i)
		if seen[p] {
			t.Fatalf("duplicate prefix %s at index %d", p, i)
		}
		seen[p] = true
		if !p.IsValid() {
			t.Fatalf("invalid prefix at %d", i)
		}
	}
}

func TestPrefixForBeyond24Space(t *testing.T) {
	big := prefixFor(1<<21 + 5)
	if big.Bits() != 25 {
		t.Errorf("overflow prefix bits = %d, want 25", big.Bits())
	}
}

func TestPrefixForProperty(t *testing.T) {
	fn := func(a, b uint16) bool {
		i, j := int(a), int(b)
		return (i == j) == (prefixFor(i) == prefixFor(j))
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}

func TestRoutesDeterministic(t *testing.T) {
	nh := netip.MustParseAddr("192.0.2.1")
	g1 := NewGenerator(7, 65001, nh)
	g2 := NewGenerator(7, 65001, nh)
	r1, r2 := g1.Routes(100), g2.Routes(100)
	for i := range r1 {
		if r1[i].Prefix != r2[i].Prefix {
			t.Fatalf("prefix diverged at %d", i)
		}
		f1, f2 := r1[i].Attrs.ASPathFlat(), r2[i].Attrs.ASPathFlat()
		if len(f1) != len(f2) {
			t.Fatalf("path diverged at %d", i)
		}
	}
}

func TestRoutesShape(t *testing.T) {
	g := NewGenerator(7, 65001, netip.MustParseAddr("192.0.2.1"))
	for _, r := range g.Routes(500) {
		if r.Attrs.FirstASN() != 65001 {
			t.Fatalf("first ASN %d", r.Attrs.FirstASN())
		}
		if l := r.Attrs.ASPathLen(); l < 3 || l > 7 {
			t.Fatalf("path length %d out of band", l)
		}
		if !r.Attrs.NextHop.IsValid() {
			t.Fatal("missing next hop")
		}
	}
}

func TestStreamMixAndValidity(t *testing.T) {
	g := NewGenerator(7, 65001, netip.MustParseAddr("192.0.2.1"))
	events := g.Stream(100, 2000)
	if len(events) != 2000 {
		t.Fatalf("events = %d", len(events))
	}
	withdraws := 0
	for _, e := range events {
		u := e.Update()
		if e.Kind == KindWithdraw {
			withdraws++
			if len(u.Withdrawn) != 1 {
				t.Fatal("withdraw event without withdrawn NLRI")
			}
		} else if len(u.NLRI) != 1 || u.Attrs == nil {
			t.Fatal("announce event malformed")
		}
	}
	frac := float64(withdraws) / 2000
	if frac < 0.05 || frac > 0.2 {
		t.Errorf("withdraw fraction %.2f outside expected band", frac)
	}
}

func TestStreamEventsEncode(t *testing.T) {
	// Every generated update must survive a wire round trip: the Fig. 6b
	// bench feeds these through real sessions.
	g := NewGenerator(9, 65002, netip.MustParseAddr("192.0.2.2"))
	for _, e := range g.Stream(50, 200) {
		u := e.Update()
		if u.Attrs == nil {
			u.Attrs = &bgp.PathAttrs{}
		}
	}
}

func TestIXProfiles(t *testing.T) {
	if len(PaperIXPs) != 4 {
		t.Fatal("expected the four §4.2 exchanges")
	}
	ams := PaperIXPs[0]
	if ams.Members != 854 || ams.Bilateral != 106 || ams.RouteServers != 4 {
		t.Errorf("AMS-IX profile %+v", ams)
	}
	small := ams.Scale(10)
	if small.Members != 85 || small.Bilateral != 10 {
		t.Errorf("scaled profile %+v", small)
	}
	if one := ams.Scale(100000); one.Members != 1 || one.Bilateral != 1 {
		t.Errorf("floor scaling %+v", one)
	}
	if same := ams.Scale(1); same != ams {
		t.Error("factor 1 should be identity")
	}
}
