package eval

import (
	"fmt"
	"net/netip"
	"time"

	"repro/internal/catchment"
	"repro/internal/inet"
	"repro/internal/telemetry"
	"repro/peering"
)

// CatchmentResult summarizes one closed-loop TE run: how lopsided the
// initial anycast catchment was, and how many observe→decide→act
// rounds the controller needed to balance it.
type CatchmentResult struct {
	PoPs        int
	Clients     int
	Populations int
	Rounds      int
	Actions     int
	Converged   bool
	// InitialRatio is the worst-to-best PoP share ratio before any
	// steering.
	InitialRatio float64
	// InitialImbalance / FinalImbalance are the controller's own metric:
	// worst |share-target|/target across PoPs.
	InitialImbalance float64
	FinalImbalance   float64
	Wall             time.Duration
}

// MeasureCatchment stands up a popCount-PoP platform over a steerable
// synthetic Internet, places a cone-weighted population of the given
// size, and runs the closed-loop TE controller against equal per-PoP
// targets. The topology is the te-soak shape: peered tier-1s whose
// customer vias span every PoP with stub tails skewed toward the first
// PoPs, and via preferences landing every tier-1's own cone at the last
// PoP — so the starting catchment is several-to-one imbalanced.
func MeasureCatchment(popCount, clients int) (*CatchmentResult, error) {
	if popCount < 2 {
		return nil, fmt.Errorf("eval: catchment needs at least 2 PoPs, got %d", popCount)
	}
	const (
		platformASN = 47065
		expASN      = 61574
		tier1Count  = 10
	)
	top := inet.NewTopology()
	tier1s := make([]uint32, 0, tier1Count)
	for k := 0; k < tier1Count; k++ {
		asn := uint32(10 * (k + 1))
		top.AddAS(asn, "transit")
		tier1s = append(tier1s, asn)
	}
	for i := 0; i < len(tier1s); i++ {
		for j := i + 1; j < len(tier1s); j++ {
			if err := top.AddPeering(tier1s[i], tier1s[j]); err != nil {
				return nil, err
			}
		}
	}
	popNames := make([]string, popCount)
	viasByPoP := make(map[string][]uint32, popCount)
	stub := uint32(30000)
	for p := range popNames {
		popNames[p] = fmt.Sprintf("pop%02d", p+1)
	}
	for k, t1 := range tier1s {
		for p, pop := range popNames {
			via := uint32(1000 + 100*k + (popCount - 1 - p))
			top.AddAS(via, "transit")
			if err := top.AddTransit(via, t1); err != nil {
				return nil, err
			}
			viasByPoP[pop] = append(viasByPoP[pop], via)
			for i := 0; i < 2*(popCount-1-p); i++ {
				top.AddAS(stub, "access")
				if err := top.AddTransit(stub, via); err != nil {
					return nil, err
				}
				stub++
			}
		}
	}

	anycast := netip.MustParsePrefix("184.164.224.0/24")
	platform := peering.NewPlatform(peering.PlatformConfig{
		ASN: platformASN, Topology: top,
		TE: &peering.TEConfig{Prefix: anycast, Clients: clients, Seed: 47065},
	})
	defer platform.Close()
	platform.Engine.DailyUpdateLimit = 5000

	pops := make([]*peering.PoP, popCount)
	for i, name := range popNames {
		pop, err := platform.AddPoP(peering.PoPConfig{
			Name:      name,
			RouterID:  netip.AddrFrom4([4]byte{198, 51, 100, byte(i + 1)}),
			LocalPool: netip.MustParsePrefix(fmt.Sprintf("127.%d.0.0/16", 65+i)),
			ExpLAN:    netip.MustParsePrefix(fmt.Sprintf("100.%d.0.0/24", 65+i)),
		})
		if err != nil {
			return nil, err
		}
		pops[i] = pop
	}
	for i := 0; i < len(pops); i++ {
		for j := i + 1; j < len(pops); j++ {
			if err := platform.ConnectBackbone(pops[i], pops[j], 400e6, 10*time.Millisecond); err != nil {
				return nil, err
			}
		}
	}
	for i, name := range popNames {
		for _, via := range viasByPoP[name] {
			if _, err := pops[i].ConnectTransit(via, 5); err != nil {
				return nil, err
			}
		}
	}
	if err := platform.Submit(peering.Proposal{
		Name: "catchment-bench", Owner: "eval", Plan: "closed-loop TE benchmark",
		Prefixes: []netip.Prefix{netip.MustParsePrefix("184.164.224.0/23")},
		ASNs:     []uint32{expASN},
	}); err != nil {
		return nil, err
	}
	key, err := platform.Approve("catchment-bench", nil)
	if err != nil {
		return nil, err
	}
	client := peering.NewClient("catchment-bench", key, expASN)
	for i, name := range popNames {
		if err := client.OpenTunnel(pops[i]); err != nil {
			return nil, err
		}
		if err := client.StartBGP(name); err != nil {
			return nil, err
		}
		if err := client.WaitEstablished(name, 10*time.Second); err != nil {
			return nil, err
		}
	}

	te, err := platform.NewTEController(client, &peering.TEConfig{
		Tolerance:     0.10,
		MaxRounds:     64,
		Patience:      12,
		SettleTimeout: 30 * time.Second,
		Registry:      telemetry.NewRegistry(),
	})
	if err != nil {
		return nil, err
	}
	start := time.Now()
	run, err := te.Run()
	if err != nil {
		return nil, err
	}
	res := &CatchmentResult{
		PoPs:        popCount,
		Clients:     catchment.TotalClients(te.Populations()),
		Populations: len(te.Populations()),
		Rounds:      len(run.Rounds),
		Converged:   run.Converged,
		Wall:        time.Since(start),
	}
	if len(run.Rounds) > 0 {
		first := run.Rounds[0]
		res.InitialImbalance = first.Imbalance
		res.FinalImbalance = run.Rounds[len(run.Rounds)-1].Imbalance
		maxShare, minShare := 0.0, 1.0
		for _, name := range popNames {
			s := first.Shares[name]
			if s > maxShare {
				maxShare = s
			}
			if s < minShare {
				minShare = s
			}
		}
		if minShare > 0 {
			res.InitialRatio = maxShare / minShare
		}
		for _, r := range run.Rounds {
			res.Actions += len(r.Actions)
		}
	}
	return res, nil
}
