package eval

import (
	"testing"
	"time"
)

func TestFig6aShape(t *testing.T) {
	res := MeasureFig6a([]int{5000, 10000, 20000}, 10)
	for _, cfg := range Fig6aConfigs {
		pts := res.Curves[cfg]
		if len(pts) != 3 {
			t.Fatalf("%s: %d points", cfg, len(pts))
		}
		// Linearity: doubling routes roughly doubles memory.
		ratio := float64(pts[2].Bytes) / float64(pts[1].Bytes)
		if ratio < 1.5 || ratio > 2.6 {
			t.Errorf("%s: growth ratio %.2f not ~2", cfg, ratio)
		}
		if res.BytesPerRoute(cfg) <= 0 {
			t.Errorf("%s: non-positive B/route", cfg)
		}
	}
	if !(res.BytesPerRoute(Fig6aConfigs[0]) < res.BytesPerRoute(Fig6aConfigs[1]) &&
		res.BytesPerRoute(Fig6aConfigs[1]) < res.BytesPerRoute(Fig6aConfigs[2])) {
		t.Errorf("Fig 6a ordering violated: %v / %v / %v",
			res.BytesPerRoute(Fig6aConfigs[0]), res.BytesPerRoute(Fig6aConfigs[1]), res.BytesPerRoute(Fig6aConfigs[2]))
	}
}

func TestFig6bShape(t *testing.T) {
	res := MeasureFig6b(1 << 14)
	for _, cfg := range Fig6bConfigs {
		if res.PerUpdate[cfg] <= 0 {
			t.Fatalf("%s: non-positive per-update time", cfg)
		}
	}
	if !(res.PerUpdate["accept"] < res.PerUpdate["single-router-vbgp"]) {
		t.Errorf("accept (%v) should be cheaper than single-router (%v)",
			res.PerUpdate["accept"], res.PerUpdate["single-router-vbgp"])
	}
	// CPU projection is linear by construction; sanity-check scale.
	if cpu := res.CPUAtRate("single-router-vbgp", 4000); cpu <= 0 || cpu > 1 {
		t.Errorf("projected CPU at 4000/s = %v", cpu)
	}
}

func TestBackboneEnvelope(t *testing.T) {
	res, err := MeasureBackbone(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 6 {
		t.Fatalf("pairs = %d", len(res.Pairs))
	}
	if res.Min < 40 || res.Max > 800 || res.Avg < res.Min || res.Avg > res.Max {
		t.Errorf("envelope min=%.0f avg=%.0f max=%.0f", res.Min, res.Avg, res.Max)
	}
}

func TestAMSIXScaleSmall(t *testing.T) {
	res, err := MeasureAMSIX(100, 5) // 8 members, 1 bilateral
	if err != nil {
		t.Fatal(err)
	}
	if res.Members != 8 || res.RouteServers != 4 {
		t.Fatalf("profile %+v", res)
	}
	want := res.Members * 5 * res.RouteServers
	if res.Routes != want {
		t.Errorf("routes = %d, want %d", res.Routes, want)
	}
	if res.BytesPerRoute <= 0 {
		t.Error("no memory accounting")
	}
}

func TestFootprintCounts(t *testing.T) {
	res := MeasureFootprint(10)
	if res.PoPs != 13 || res.ASNs != 8 || res.Prefixes != 40 {
		t.Errorf("configured constants: %+v", res)
	}
	ams := res.PerIXP["AMS-IX"]
	if ams[0] != 85 || ams[1] != 10 {
		t.Errorf("AMS-IX scaled counts %v", ams)
	}
	if res.TotalPeers == 0 || res.PeerConeUnion < res.TotalPeers {
		t.Errorf("peers=%d coneUnion=%d", res.TotalPeers, res.PeerConeUnion)
	}
	// Paper's mix ordering: transit >= access >= content.
	if !(res.TypePercent["transit"] >= res.TypePercent["content"]) {
		t.Errorf("type mix %v", res.TypePercent)
	}
}

func TestUpdateLoadProjection(t *testing.T) {
	res := MeasureUpdateLoad()
	if res.MeanCPU <= 0 || res.P99CPU <= res.MeanCPU {
		t.Errorf("CPU projections mean=%v p99=%v", res.MeanCPU, res.P99CPU)
	}
	if res.P99CPU > 0.5 {
		t.Errorf("p99 CPU %v exceeds the headroom claim", res.P99CPU)
	}
	_ = time.Second
}
