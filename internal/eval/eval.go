// Package eval regenerates the paper's evaluation (§6 and the
// quantified claims of §4.2/§4.7) as structured measurements with
// paper-vs-measured comparisons. cmd/vbgp-bench renders them as tables.
package eval

import (
	"fmt"
	"math/rand"
	"net/netip"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/inet"
	"repro/internal/ixp"
	"repro/internal/policy"
	"repro/internal/rib"
	"repro/internal/traffic"
	"repro/internal/workload"
)

func heapInUse() uint64 {
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m.HeapInuse
}

// Fig6aPoint is one (routes, memory) sample for one configuration.
type Fig6aPoint struct {
	Routes int
	Bytes  uint64
}

// Fig6aResult holds the three memory curves of Fig. 6a.
type Fig6aResult struct {
	// Curves maps configuration name to samples:
	// "control-plane", "per-interconnection-data-plane",
	// "per-interconnection-data-plane-with-default".
	Curves map[string][]Fig6aPoint
}

// Fig6aConfigs is the plotting order.
var Fig6aConfigs = []string{
	"control-plane",
	"per-interconnection-data-plane",
	"per-interconnection-data-plane-with-default",
}

// BytesPerRoute fits the slope of a curve (last sample minus first,
// which cancels fixed overheads).
func (r *Fig6aResult) BytesPerRoute(config string) float64 {
	pts := r.Curves[config]
	if len(pts) < 2 {
		return 0
	}
	first, last := pts[0], pts[len(pts)-1]
	return float64(last.Bytes-first.Bytes) / float64(last.Routes-first.Routes)
}

// MeasureFig6a loads synthetic routes into each configuration's data
// structures at the given sizes and samples live heap.
func MeasureFig6a(sizes []int, neighbors int) *Fig6aResult {
	res := &Fig6aResult{Curves: make(map[string][]Fig6aPoint)}
	for _, config := range Fig6aConfigs {
		for _, n := range sizes {
			before := heapInUse()
			keep := buildTables(config, neighbors, n)
			after := heapInUse()
			res.Curves[config] = append(res.Curves[config], Fig6aPoint{Routes: n, Bytes: after - before})
			runtime.KeepAlive(keep)
		}
	}
	return res
}

func buildTables(config string, neighbors, total int) []any {
	gen := workload.NewGenerator(1, 65001, netip.MustParseAddr("192.0.2.1"))
	var keep []any
	switch config {
	case "control-plane":
		t := rib.NewTable("loc-rib")
		for i := 0; i < total; i++ {
			r := gen.Route(i)
			t.Add(&rib.Path{Prefix: r.Prefix, Peer: fmt.Sprintf("n%d", i%neighbors),
				Attrs: r.Attrs, EBGP: true, Seq: rib.NextSeq()})
		}
		keep = append(keep, t)
	default:
		perNbr := total / neighbors
		for n := 0; n < neighbors; n++ {
			t := rib.NewTable(fmt.Sprintf("adj-%d", n))
			f := rib.NewFIB(fmt.Sprintf("fib-%d", n))
			for i := 0; i < perNbr; i++ {
				r := gen.Route(n*perNbr + i)
				t.Add(&rib.Path{Prefix: r.Prefix, Peer: t.Name, Attrs: r.Attrs, EBGP: true, Seq: rib.NextSeq()})
				f.Set(r.Prefix, rib.FIBEntry{NextHop: r.Attrs.NextHop, Out: t.Name})
			}
			keep = append(keep, t, f)
		}
		if strings.HasSuffix(config, "with-default") {
			d := rib.NewTable("default")
			for i := 0; i < total; i++ {
				r := gen.Route(i)
				d.Add(&rib.Path{Prefix: r.Prefix, Peer: "best", Attrs: r.Attrs, Seq: rib.NextSeq()})
			}
			keep = append(keep, d)
		}
	}
	return keep
}

// Fig6bResult holds per-update costs for the three Fig. 6b filter
// configurations.
type Fig6bResult struct {
	// PerUpdate maps configuration ("accept", "single-router-vbgp",
	// "multi-router-vbgp") to the measured cost of one update.
	PerUpdate map[string]time.Duration
}

// Fig6bConfigs is the plotting order.
var Fig6bConfigs = []string{"accept", "single-router-vbgp", "multi-router-vbgp"}

// CPUAtRate returns the projected single-core CPU utilization (0..1)
// when processing updates at the given rate.
func (r *Fig6bResult) CPUAtRate(config string, updatesPerSec float64) float64 {
	return updatesPerSec * r.PerUpdate[config].Seconds()
}

// MeasureFig6b times the processing of a synthetic update stream under
// each filter configuration, filters running to completion without
// rejecting (the paper's worst case).
func MeasureFig6b(iterations int) *Fig6bResult {
	gen := workload.NewGenerator(2, 65001, netip.MustParseAddr("192.0.2.1"))
	events := gen.Stream(2000, 1<<14)
	res := &Fig6bResult{PerUpdate: make(map[string]time.Duration)}
	for _, config := range Fig6bConfigs {
		// Repeat and take the minimum: GC activity from earlier
		// experiments otherwise skews individual runs.
		best := time.Duration(1 << 62)
		for rep := 0; rep < 3; rep++ {
			process := newUpdateProcessor(config)
			for i := 0; i < 1<<13; i++ { // warmup
				process(events[i&(1<<14-1)])
			}
			runtime.GC()
			start := time.Now()
			for i := 0; i < iterations; i++ {
				process(events[i&(1<<14-1)])
			}
			if d := time.Since(start) / time.Duration(iterations); d < best {
				best = d
			}
		}
		res.PerUpdate[config] = best
	}
	return res
}

func newUpdateProcessor(config string) func(e workload.UpdateEvent) {
	t := rib.NewTable(config)
	if config == "accept" {
		return func(e workload.UpdateEvent) {
			if e.Kind == workload.KindWithdraw {
				t.Withdraw(e.Route.Prefix, "n", 0)
				return
			}
			t.Add(&rib.Path{Prefix: e.Route.Prefix, Peer: "n", Attrs: e.Route.Attrs, Seq: rib.NextSeq()})
		}
	}
	en := policy.NewEngine(47065)
	en.DailyUpdateLimit = 1 << 30
	en.Register(&policy.Experiment{
		Name:     "bench",
		Prefixes: []netip.Prefix{netip.MustParsePrefix("0.0.0.0/0")},
		ASNs:     []uint32{65001},
		Caps:     policy.Capabilities{MaxPoisonedASNs: 64, MaxCommunities: 64, AllowTransit: true, MaxPathLen: 64},
	})
	localPool := core.NewPool(netip.MustParsePrefix("127.65.0.0/16"))
	localIP := localPool.MustAlloc()
	globalPool := core.NewPool(netip.MustParsePrefix("127.127.0.0/16"))
	globalIP := globalPool.MustAlloc()
	multi := config == "multi-router-vbgp"
	return func(e workload.UpdateEvent) {
		if e.Kind == workload.KindWithdraw {
			en.EvaluateWithdraw("bench", "amsix", e.Route.Prefix)
			t.Withdraw(e.Route.Prefix, "n", 0)
			return
		}
		res := en.EvaluateAnnouncement("bench", "amsix", e.Route.Prefix, e.Route.Attrs)
		if res.Action == policy.ActionReject {
			return
		}
		out := res.Attrs
		if multi {
			// Backbone handling (§4.4): re-export with the global pool
			// address, then recognize and re-rewrite it locally — the
			// extra clone + rewrite multi-router deployments pay.
			out = out.Clone()
			out.NextHop = globalIP
			if globalPool.Contains(out.NextHop) {
				out = out.Clone()
				out.NextHop = localIP
			}
		} else {
			out.NextHop = localIP
		}
		t.Add(&rib.Path{Prefix: e.Route.Prefix, Peer: "n", Attrs: out, Seq: rib.NextSeq()})
	}
}

// BackboneResult summarizes pairwise backbone throughput.
type BackboneResult struct {
	// Pairs maps "a<->b" to steady-state Mbps.
	Pairs map[string]float64
	Min   float64
	Avg   float64
	Max   float64
}

// MeasureBackbone provisions links between every PoP pair so their
// achievable TCP throughput spans the paper's observed 60-750 Mbps
// range, then measures steady-state throughput per pair. A reference
// link calibrates AIMD efficiency first (the paper reports measured
// iperf3 numbers, not provisioned capacity).
func MeasureBackbone(pops int, seed int64) (*BackboneResult, error) {
	// AIMD efficiency depends on RTT; calibrate per latency bucket.
	efficiency := make(map[time.Duration]float64)
	calibrate := func(lat time.Duration) (float64, error) {
		if eff, ok := efficiency[lat]; ok {
			return eff, nil
		}
		refBps, err := traffic.MeasureSingleFlow([]traffic.Link{
			{Name: "ref", CapacityBps: 400e6, Latency: lat},
		})
		if err != nil {
			return 0, err
		}
		efficiency[lat] = refBps / 400e6
		return efficiency[lat], nil
	}

	rng := rand.New(rand.NewSource(seed))
	res := &BackboneResult{Pairs: make(map[string]float64), Min: 1e18}
	var sum float64
	var count int
	for i := 0; i < pops; i++ {
		for j := i + 1; j < pops; j++ {
			target := 60 + rng.Float64()*(750-60)
			lat := time.Duration(5+rng.Intn(60)) * time.Millisecond
			eff, err := calibrate(lat)
			if err != nil {
				return nil, err
			}
			capMbps := target / eff
			bps, err := traffic.MeasureSingleFlow([]traffic.Link{
				{Name: fmt.Sprintf("bb-%d-%d", i, j), CapacityBps: capMbps * 1e6, Latency: lat},
			})
			if err != nil {
				return nil, err
			}
			mbps := bps / 1e6
			res.Pairs[fmt.Sprintf("pop%02d<->pop%02d", i, j)] = mbps
			sum += mbps
			count++
			if mbps < res.Min {
				res.Min = mbps
			}
			if mbps > res.Max {
				res.Max = mbps
			}
		}
	}
	res.Avg = sum / float64(count)
	return res, nil
}

// AMSIXResult reports the AMS-IX-scale experiment.
type AMSIXResult struct {
	Members      int
	Bilateral    int
	RouteServers int
	Routes       int
	HeapBytes    uint64
	// BytesPerRoute extrapolates memory at the paper's 2.7M routes.
	BytesPerRoute float64
}

// MeasureAMSIX builds an exchange with the AMS-IX profile scaled down by
// factor, loads every member's routes into a vBGP router through real
// route-server sessions, and measures routes and memory.
func MeasureAMSIX(factor int, routesPerMember int) (*AMSIXResult, error) {
	profile := workload.PaperIXPs[0].Scale(factor)
	cfg := inet.DefaultGenConfig()
	cfg.Tier2 = 40
	cfg.Edges = profile.Members + 50
	topo := inet.Generate(cfg)

	before := heapInUse()
	x := ixp.New("AMS-IX", 64700, topo, netip.MustParsePrefix("80.249.208.0/21"))
	for i := 0; i < profile.Members; i++ {
		if _, err := x.AddMember(uint32(10000+i), i < profile.Bilateral); err != nil {
			return nil, err
		}
	}
	router := core.NewRouter(core.Config{
		Name: "amsix", ASN: 47065, RouterID: netip.MustParseAddr("198.51.100.1"),
	})
	router.AddInterface("ix0", "neighbor", netip.MustParsePrefix("80.249.215.254/21"), x.Fabric)

	want := 0
	for i := 0; i < profile.RouteServers; i++ {
		cr, cx := connPair()
		if _, err := router.AddNeighbor(core.NeighborConfig{
			Name: fmt.Sprintf("rs%d", i+1), ID: uint32(i + 1), ASN: 64700,
			Addr:      netip.AddrFrom4([4]byte{80, 249, 215, byte(i + 1)}),
			Interface: "ix0", Conn: cr, RouteServer: true,
		}); err != nil {
			return nil, err
		}
		x.ConnectRouteServer(fmt.Sprintf("rs%d", i+1), 47065, cx, routesPerMember)
		want += profile.Members * routesPerMember
	}
	deadline := time.Now().Add(120 * time.Second)
	for router.RouteCount() < want && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	after := heapInUse()
	routes := router.RouteCount()
	res := &AMSIXResult{
		Members: profile.Members, Bilateral: profile.Bilateral,
		RouteServers: profile.RouteServers,
		Routes:       routes, HeapBytes: after - before,
	}
	if routes > 0 {
		res.BytesPerRoute = float64(after-before) / float64(routes)
	}
	return res, nil
}

// UpdateLoadResult reports the §6 AMS-IX update-trace experiment.
type UpdateLoadResult struct {
	MeanRate float64
	P99Rate  float64
	// MeanCPU and P99CPU are projected single-core utilizations under
	// the single-router vBGP filter stack.
	MeanCPU float64
	P99CPU  float64
}

// MeasureUpdateLoad projects CPU use at the paper's observed AMS-IX
// update rates (mean 21.8/s, p99 ~400/s over 18 h).
func MeasureUpdateLoad() *UpdateLoadResult {
	f := MeasureFig6b(1 << 15)
	return &UpdateLoadResult{
		MeanRate: 21.8, P99Rate: 400,
		MeanCPU: f.CPUAtRate("single-router-vbgp", 21.8),
		P99CPU:  f.CPUAtRate("single-router-vbgp", 400),
	}
}

// FootprintResult reproduces the §4.2 connectivity statistics.
type FootprintResult struct {
	PoPs        int
	ASNs        int
	Prefixes    int
	TotalPeers  int
	Bilateral   int
	Transits    int
	PerIXP      map[string][2]int // name -> {members, bilateral}
	TypePercent map[string]float64
	// PeerConeUnion is how many distinct ASes sit in the customer cones
	// of the platform's peers (reach of peer announcements).
	PeerConeUnion int
	TopologySize  int
}

// MeasureFootprint builds the §4.2 footprint at 1/factor scale and
// reports the resulting statistics.
func MeasureFootprint(factor int) *FootprintResult {
	cfg := inet.DefaultGenConfig()
	cfg.Edges = max(1400/factor, 100)
	cfg.Tier2 = max(80/factor, 12)
	topo := inet.Generate(cfg)

	res := &FootprintResult{
		PoPs: 13, ASNs: 8, Prefixes: 40,
		PerIXP:      make(map[string][2]int),
		TypePercent: make(map[string]float64),
		Transits:    12,
	}
	peers := map[uint32]bool{}
	edges := topo.ASNs()
	// Assign members to the four exchanges from the edge population.
	next := 0
	pick := func() uint32 {
		for {
			asn := edges[next%len(edges)]
			next++
			if asn >= 10000 {
				return asn
			}
		}
	}
	for _, prof := range workload.PaperIXPs {
		p := prof.Scale(factor)
		res.PerIXP[prof.Name] = [2]int{p.Members, p.Bilateral}
		for i := 0; i < p.Members; i++ {
			peers[pick()] = true
		}
		res.Bilateral += p.Bilateral
	}
	res.TotalPeers = len(peers)

	counts := map[string]int{}
	total := 0
	for asn := range peers {
		counts[topo.AS(asn).Type]++
		total++
	}
	for typ, n := range counts {
		res.TypePercent[typ] = 100 * float64(n) / float64(total)
	}

	coneUnion := map[uint32]bool{}
	for asn := range peers {
		for _, member := range topo.CustomerCone(asn) {
			coneUnion[member] = true
		}
	}
	res.PeerConeUnion = len(coneUnion)
	res.TopologySize = topo.Len()
	return res
}

// SortedKeys returns map keys sorted, for stable rendering.
func SortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
