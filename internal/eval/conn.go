package eval

import (
	"net"

	"repro/internal/pipe"
)

// connPair returns both ends of an in-memory transport.
func connPair() (net.Conn, net.Conn) {
	a, b := pipe.New()
	return a, b
}
