package bgp

import (
	"errors"
	"testing"
	"time"

	"repro/internal/pipe"
	"repro/internal/telemetry"
)

// TestDecodeErrorCounted verifies that a malformed message is not a
// silent session death: the decode-error counter for the neighbor must
// account for it.
func TestDecodeErrorCounted(t *testing.T) {
	peer := "test:decode-errors"
	ctr := telemetry.Default().Counter("bgp_decode_errors_total", telemetry.L("peer", peer))
	before := ctr.Value()

	ca, cb := pipe.New()
	s := NewSession(ca, Config{
		LocalASN: 65001, RemoteASN: 65002, LocalID: ip("10.0.0.1"),
		PeerName: peer,
	})
	runErr := make(chan error, 1)
	go func() { runErr <- s.Run() }()

	// Feed the session garbage instead of an OPEN: a corrupt marker must
	// fail header validation and tear the session down.
	junk := make([]byte, 64)
	for i := range junk {
		junk[i] = 0xAB
	}
	if _, err := cb.Write(junk); err != nil {
		t.Fatal(err)
	}

	select {
	case err := <-runErr:
		var ne *NotificationError
		if !errors.As(err, &ne) || ne.Code != ErrCodeHeader {
			t.Fatalf("session died with %v, want header NotificationError", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("session did not shut down on garbage input, state=%s", s.State())
	}
	if got := ctr.Value(); got != before+1 {
		t.Fatalf("bgp_decode_errors_total{peer=%q} = %d, want %d", peer, got, before+1)
	}
	s.Close()
	cb.Close()
}

// TestCleanCloseNotCountedAsDecodeError pins the exclusion: an
// administrative Cease must not inflate the decode-error counter.
func TestCleanCloseNotCountedAsDecodeError(t *testing.T) {
	peerA, peerB := "test:clean-a", "test:clean-b"
	ctrA := telemetry.Default().Counter("bgp_decode_errors_total", telemetry.L("peer", peerA))
	ctrB := telemetry.Default().Counter("bgp_decode_errors_total", telemetry.L("peer", peerB))
	beforeA, beforeB := ctrA.Value(), ctrB.Value()

	sa, sb := startPair(t,
		Config{LocalASN: 65001, RemoteASN: 65002, LocalID: ip("10.0.0.1"), PeerName: peerA},
		Config{LocalASN: 65002, RemoteASN: 65001, LocalID: ip("10.0.0.2"), PeerName: peerB},
	)
	sa.Close()
	deadline := time.Now().Add(5 * time.Second)
	for sb.State() != StateIdle && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := ctrA.Value(); got != beforeA {
		t.Errorf("closing side counted %d decode errors", got-beforeA)
	}
	if got := ctrB.Value(); got != beforeB {
		t.Errorf("peer receiving Cease counted %d decode errors", got-beforeB)
	}
}
