package bgp

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestEncodeBufferPool is the table-driven pool contract: checkout
// always yields an empty buffer, in-range buffers are recycled, and
// oversized ones are dropped for the GC instead of pinning their
// high-water mark in the pool.
func TestEncodeBufferPool(t *testing.T) {
	cases := []struct {
		name       string
		grow       int
		wantPooled bool
	}{
		{"small", 100, true},
		{"exactly at cap", maxPooledEncodeCap, true},
		{"oversized", maxPooledEncodeCap + 1, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			eb := getEncodeBuffer()
			if len(eb.buf) != 0 {
				t.Fatalf("checkout yielded %d bytes of stale data", len(eb.buf))
			}
			eb.buf = append(eb.buf, make([]byte, tc.grow)...)
			if pooled := eb.release(); pooled != tc.wantPooled {
				t.Fatalf("release() after growing to %d = %v, want %v", tc.grow, pooled, tc.wantPooled)
			}
			// Whatever the pool hands out next must be reset.
			next := getEncodeBuffer()
			defer next.release()
			if len(next.buf) != 0 {
				t.Fatalf("pooled buffer not reset: len %d", len(next.buf))
			}
		})
	}
}

// TestEncodeBufferConcurrentCheckout hammers the pool from several
// goroutines; under -race this is the checkout/release soak. Each
// goroutine writes a distinct pattern and verifies it before release,
// catching any buffer handed to two owners at once.
func TestEncodeBufferConcurrentCheckout(t *testing.T) {
	const workers, iters = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pat := byte(w + 1)
			for i := 0; i < iters; i++ {
				eb := getEncodeBuffer()
				if len(eb.buf) != 0 {
					t.Errorf("worker %d: checkout yielded non-empty buffer", w)
					return
				}
				for j := 0; j < 64; j++ {
					eb.buf = append(eb.buf, pat)
				}
				for j, b := range eb.buf {
					if b != pat {
						t.Errorf("worker %d: byte %d corrupted: %d", w, j, b)
						return
					}
				}
				eb.release()
			}
		}(w)
	}
	wg.Wait()
}

// perRouteAdverts builds n single-NLRI updates sharing one attribute
// set — the shape table dumps and batched propagation emit.
func perRouteAdverts(n int, attrs *PathAttrs) []*Update {
	out := make([]*Update, n)
	for i := range out {
		out[i] = &Update{Attrs: attrs, NLRI: []NLRI{{Prefix: pfx(fmt.Sprintf("10.%d.%d.0/24", i>>8, i&0xff))}}}
	}
	return out
}

// flattenRoutes reduces a slice of updates to the ordered route
// sequence it carries: advertised NLRI (keyed by the attrs that carried
// them) and withdrawals, ignoring frame boundaries.
type flatRoute struct {
	prefix   string
	withdraw bool
	firstASN uint32
}

func flattenRoutes(updates []*Update) []flatRoute {
	var out []flatRoute
	for _, u := range updates {
		for _, n := range u.Withdrawn {
			out = append(out, flatRoute{prefix: n.Prefix.String(), withdraw: true})
		}
		for _, n := range u.NLRI {
			out = append(out, flatRoute{prefix: n.Prefix.String(), firstASN: u.Attrs.FirstASN()})
		}
	}
	return out
}

func baseAttrsASN(asn uint32) *PathAttrs {
	return &PathAttrs{
		Origin: OriginIGP, HasOrigin: true,
		ASPath:  []ASPathSegment{{Type: ASSequence, ASNs: []uint32{asn}}},
		NextHop: ip("192.0.2.1"),
	}
}

// TestPackBatchMergesSharedAttrRun checks a run of per-route updates
// under one *PathAttrs collapses into a single multi-NLRI frame with
// route order intact.
func TestPackBatchMergesSharedAttrRun(t *testing.T) {
	s := &Session{}
	attrs := baseAttrsASN(65001)
	in := perRouteAdverts(100, attrs)
	packed := s.packBatch(in)
	if len(packed) != 1 {
		t.Fatalf("packed %d updates into %d frames, want 1", len(in), len(packed))
	}
	if packed[0].Attrs != attrs {
		t.Fatal("packed frame does not share the run's attribute set")
	}
	got, want := flattenRoutes(packed), flattenRoutes(in)
	if len(got) != len(want) {
		t.Fatalf("flattened %d routes, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("route[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestPackBatchBudgetSplit checks a run too large for one message
// splits into frames that each encode within MaxMessageLen.
func TestPackBatchBudgetSplit(t *testing.T) {
	s := &Session{}
	in := perRouteAdverts(1500, baseAttrsASN(65001)) // ~6000 B of NLRI, > one 4096 B frame
	packed := s.packBatch(in)
	if len(packed) < 2 {
		t.Fatalf("1500 routes packed into %d frame(s), expected a split", len(packed))
	}
	total := 0
	for i, u := range packed {
		b, err := appendMessage(nil, u, &s.enc)
		if err != nil {
			t.Fatalf("frame %d does not encode: %v", i, err)
		}
		if len(b) > MaxMessageLen {
			t.Fatalf("frame %d encodes to %d bytes, over the %d limit", i, len(b), MaxMessageLen)
		}
		total += len(u.NLRI)
	}
	if total != len(in) {
		t.Fatalf("packed frames carry %d routes, want %d", total, len(in))
	}
}

// TestPackBatchBoundaries checks what packing must NOT merge: runs
// under different attribute pointers (even if equal by value), and
// non-packable shapes, which pass through in place.
func TestPackBatchBoundaries(t *testing.T) {
	s := &Session{}
	a1, a2 := baseAttrsASN(65001), baseAttrsASN(65001) // equal value, distinct pointers
	wd := func(p string) *Update { return &Update{Withdrawn: []NLRI{{Prefix: pfx(p)}}} }
	mixed := &Update{Attrs: a1, NLRI: []NLRI{{Prefix: pfx("192.0.2.0/24")}}, Withdrawn: []NLRI{{Prefix: pfx("198.51.100.0/24")}}}
	eor := EndOfRIB(IPv6Unicast)
	in := []*Update{
		perRouteAdverts(2, a1)[0], perRouteAdverts(2, a1)[1], // run 1: a1
		{Attrs: a2, NLRI: []NLRI{{Prefix: pfx("172.16.0.0/24")}}}, // pointer boundary
		wd("203.0.113.0/24"), wd("203.0.113.64/26"),              // withdraw run
		mixed, // advert+withdraw in one update: passthrough
		eor,   // IPv6 End-of-RIB: passthrough
	}
	packed := s.packBatch(in)
	want := []*Update{
		{Attrs: a1}, // merged run 1 (2 NLRI)
		in[2],
		{Withdrawn: []NLRI{{Prefix: pfx("203.0.113.0/24")}, {Prefix: pfx("203.0.113.64/26")}}},
		mixed,
		eor,
	}
	if len(packed) != len(want) {
		t.Fatalf("packed into %d frames, want %d", len(packed), len(want))
	}
	if len(packed[0].NLRI) != 2 || packed[0].Attrs != a1 {
		t.Fatalf("run 1 not merged under a1: %d NLRI", len(packed[0].NLRI))
	}
	if packed[1] != in[2] {
		t.Fatal("distinct-pointer update was merged across the attrs boundary")
	}
	if len(packed[2].Withdrawn) != 2 {
		t.Fatalf("withdraw run not merged: %d prefixes", len(packed[2].Withdrawn))
	}
	if packed[3] != mixed || packed[4] != eor {
		t.Fatal("non-packable updates did not pass through in place")
	}
	// Flattened route sequence is invariant under packing.
	got, wantFlat := flattenRoutes(packed), flattenRoutes(in)
	if len(got) != len(wantFlat) {
		t.Fatalf("flattened %d routes, want %d", len(got), len(wantFlat))
	}
	for i := range wantFlat {
		if got[i] != wantFlat[i] {
			t.Fatalf("route[%d] = %+v, want %+v", i, got[i], wantFlat[i])
		}
	}
}

// TestSendBatchSemanticEquality sends the same per-route update
// sequence through SendBatch on one session pair and through sequential
// Sends on another, and checks the receivers decode identical route
// sequences — same prefixes, same attributes, same order. Frame
// boundaries are allowed to differ; the routes are not.
func TestSendBatchSemanticEquality(t *testing.T) {
	build := func() []*Update {
		var in []*Update
		in = append(in, perRouteAdverts(600, baseAttrsASN(65001))...) // splits across frames
		in = append(in, perRouteAdverts(5, baseAttrsASN(65002))...)   // new attrs run
		for i := 0; i < 3; i++ {
			in = append(in, &Update{Withdrawn: []NLRI{{Prefix: pfx(fmt.Sprintf("203.0.113.%d/32", i))}}})
		}
		in = append(in, perRouteAdverts(5, baseAttrsASN(65003))...)
		return in
	}
	run := func(batched bool) []flatRoute {
		var mu sync.Mutex
		var recv []*Update
		total := 0
		for _, u := range build() {
			total += len(u.NLRI) + len(u.Withdrawn)
		}
		sa, _ := startPair(t,
			Config{LocalASN: 65001, RemoteASN: 65002, LocalID: ip("10.0.0.1")},
			Config{LocalASN: 65002, RemoteASN: 65001, LocalID: ip("10.0.0.2"),
				OnUpdate: func(u *Update) { mu.Lock(); recv = append(recv, u); mu.Unlock() }},
		)
		in := build()
		if batched {
			if err := sa.SendBatch(in); err != nil {
				t.Fatalf("SendBatch: %v", err)
			}
		} else {
			for _, u := range in {
				if err := sa.Send(u); err != nil {
					t.Fatalf("Send: %v", err)
				}
			}
		}
		deadline := time.Now().Add(10 * time.Second)
		for {
			mu.Lock()
			n := 0
			for _, u := range recv {
				n += len(u.NLRI) + len(u.Withdrawn)
			}
			mu.Unlock()
			if n == total {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("batched=%v: received %d of %d routes", batched, n, total)
			}
			time.Sleep(time.Millisecond)
		}
		mu.Lock()
		defer mu.Unlock()
		return flattenRoutes(recv)
	}
	sequential := run(false)
	batched := run(true)
	if len(sequential) != len(batched) {
		t.Fatalf("route counts differ: sequential %d, batched %d", len(sequential), len(batched))
	}
	for i := range sequential {
		if sequential[i] != batched[i] {
			t.Fatalf("route[%d]: sequential %+v, batched %+v", i, sequential[i], batched[i])
		}
	}
}

// TestDecodeBlockRoundTrip frames a packed block the way SendBatch does
// and checks decodeBlock recovers every message.
func TestDecodeBlockRoundTrip(t *testing.T) {
	s := &Session{}
	packed := s.packBatch(perRouteAdverts(1200, baseAttrsASN(65001)))
	packed = append(packed, &Update{Withdrawn: []NLRI{{Prefix: pfx("203.0.113.0/24")}}})
	var block []byte
	for _, u := range packed {
		var err error
		if block, err = appendMessage(block, u, &s.enc); err != nil {
			t.Fatal(err)
		}
	}
	msgs, err := decodeBlock(block, &s.enc)
	if err != nil {
		t.Fatalf("decodeBlock: %v", err)
	}
	if len(msgs) != len(packed) {
		t.Fatalf("decoded %d messages, want %d", len(msgs), len(packed))
	}
	var got []*Update
	for _, m := range msgs {
		got = append(got, m.(*Update))
	}
	flat, want := flattenRoutes(got), flattenRoutes(packed)
	for i := range want {
		if flat[i] != want[i] {
			t.Fatalf("route[%d] = %+v, want %+v", i, flat[i], want[i])
		}
	}
	// A truncated block reports an error instead of inventing a message.
	if _, err := decodeBlock(block[:len(block)-3], &s.enc); err == nil {
		t.Fatal("truncated block decoded without error")
	}
}

// FuzzDecodeBlock throws arbitrary byte blocks at the batched-block
// decoder: it must never panic, and whatever decodes must re-encode.
// Seeds include real packed blocks in several codec configurations.
func FuzzDecodeBlock(f *testing.F) {
	s := &Session{}
	seed := func(updates []*Update, opts *codecOpts) {
		var block []byte
		for _, u := range updates {
			b, err := appendMessage(block, u, opts)
			if err != nil {
				return
			}
			block = b
		}
		f.Add(block)
	}
	seed(s.packBatch(perRouteAdverts(1200, baseAttrsASN(65001))), &codecOpts{})
	seed(s.packBatch(perRouteAdverts(10, baseAttrsASN(4200000001))), &codecOpts{as4: true})
	seed([]*Update{
		{Withdrawn: []NLRI{{Prefix: pfx("203.0.113.0/24")}, {Prefix: pfx("0.0.0.0/0")}}},
		EndOfRIB(IPv4Unicast),
	}, &codecOpts{as4: true, addPathV4: true})
	// A block with a trailing partial frame.
	b, _ := marshalMessage(&Keepalive{}, &codecOpts{})
	f.Add(append(b, b[:HeaderLen-1]...))

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, o := range []*codecOpts{{}, {as4: true}, {as4: true, addPathV4: true, addPathV6: true}} {
			msgs, err := decodeBlock(data, o)
			for _, m := range msgs {
				// Prefix-of-error messages must individually re-encode (or
				// fail cleanly on legal oversize), even when the block as a
				// whole errored.
				_, _ = marshalMessage(m, o)
			}
			if err == nil && len(data) > 0 {
				// A clean block must round-trip to the same byte image.
				var re []byte
				reErr := false
				for _, m := range msgs {
					r, err := appendMessage(re, m, o)
					if err != nil {
						reErr = true
						break
					}
					re = r
				}
				if !reErr && !bytes.Equal(re, data) {
					// Non-canonical but decodable inputs (e.g. unmasked
					// prefixes) legally re-encode differently; only flag
					// length mismatches that indicate dropped messages.
					if len(re) == 0 {
						t.Fatalf("decoded %d messages re-encoded to nothing", len(msgs))
					}
				}
			}
		}
	})
}
