package bgp

import (
	"fmt"
	"testing"
	"time"
)

// mraiPair wires a receiver and an MRAI-configured sender.
func mraiPair(t *testing.T, mrai time.Duration, recv chan *Update) (receiver, sender *Session) {
	t.Helper()
	return startPair(t,
		Config{LocalASN: 65001, RemoteASN: 65002, LocalID: ip("10.0.0.1"),
			OnUpdate: func(u *Update) { recv <- u }},
		Config{LocalASN: 65002, RemoteASN: 65001, LocalID: ip("10.0.0.2"), MRAI: mrai},
	)
}

func mraiAttrs(med uint32) *PathAttrs {
	return &PathAttrs{Origin: OriginIGP, HasOrigin: true,
		ASPath:  []ASPathSegment{{Type: ASSequence, ASNs: []uint32{65002}}},
		NextHop: ip("10.0.0.2"), MED: med, HasMED: true}
}

// drain collects updates until the channel stays quiet for idle.
func drain(recv chan *Update, idle time.Duration) []*Update {
	var got []*Update
	for {
		select {
		case u := <-recv:
			got = append(got, u)
		case <-time.After(idle):
			return got
		}
	}
}

func TestMRAICoalescesBatchAcrossPrefixes(t *testing.T) {
	recv := make(chan *Update, 256)
	_, sb := mraiPair(t, 150*time.Millisecond, recv)

	// 8 prefixes, flapped 3 times each with shared attrs: the first
	// round goes out immediately, the re-advertisements coalesce and the
	// flush delivers them BATCHED — one UPDATE carrying all 8 prefixes,
	// not 8 single-prefix messages.
	attrs := mraiAttrs(7)
	prefixes := make([]NLRI, 8)
	for i := range prefixes {
		prefixes[i] = NLRI{Prefix: pfx(fmt.Sprintf("203.0.%d.0/24", 100+i))}
	}
	for round := 0; round < 3; round++ {
		for _, n := range prefixes {
			if err := sb.Send(&Update{Attrs: attrs, NLRI: []NLRI{n}}); err != nil {
				t.Fatal(err)
			}
		}
	}
	got := drain(recv, 400*time.Millisecond)
	// 8 immediate singles + 1 coalesced batch.
	if len(got) != 9 {
		t.Fatalf("received %d updates, want 9 (8 immediate + 1 batch)", len(got))
	}
	batch := got[len(got)-1]
	if len(batch.NLRI) != 8 {
		t.Fatalf("coalesced batch carries %d prefixes, want 8", len(batch.NLRI))
	}
	if s := sb.MRAISuppressed.Load(); s != 16 {
		t.Errorf("suppressed = %d, want 16 (two absorbed rounds)", s)
	}
}

func TestMRAIFlushOnClose(t *testing.T) {
	recv := make(chan *Update, 64)
	_, sb := mraiPair(t, time.Hour, recv)

	attrs := mraiAttrs(0)
	n := NLRI{Prefix: pfx("203.0.113.0/24")}
	if err := sb.Send(&Update{Attrs: attrs, NLRI: []NLRI{n}}); err != nil {
		t.Fatal(err)
	}
	newest := mraiAttrs(42)
	if err := sb.Send(&Update{Attrs: newest, NLRI: []NLRI{n}}); err != nil {
		t.Fatal(err)
	}
	// With a one-hour MRAI the re-advertisement is pinned until Close,
	// whose flush-on-close guarantee must deliver the newest version
	// before the Cease goes out.
	if err := sb.Close(); err != nil {
		t.Fatal(err)
	}
	got := drain(recv, 300*time.Millisecond)
	if len(got) != 2 {
		t.Fatalf("received %d updates, want 2 (immediate + flushed-on-close)", len(got))
	}
	if got[1].Attrs.MED != 42 {
		t.Errorf("flushed update MED = %d, want newest version 42", got[1].Attrs.MED)
	}
}

func TestMRAIWithdrawalCancelsPendingAdvert(t *testing.T) {
	recv := make(chan *Update, 64)
	_, sb := mraiPair(t, 150*time.Millisecond, recv)

	n := NLRI{Prefix: pfx("203.0.113.0/24")}
	if err := sb.Send(&Update{Attrs: mraiAttrs(0), NLRI: []NLRI{n}}); err != nil {
		t.Fatal(err)
	}
	if err := sb.Send(&Update{Attrs: mraiAttrs(1), NLRI: []NLRI{n}}); err != nil {
		t.Fatal(err)
	}
	// The withdrawal must go out immediately AND kill the held-back
	// re-advertisement — otherwise the flush would resurrect a route the
	// peer was just told is gone.
	if err := sb.Send(&Update{Withdrawn: []NLRI{n}}); err != nil {
		t.Fatal(err)
	}
	got := drain(recv, 400*time.Millisecond)
	if len(got) != 2 {
		t.Fatalf("received %d updates, want 2 (advert + withdrawal, no resurrection)", len(got))
	}
	if len(got[1].Withdrawn) != 1 {
		t.Fatalf("second update is not the withdrawal: %+v", got[1])
	}
}
