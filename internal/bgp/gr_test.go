package bgp

import (
	"net/netip"
	"testing"
	"time"

	"repro/internal/pipe"
)

func TestGracefulRestartCapabilityRoundTrip(t *testing.T) {
	in := &Capabilities{
		MP: []AFISAFI{IPv4Unicast, IPv6Unicast},
		GR: &GracefulRestart{
			Restarting: true,
			Time:       12 * time.Second,
			Families: []GRFamily{
				{Family: IPv4Unicast, Forwarding: true},
				{Family: IPv6Unicast, Forwarding: false},
			},
		},
	}
	out, err := parseCapabilities(marshalCapabilities(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.GR == nil {
		t.Fatal("GR capability lost in round trip")
	}
	if !out.GR.Restarting || out.GR.Time != 12*time.Second {
		t.Fatalf("GR header = %+v", out.GR)
	}
	if len(out.GR.Families) != 2 ||
		out.GR.Families[0] != (GRFamily{Family: IPv4Unicast, Forwarding: true}) ||
		out.GR.Families[1] != (GRFamily{Family: IPv6Unicast, Forwarding: false}) {
		t.Fatalf("GR families = %+v", out.GR.Families)
	}
}

func TestEndOfRIBRoundTrip(t *testing.T) {
	for _, fam := range []AFISAFI{IPv4Unicast, IPv6Unicast} {
		opts := &codecOpts{}
		b, err := marshalMessage(EndOfRIB(fam), opts)
		if err != nil {
			t.Fatal(err)
		}
		msg, err := decodeBody(b[18], b[19:], opts)
		if err != nil {
			t.Fatalf("%v: decode: %v", fam, err)
		}
		u, ok := msg.(*Update)
		if !ok {
			t.Fatalf("%v: decoded %T", fam, msg)
		}
		got, ok := u.EndOfRIBFamily()
		if !ok || got != fam {
			t.Fatalf("EndOfRIBFamily = %v, %v; want %v, true", got, ok, fam)
		}
	}
}

func TestOrdinaryUpdateIsNotEndOfRIB(t *testing.T) {
	u := &Update{
		Attrs: &PathAttrs{HasOrigin: true, ASPath: []ASPathSegment{{Type: ASSequence, ASNs: []uint32{65000}}},
			NextHop: netip.MustParseAddr("10.0.0.1")},
		NLRI: []NLRI{{Prefix: netip.MustParsePrefix("10.1.0.0/16")}},
	}
	if _, ok := u.EndOfRIBFamily(); ok {
		t.Fatal("route-bearing update classified as End-of-RIB")
	}
	wd := &Update{Withdrawn: []NLRI{{Prefix: netip.MustParsePrefix("10.1.0.0/16")}}}
	if _, ok := wd.EndOfRIBFamily(); ok {
		t.Fatal("withdraw classified as End-of-RIB")
	}
}

// pairSession runs two sessions over a pipe and returns them once both
// report Established.
func pairSession(t *testing.T, a, b Config) (*Session, *Session) {
	t.Helper()
	ca, cb := pipe.New()
	sa, sb := NewSession(ca, a), NewSession(cb, b)
	go sa.Run()
	go sb.Run()
	deadline := time.Now().Add(5 * time.Second)
	for sa.State() != StateEstablished || sb.State() != StateEstablished {
		if time.Now().After(deadline) {
			t.Fatalf("sessions did not establish: %s / %s", sa.State(), sb.State())
		}
		time.Sleep(time.Millisecond)
	}
	return sa, sb
}

func TestGracefulRestartNegotiationAndEndOfRIBDelivery(t *testing.T) {
	eor := make(chan AFISAFI, 2)
	a := Config{
		LocalASN: 65001, RemoteASN: 65002, LocalID: netip.MustParseAddr("1.1.1.1"),
		Families:        []AFISAFI{IPv4Unicast, IPv6Unicast},
		GracefulRestart: &GracefulRestartConfig{RestartTime: 9 * time.Second},
	}
	b := Config{
		LocalASN: 65002, RemoteASN: 65001, LocalID: netip.MustParseAddr("2.2.2.2"),
		Families:        []AFISAFI{IPv4Unicast, IPv6Unicast},
		GracefulRestart: &GracefulRestartConfig{RestartTime: 9 * time.Second},
		OnEndOfRIB:      func(f AFISAFI) { eor <- f },
	}
	sa, sb := pairSession(t, a, b)
	defer sa.Close()
	defer sb.Close()

	if !sa.GracefulRestartNegotiated() || !sb.GracefulRestartNegotiated() {
		t.Fatal("graceful restart not negotiated on both sides")
	}
	if got := sb.RemoteCaps().GR.Time; got != 9*time.Second {
		t.Fatalf("peer restart time = %v", got)
	}
	if err := sa.SendEndOfRIB(IPv4Unicast); err != nil {
		t.Fatal(err)
	}
	if err := sa.SendEndOfRIB(IPv6Unicast); err != nil {
		t.Fatal(err)
	}
	for _, want := range []AFISAFI{IPv4Unicast, IPv6Unicast} {
		select {
		case got := <-eor:
			if got != want {
				t.Fatalf("OnEndOfRIB got %v, want %v", got, want)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("End-of-RIB %v never delivered", want)
		}
	}
}

func TestGracefulRestartNotNegotiatedWithoutPeerSupport(t *testing.T) {
	a := Config{
		LocalASN: 65001, RemoteASN: 65002, LocalID: netip.MustParseAddr("1.1.1.1"),
		GracefulRestart: &GracefulRestartConfig{RestartTime: 9 * time.Second},
	}
	b := Config{LocalASN: 65002, RemoteASN: 65001, LocalID: netip.MustParseAddr("2.2.2.2")}
	sa, sb := pairSession(t, a, b)
	defer sa.Close()
	defer sb.Close()
	if sa.GracefulRestartNegotiated() {
		t.Fatal("negotiated GR against a peer that never advertised it")
	}
	if sb.GracefulRestartNegotiated() {
		t.Fatal("negotiated GR without local configuration")
	}
}
