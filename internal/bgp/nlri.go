package bgp

import (
	"fmt"
	"net/netip"
)

// PathID identifies one of several paths for the same prefix on a session
// with the ADD-PATH capability (RFC 7911). Zero when ADD-PATH is not in
// use.
type PathID uint32

// NLRI is one network-layer reachability entry: a prefix, optionally
// tagged with an ADD-PATH identifier.
type NLRI struct {
	Prefix netip.Prefix
	ID     PathID
}

// String formats the NLRI as "prefix" or "prefix id N".
func (n NLRI) String() string {
	if n.ID == 0 {
		return n.Prefix.String()
	}
	return fmt.Sprintf("%s id %d", n.Prefix, n.ID)
}

// appendNLRI appends the wire form of one NLRI entry: optional 4-byte path
// ID, prefix length in bits, then the minimal number of prefix octets.
func appendNLRI(b []byte, n NLRI, addPath bool) []byte {
	if addPath {
		b = append(b, byte(n.ID>>24), byte(n.ID>>16), byte(n.ID>>8), byte(n.ID))
	}
	bits := n.Prefix.Bits()
	b = append(b, byte(bits))
	raw := n.Prefix.Addr().AsSlice()
	return append(b, raw[:(bits+7)/8]...)
}

// decodeNLRI parses one NLRI entry from data, returning the entry and the
// number of bytes consumed. v6 selects the address family.
func decodeNLRI(data []byte, addPath, v6 bool) (NLRI, int, error) {
	var n NLRI
	off := 0
	if addPath {
		if len(data) < 4 {
			return n, 0, fmt.Errorf("%w: ADD-PATH id", ErrTruncated)
		}
		n.ID = PathID(uint32(data[0])<<24 | uint32(data[1])<<16 | uint32(data[2])<<8 | uint32(data[3]))
		off = 4
	}
	if len(data) < off+1 {
		return n, 0, fmt.Errorf("%w: NLRI length octet", ErrTruncated)
	}
	bits := int(data[off])
	off++
	maxBits := 32
	if v6 {
		maxBits = 128
	}
	if bits > maxBits {
		return n, 0, fmt.Errorf("bgp: NLRI prefix length %d exceeds %d", bits, maxBits)
	}
	nbytes := (bits + 7) / 8
	if len(data) < off+nbytes {
		return n, 0, fmt.Errorf("%w: NLRI prefix bytes", ErrTruncated)
	}
	var addr netip.Addr
	if v6 {
		var raw [16]byte
		copy(raw[:], data[off:off+nbytes])
		addr = netip.AddrFrom16(raw)
	} else {
		var raw [4]byte
		copy(raw[:], data[off:off+nbytes])
		addr = netip.AddrFrom4(raw)
	}
	p := netip.PrefixFrom(addr, bits)
	if p.Masked() != p {
		// Tolerate non-canonical prefixes by masking, as routers do.
		p = p.Masked()
	}
	n.Prefix = p
	return n, off + nbytes, nil
}

// decodeNLRIList parses a sequence of NLRI entries occupying all of data.
func decodeNLRIList(data []byte, addPath, v6 bool) ([]NLRI, error) {
	if len(data) == 0 {
		return nil, nil
	}
	// Pre-count the entries so a packed thousand-route block decodes
	// into one exactly-sized allocation. Malformed data only skews the
	// capacity; the decode loop below reports the error.
	count := 0
	for off := 0; off < len(data); count++ {
		if addPath {
			off += 4
		}
		if off >= len(data) {
			break
		}
		off += 1 + (int(data[off])+7)/8
	}
	out := make([]NLRI, 0, count)
	for len(data) > 0 {
		n, used, err := decodeNLRI(data, addPath, v6)
		if err != nil {
			return nil, err
		}
		out = append(out, n)
		data = data[used:]
	}
	return out, nil
}
