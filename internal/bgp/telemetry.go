package bgp

import "repro/internal/telemetry"

// Package-level metrics, shared by every session in the process.
var (
	// fsmTransitions counts entries into each FSM state
	// (bgp_fsm_transitions_total{to=...}).
	fsmTransitions [StateEstablished + 1]*telemetry.Counter
	// sessionFlaps counts Established sessions that dropped back to Idle.
	sessionFlaps *telemetry.Counter
	// outBytes is the size distribution of marshalled outbound messages.
	outBytes *telemetry.Histogram
	// mraiBatchSize is the distribution of how many coalesced routes
	// each MRAI flush delivered — the churn-compression the interval
	// bought (bgp_mrai_batch_size).
	mraiBatchSize *telemetry.Histogram
)

func init() {
	reg := telemetry.Default()
	for st := StateIdle; st <= StateEstablished; st++ {
		fsmTransitions[st] = reg.Counter("bgp_fsm_transitions_total", telemetry.L("to", st.String()))
	}
	sessionFlaps = reg.Counter("bgp_session_flaps_total")
	outBytes = reg.Histogram("bgp_message_out_bytes", []float64{32, 64, 128, 256, 512, 1024, 2048, 4096})
	mraiBatchSize = reg.Histogram("bgp_mrai_batch_size", []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024})
}

var msgTypeNames = [MsgRouteRefresh + 1]string{
	MsgOpen:         "open",
	MsgUpdate:       "update",
	MsgNotification: "notification",
	MsgKeepalive:    "keepalive",
	MsgRouteRefresh: "route-refresh",
}

// sessionMetrics holds the per-peer counters a session resolves once at
// construction so hot paths mutate with a single atomic op.
type sessionMetrics struct {
	msgsIn     [MsgRouteRefresh + 1]*telemetry.Counter
	msgsOut    [MsgRouteRefresh + 1]*telemetry.Counter
	decodeErrs *telemetry.Counter
}

func newSessionMetrics(peer string) *sessionMetrics {
	if peer == "" {
		peer = "unnamed"
	}
	reg := telemetry.Default()
	m := &sessionMetrics{
		decodeErrs: reg.Counter("bgp_decode_errors_total", telemetry.L("peer", peer)),
	}
	for t := MsgOpen; t <= MsgRouteRefresh; t++ {
		m.msgsIn[t] = reg.Counter("bgp_messages_in_total",
			telemetry.L("peer", peer), telemetry.L("type", msgTypeNames[t]))
		m.msgsOut[t] = reg.Counter("bgp_messages_out_total",
			telemetry.L("peer", peer), telemetry.L("type", msgTypeNames[t]))
	}
	return m
}

func (m *sessionMetrics) countIn(msg Message) {
	if t := msg.Type(); t >= MsgOpen && t <= MsgRouteRefresh {
		m.msgsIn[t].Inc()
	}
}

func (m *sessionMetrics) countOut(msg Message) {
	if t := msg.Type(); t >= MsgOpen && t <= MsgRouteRefresh {
		m.msgsOut[t].Inc()
	}
}
