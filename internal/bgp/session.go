package bgp

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"
)

// State is a BGP FSM state (RFC 4271 §8.2.2). The Connect and Active
// states concern TCP connection management, which the transport (a tunnel
// or net.Pipe in the simulator, TCP in cmd/peeringd) handles before a
// Session is created; a Session therefore starts in StateOpenSent.
type State int32

// FSM states.
const (
	StateIdle State = iota
	StateConnect
	StateActive
	StateOpenSent
	StateOpenConfirm
	StateEstablished
)

// String returns the RFC name of the state.
func (s State) String() string {
	switch s {
	case StateIdle:
		return "Idle"
	case StateConnect:
		return "Connect"
	case StateActive:
		return "Active"
	case StateOpenSent:
		return "OpenSent"
	case StateOpenConfirm:
		return "OpenConfirm"
	case StateEstablished:
		return "Established"
	default:
		return fmt.Sprintf("State(%d)", int32(s))
	}
}

// Config configures one side of a BGP session.
type Config struct {
	// LocalASN and RemoteASN are the 4-octet AS numbers. RemoteASN 0
	// accepts any peer ASN (used by route servers).
	LocalASN  uint32
	RemoteASN uint32
	// LocalID is the BGP identifier (an IPv4 address).
	LocalID netip.Addr
	// HoldTime proposed in the OPEN. Zero selects DefaultHoldTime.
	HoldTime time.Duration
	// Families lists address families for the multiprotocol capability.
	// Defaults to IPv4 unicast.
	Families []AFISAFI
	// AddPath maps families to the ADD-PATH mode advertised
	// (AddPathSend, AddPathReceive, or AddPathSendReceive).
	AddPath map[AFISAFI]uint8
	// DisableAS4 advertises no 4-octet-AS capability, forcing 2-octet
	// AS_PATH encoding (for interop tests).
	DisableAS4 bool
	// PeerName labels this session's telemetry series (the platform
	// neighbor name). Empty is allowed; all unnamed sessions share one
	// series per metric.
	PeerName string
	// MRAI, when positive, enforces BGP's MinRouteAdvertisementInterval
	// (RFC 4271 §9.2.1.1): successive advertisements of the SAME prefix
	// are paced, with only the newest version sent when the interval
	// expires. Withdrawals and first advertisements go out immediately.
	// The paper notes MRAI as a baseline delay any update pipeline sits
	// behind (§6). Zero disables pacing.
	MRAI time.Duration
	// GracefulRestart, when non-nil, advertises the RFC 4724 capability:
	// the peer should retain our routes across a session drop and we do
	// the same for it (stale-path retention is the caller's job, driven
	// by OnClose and OnEndOfRIB).
	GracefulRestart *GracefulRestartConfig

	// OnUpdate is called for each received UPDATE while Established.
	// End-of-RIB markers are not passed here; see OnEndOfRIB.
	OnUpdate func(*Update)
	// OnEndOfRIB is called when the peer signals End-of-RIB for a
	// family (RFC 4724): its initial re-advertisement after a restart
	// is complete and retained stale paths can be swept.
	OnEndOfRIB func(AFISAFI)
	// OnRouteRefresh is called when the peer requests re-advertisement
	// of a family (RFC 2918).
	OnRouteRefresh func(AFISAFI)
	// OnEstablished is called once the session reaches Established.
	OnEstablished func()
	// OnClose is called exactly once when the session ends.
	OnClose func(error)

	// Logf, when set, receives session event logs.
	Logf func(format string, args ...any)
}

// GracefulRestartConfig configures RFC 4724 negotiation for a session.
type GracefulRestartConfig struct {
	// RestartTime is advertised as the 12-bit restart time: how long the
	// peer should retain our routes after the session drops.
	RestartTime time.Duration
	// Restarting sets the R bit, marking this session as the
	// re-establishment after a restart (set by the Supervisor on
	// reconnect attempts).
	Restarting bool
}

// Session is one BGP session over an established transport. Create with
// NewSession and call Run (usually in a goroutine); send routes with
// Send.
type Session struct {
	cfg    Config
	conn   net.Conn
	reader io.Reader

	state atomic.Int32

	writeMu sync.Mutex
	enc     codecOpts // applies to what we send
	dec     codecOpts // applies to what we receive

	negotiated struct {
		remoteASN  uint32
		remoteID   netip.Addr
		holdTime   time.Duration
		remoteCaps *Capabilities
	}

	holdMu   sync.Mutex
	lastRecv time.Time

	// MRAI coalescing state (RFC 4271 §9.2.1.1): one pending map and
	// ONE flush timer per session. mraiLast records when each route was
	// last advertised; re-advertisements inside the interval replace the
	// pending copy, and the timer drains everything due in a single
	// batched UPDATE per attribute set.
	mraiMu      sync.Mutex
	mraiLast    map[string]time.Time
	mraiPending map[string]pacedRoute
	mraiOrder   []string
	mraiTimer   *time.Timer
	mraiAt      time.Time
	// MRAISuppressed counts advertisements absorbed by pacing.
	MRAISuppressed atomic.Uint64

	closeOnce sync.Once
	closeErr  error
	done      chan struct{}

	metrics *sessionMetrics

	// Counters for the scalability evaluation (paper §6).
	UpdatesIn  atomic.Uint64
	UpdatesOut atomic.Uint64
	BytesIn    atomic.Uint64
	BytesOut   atomic.Uint64
}

// NewSession wraps conn in a BGP session. The caller owns starting it
// with Run.
func NewSession(conn net.Conn, cfg Config) *Session {
	if cfg.HoldTime == 0 {
		cfg.HoldTime = DefaultHoldTime * time.Second
	}
	if len(cfg.Families) == 0 {
		cfg.Families = []AFISAFI{IPv4Unicast}
	}
	s := &Session{cfg: cfg, conn: conn, done: make(chan struct{})}
	s.reader = &countingReader{r: conn, n: &s.BytesIn}
	s.metrics = newSessionMetrics(cfg.PeerName)
	s.state.Store(int32(StateIdle))
	return s
}

// countingReader tallies inbound bytes for the §6 counters.
type countingReader struct {
	r io.Reader
	n *atomic.Uint64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n.Add(uint64(n))
	return n, err
}

// State returns the current FSM state.
func (s *Session) State() State { return State(s.state.Load()) }

// RemoteASN returns the peer's negotiated 4-octet ASN (valid once the
// session leaves OpenSent).
func (s *Session) RemoteASN() uint32 { return s.negotiated.remoteASN }

// RemoteID returns the peer's BGP identifier.
func (s *Session) RemoteID() netip.Addr { return s.negotiated.remoteID }

// RemoteCaps returns the peer's capability set.
func (s *Session) RemoteCaps() *Capabilities { return s.negotiated.remoteCaps }

// AddPathSendEnabled reports whether we encode path IDs for family f.
func (s *Session) AddPathSendEnabled(f AFISAFI) bool {
	switch f {
	case IPv4Unicast:
		return s.enc.addPathV4
	case IPv6Unicast:
		return s.enc.addPathV6
	}
	return false
}

// Done returns a channel closed when the session terminates.
func (s *Session) Done() <-chan struct{} { return s.done }

// Err returns the terminal error after Done is closed.
func (s *Session) Err() error {
	select {
	case <-s.done:
		return s.closeErr
	default:
		return nil
	}
}

func (s *Session) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// localCaps builds the capability set advertised in our OPEN.
func (s *Session) localCaps() *Capabilities {
	c := &Capabilities{MP: s.cfg.Families, RouteRefresh: true}
	if !s.cfg.DisableAS4 {
		c.AS4 = s.cfg.LocalASN
	}
	if len(s.cfg.AddPath) > 0 {
		c.AddPath = s.cfg.AddPath
	}
	if gr := s.cfg.GracefulRestart; gr != nil {
		g := &GracefulRestart{Restarting: gr.Restarting, Time: gr.RestartTime}
		for _, f := range s.cfg.Families {
			g.Families = append(g.Families, GRFamily{Family: f, Forwarding: true})
		}
		c.GR = g
	}
	return c
}

// GracefulRestartNegotiated reports whether both sides advertised the
// RFC 4724 capability (valid once the session leaves OpenSent). Callers
// use it to decide between stale-path retention and immediate withdraw
// when the session drops.
func (s *Session) GracefulRestartNegotiated() bool {
	return s.cfg.GracefulRestart != nil &&
		s.negotiated.remoteCaps != nil && s.negotiated.remoteCaps.GR != nil
}

// SendEndOfRIB transmits the End-of-RIB marker for family f, signalling
// that the initial (re-)advertisement of the family is complete.
func (s *Session) SendEndOfRIB(f AFISAFI) error {
	if s.State() != StateEstablished {
		return fmt.Errorf("bgp: session not established (state %s)", s.State())
	}
	s.UpdatesOut.Add(1)
	return s.write(EndOfRIB(f))
}

// setState records an FSM transition, counting flaps when an
// Established session drops back to Idle.
func (s *Session) setState(st State) {
	old := State(s.state.Swap(int32(st)))
	if old == st {
		return
	}
	fsmTransitions[st].Inc()
	if st == StateIdle && old == StateEstablished {
		sessionFlaps.Inc()
	}
}

// Run drives the session: it sends our OPEN, completes the handshake,
// then processes messages until the session ends. It always returns the
// terminal error (nil only on clean administrative shutdown).
func (s *Session) Run() error {
	s.setState(StateOpenSent)
	openASN := uint16(ASTrans)
	if s.cfg.LocalASN <= 0xffff {
		openASN = uint16(s.cfg.LocalASN)
	}
	open := &Open{
		Version:  Version,
		ASN:      openASN,
		HoldTime: uint16(s.cfg.HoldTime / time.Second),
		BGPID:    s.cfg.LocalID,
		Caps:     s.localCaps(),
	}
	if err := s.write(open); err != nil {
		s.shutdown(err)
		return s.closeErr
	}

	// Handshake: expect the peer's OPEN.
	msg, err := readMessage(s.reader, &s.dec)
	if err != nil {
		var ne *NotificationError
		if errors.As(err, &ne) {
			s.notifyAndClose(ne)
		} else {
			s.shutdown(fmt.Errorf("bgp: waiting for OPEN: %w", err))
		}
		return s.closeErr
	}
	s.metrics.countIn(msg)
	peerOpen, ok := msg.(*Open)
	if !ok {
		s.notifyAndClose(notif(ErrCodeFSM, 0))
		return s.closeErr
	}
	if err := s.handleOpen(peerOpen); err != nil {
		var ne *NotificationError
		if errors.As(err, &ne) {
			s.notifyAndClose(ne)
		} else {
			s.shutdown(err)
		}
		return s.closeErr
	}
	s.setState(StateOpenConfirm)
	if err := s.write(&Keepalive{}); err != nil {
		s.shutdown(err)
		return s.closeErr
	}

	s.touch()
	if s.negotiated.holdTime > 0 {
		go s.keepaliveLoop()
	}

	for {
		msg, err := readMessage(s.reader, &s.dec)
		if err != nil {
			var ne *NotificationError
			if errors.As(err, &ne) {
				s.notifyAndClose(ne)
			} else {
				s.shutdown(err)
			}
			return s.closeErr
		}
		s.touch()
		s.metrics.countIn(msg)
		if err := s.handleMessage(msg); err != nil {
			var ne *NotificationError
			if errors.As(err, &ne) {
				s.notifyAndClose(ne)
			} else {
				s.shutdown(err)
			}
			return s.closeErr
		}
		if s.State() == StateIdle {
			return s.closeErr
		}
	}
}

// handleOpen validates the peer's OPEN and completes negotiation.
func (s *Session) handleOpen(o *Open) error {
	remoteASN := uint32(o.ASN)
	if o.Caps != nil && o.Caps.AS4 != 0 {
		remoteASN = o.Caps.AS4
	}
	if s.cfg.RemoteASN != 0 && remoteASN != s.cfg.RemoteASN {
		return notif(ErrCodeOpen, ErrSubBadPeerAS)
	}
	if !o.BGPID.IsValid() || o.BGPID == netip.IPv4Unspecified() {
		return notif(ErrCodeOpen, ErrSubBadBGPID)
	}
	if o.HoldTime == 1 || o.HoldTime == 2 {
		return notif(ErrCodeOpen, ErrSubUnacceptableHold)
	}
	s.negotiated.remoteASN = remoteASN
	s.negotiated.remoteID = o.BGPID
	s.negotiated.remoteCaps = o.Caps

	hold := s.cfg.HoldTime
	if peer := time.Duration(o.HoldTime) * time.Second; peer < hold {
		hold = peer
	}
	s.negotiated.holdTime = hold

	local := s.localCaps()
	as4 := local.AS4 != 0 && o.Caps != nil && o.Caps.AS4 != 0
	s.enc.as4, s.dec.as4 = as4, as4
	if o.Caps != nil {
		sendV4, recvV4 := negotiateAddPath(local, o.Caps, IPv4Unicast)
		sendV6, recvV6 := negotiateAddPath(local, o.Caps, IPv6Unicast)
		s.enc.addPathV4, s.dec.addPathV4 = sendV4, recvV4
		s.enc.addPathV6, s.dec.addPathV6 = sendV6, recvV6
	}
	s.logf("negotiated: peer AS%d id=%s hold=%s as4=%v addpath(v4 send=%v recv=%v)",
		remoteASN, o.BGPID, hold, as4, s.enc.addPathV4, s.dec.addPathV4)
	return nil
}

func (s *Session) handleMessage(msg Message) error {
	switch m := msg.(type) {
	case *Keepalive:
		if s.State() == StateOpenConfirm {
			s.setState(StateEstablished)
			s.logf("established")
			if s.cfg.OnEstablished != nil {
				s.cfg.OnEstablished()
			}
		}
	case *Update:
		if s.State() != StateEstablished {
			return notif(ErrCodeFSM, 0)
		}
		s.UpdatesIn.Add(1)
		if fam, ok := m.EndOfRIBFamily(); ok {
			if s.cfg.OnEndOfRIB != nil {
				s.cfg.OnEndOfRIB(fam)
			}
			return nil
		}
		if s.cfg.OnUpdate != nil {
			s.cfg.OnUpdate(m)
		}
	case *Notification:
		s.shutdown(m)
	case *RouteRefresh:
		if s.cfg.OnRouteRefresh != nil {
			s.cfg.OnRouteRefresh(m.Family)
		}
	case *Open:
		return notif(ErrCodeFSM, 0)
	}
	return nil
}

// Send transmits an UPDATE. It is safe for concurrent use. With MRAI
// configured, re-advertisements within the interval are absorbed into a
// per-session pending set and delivered coalesced — one batched UPDATE
// per attribute set — when the interval lapses; the first advertisement
// of a route and all withdrawals go out immediately. Send still reports
// success for absorbed routes (the coalesced copy is delivered by the
// session's flush timer, and Close flushes whatever is still pending).
func (s *Session) Send(u *Update) error {
	if s.State() != StateEstablished {
		return fmt.Errorf("bgp: session not established (state %s)", s.State())
	}
	if s.cfg.MRAI > 0 {
		u = s.coalesce(u)
		if u == nil {
			return nil // fully absorbed
		}
	}
	s.UpdatesOut.Add(1)
	return s.write(u)
}

// pacedRoute is one advertisement held back by MRAI: the newest
// attributes for a route plus which family list it came from.
type pacedRoute struct {
	attrs *PathAttrs
	nlri  NLRI
	mp    bool // true: MP_REACH (v6) list, false: classic v4 NLRI
}

// coalesce applies MRAI to u, returning the residual update to send
// immediately (nil if everything was absorbed). Withdrawals pass
// through untouched and cancel any pending advertisement of the same
// route — a withdrawal racing a held-back advert must win.
func (s *Session) coalesce(u *Update) *Update {
	now := time.Now()
	s.mraiMu.Lock()
	if s.mraiLast == nil {
		s.mraiLast = make(map[string]time.Time)
		s.mraiPending = make(map[string]pacedRoute)
	}
	for _, w := range u.Withdrawn {
		delete(s.mraiPending, w.String())
	}
	for _, w := range u.MPUnreach {
		delete(s.mraiPending, w.String())
	}
	admit := func(routes []NLRI, mp bool) []NLRI {
		var pass []NLRI
		for _, n := range routes {
			key := n.String()
			last, seen := s.mraiLast[key]
			if !seen || now.Sub(last) >= s.cfg.MRAI {
				s.mraiLast[key] = now
				pass = append(pass, n)
				continue
			}
			if _, dup := s.mraiPending[key]; !dup {
				s.mraiOrder = append(s.mraiOrder, key)
			}
			s.mraiPending[key] = pacedRoute{attrs: u.Attrs, nlri: n, mp: mp}
			s.MRAISuppressed.Add(1)
			s.armFlushLocked(last.Add(s.cfg.MRAI))
		}
		return pass
	}
	nlri := admit(u.NLRI, false)
	mpReach := admit(u.MPReach, true)
	s.mraiMu.Unlock()

	if len(nlri) == len(u.NLRI) && len(mpReach) == len(u.MPReach) {
		return u // nothing absorbed
	}
	if len(nlri) == 0 && len(mpReach) == 0 &&
		len(u.Withdrawn) == 0 && len(u.MPUnreach) == 0 {
		return nil
	}
	return &Update{Withdrawn: u.Withdrawn, MPUnreach: u.MPUnreach, Attrs: u.Attrs, NLRI: nlri, MPReach: mpReach}
}

// armFlushLocked makes sure the session's single flush timer fires no
// later than at. Called with mraiMu held.
func (s *Session) armFlushLocked(at time.Time) {
	if s.mraiTimer != nil && !s.mraiAt.IsZero() && !at.Before(s.mraiAt) {
		return
	}
	if s.mraiTimer != nil {
		s.mraiTimer.Stop()
	}
	s.mraiAt = at
	s.mraiTimer = time.AfterFunc(max(time.Until(at), 0), func() { s.flushPaced(false) })
}

// flushPaced drains the pending set — everything due, or everything
// outright when force is set (flush-on-close) — and sends the survivors
// batched, one UPDATE per distinct attribute set, in arrival order.
func (s *Session) flushPaced(force bool) {
	now := time.Now()
	s.mraiMu.Lock()
	s.mraiAt = time.Time{}
	if s.mraiTimer != nil {
		s.mraiTimer.Stop()
		s.mraiTimer = nil
	}
	var batches []*Update
	byAttrs := make(map[*PathAttrs]*Update)
	var remain []string
	var earliest time.Time
	count := 0
	for _, key := range s.mraiOrder {
		e, ok := s.mraiPending[key]
		if !ok {
			continue // cancelled by a withdrawal
		}
		if due := s.mraiLast[key].Add(s.cfg.MRAI); !force && due.After(now) {
			remain = append(remain, key)
			if earliest.IsZero() || due.Before(earliest) {
				earliest = due
			}
			continue
		}
		delete(s.mraiPending, key)
		s.mraiLast[key] = now
		b := byAttrs[e.attrs]
		if b == nil {
			b = &Update{Attrs: e.attrs}
			byAttrs[e.attrs] = b
			batches = append(batches, b)
		}
		if e.mp {
			b.MPReach = append(b.MPReach, e.nlri)
		} else {
			b.NLRI = append(b.NLRI, e.nlri)
		}
		count++
	}
	s.mraiOrder = remain
	if len(remain) > 0 {
		s.armFlushLocked(earliest)
	}
	s.mraiMu.Unlock()

	if count == 0 {
		return
	}
	mraiBatchSize.Observe(float64(count))
	for _, b := range batches {
		if s.State() != StateEstablished {
			return
		}
		s.UpdatesOut.Add(1)
		_ = s.write(b)
	}
}

// Flush immediately sends every MRAI-held advertisement. Close calls it
// so no coalesced route is lost when a session is shut down cleanly.
func (s *Session) Flush() {
	if s.cfg.MRAI > 0 {
		s.flushPaced(true)
	}
}

// SendRouteRefresh requests re-advertisement of family f from the peer.
func (s *Session) SendRouteRefresh(f AFISAFI) error {
	return s.write(&RouteRefresh{Family: f})
}

func (s *Session) write(m Message) error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	eb := getEncodeBuffer()
	defer eb.release()
	b, err := appendMessage(eb.buf, m, &s.enc)
	if err != nil {
		return err
	}
	eb.buf = b
	s.metrics.countOut(m)
	outBytes.Observe(float64(len(b)))
	s.BytesOut.Add(uint64(len(b)))
	_, err = s.conn.Write(b)
	return err
}

// sendBlockFlush is the encoded-size threshold at which SendBatch
// flushes mid-block, bounding pooled-buffer growth on full-table dumps.
const sendBlockFlush = 256 << 10

// nlriWireSize returns the encoded size of one NLRI entry: optional
// 4-byte ADD-PATH id, length octet, minimal prefix octets.
func nlriWireSize(n NLRI, addPath bool) int {
	sz := 1 + (n.Prefix.Bits()+7)/8
	if addPath {
		sz += 4
	}
	return sz
}

// packable reports whether u is a pure IPv4 advertisement (resp. pure
// IPv4 withdrawal) that packBatch may merge with its neighbors.
func packableAdvert(u *Update) bool {
	return u.Attrs != nil && len(u.NLRI) > 0 && !u.eorV6 &&
		len(u.Withdrawn) == 0 && len(u.MPReach) == 0 && len(u.MPUnreach) == 0
}

func packableWithdraw(u *Update) bool {
	return u.Attrs == nil && len(u.Withdrawn) > 0 && !u.eorV6 &&
		len(u.NLRI) == 0 && len(u.MPReach) == 0 && len(u.MPUnreach) == 0
}

// packBatch merges runs of per-route updates into packed route blocks —
// one UPDATE carrying many NLRI under a shared attribute set, filled to
// the 4096-byte message limit — so a million-route flood crosses the
// wire (and the peer's decoder) in thousands of frames instead of a
// million. Only two shapes are packed, and only across consecutive
// updates so inter-route ordering is preserved exactly: pure IPv4
// advertisements sharing the same *PathAttrs (pointer identity — the
// shape table dumps and batched propagation emit), and pure IPv4
// withdrawals. Everything else passes through unchanged.
func (s *Session) packBatch(updates []*Update) []*Update {
	packed := make([]*Update, 0, len(updates))
	for i := 0; i < len(updates); {
		u := updates[i]
		switch {
		case packableAdvert(u):
			j := i + 1
			for j < len(updates) && packableAdvert(updates[j]) && updates[j].Attrs == u.Attrs {
				j++
			}
			if j == i+1 {
				packed = append(packed, u)
				i = j
				continue
			}
			// Exact size accounting: attrs encode deterministically, so a
			// frame filled against this budget never exceeds MaxMessageLen.
			budget := MaxMessageLen - HeaderLen - 4 -
				len(appendAttrs(nil, u.Attrs, s.enc.as4, nil, nil, s.enc.addPathV6))
			remaining := 0
			for _, v := range updates[i:j] {
				remaining += len(v.NLRI)
			}
			newFrame := func() *Update {
				return &Update{Attrs: u.Attrs, NLRI: make([]NLRI, 0, min(remaining, budget/4+8))}
			}
			frame := newFrame()
			used := 0
			for _, v := range updates[i:j] {
				for _, n := range v.NLRI {
					sz := nlriWireSize(n, s.enc.addPathV4)
					if used+sz > budget && len(frame.NLRI) > 0 {
						packed = append(packed, frame)
						frame = newFrame()
						used = 0
					}
					frame.NLRI = append(frame.NLRI, n)
					used += sz
					remaining--
				}
			}
			if len(frame.NLRI) > 0 {
				packed = append(packed, frame)
			}
			i = j
		case packableWithdraw(u):
			j := i + 1
			for j < len(updates) && packableWithdraw(updates[j]) {
				j++
			}
			if j == i+1 {
				packed = append(packed, u)
				i = j
				continue
			}
			budget := MaxMessageLen - HeaderLen - 4
			frame := &Update{}
			used := 0
			for _, v := range updates[i:j] {
				for _, n := range v.Withdrawn {
					sz := nlriWireSize(n, s.enc.addPathV4)
					if used+sz > budget && len(frame.Withdrawn) > 0 {
						packed = append(packed, frame)
						frame = &Update{}
						used = 0
					}
					frame.Withdrawn = append(frame.Withdrawn, n)
					used += sz
				}
			}
			if len(frame.Withdrawn) > 0 {
				packed = append(packed, frame)
			}
			i = j
		default:
			packed = append(packed, u)
			i++
		}
	}
	return packed
}

// SendBatch transmits a block of UPDATEs as contiguous writes: runs of
// per-route updates are packed into shared-attribute route blocks
// (packBatch), the whole block is framed into one pooled buffer under a
// single acquisition of the session write lock, and delivered with one
// transport write (chunked at sendBlockFlush) — so per-prefix lock,
// encode, and per-frame decode costs on both ends are amortized over
// the block. The receiver sees the same routes with the same attributes
// in the same order as len(updates) sequential Sends, though frame
// boundaries differ. MRAI coalescing (when configured) is applied per
// update exactly as Send applies it. If one update fails to encode, the
// block's earlier messages are still delivered and the encode error is
// returned.
func (s *Session) SendBatch(updates []*Update) error {
	if s.State() != StateEstablished {
		return fmt.Errorf("bgp: session not established (state %s)", s.State())
	}
	if s.cfg.MRAI > 0 {
		admitted := make([]*Update, 0, len(updates))
		for _, u := range updates {
			if u = s.coalesce(u); u != nil {
				admitted = append(admitted, u)
			}
		}
		updates = admitted
	}
	if len(updates) == 0 {
		return nil
	}
	updates = s.packBatch(updates)
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	eb := getEncodeBuffer()
	defer eb.release()
	for _, u := range updates {
		prev := len(eb.buf)
		b, err := appendMessage(eb.buf, u, &s.enc)
		if err != nil {
			if ferr := s.flushBlockLocked(eb); ferr != nil {
				return ferr
			}
			return err
		}
		eb.buf = b
		s.metrics.countOut(u)
		outBytes.Observe(float64(len(b) - prev))
		s.BytesOut.Add(uint64(len(b) - prev))
		s.UpdatesOut.Add(1)
		if len(eb.buf) >= sendBlockFlush {
			if err := s.flushBlockLocked(eb); err != nil {
				return err
			}
		}
	}
	return s.flushBlockLocked(eb)
}

// flushBlockLocked writes the accumulated block and resets the buffer
// for further framing. Called with writeMu held.
func (s *Session) flushBlockLocked(eb *encodeBuffer) error {
	if len(eb.buf) == 0 {
		return nil
	}
	_, err := s.conn.Write(eb.buf)
	eb.buf = eb.buf[:0]
	return err
}

func (s *Session) touch() {
	s.holdMu.Lock()
	s.lastRecv = time.Now()
	s.holdMu.Unlock()
}

func (s *Session) keepaliveLoop() {
	interval := s.negotiated.holdTime / 3
	if interval <= 0 {
		return
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-t.C:
			s.holdMu.Lock()
			idle := time.Since(s.lastRecv)
			s.holdMu.Unlock()
			if idle > s.negotiated.holdTime {
				s.notifyAndClose(notif(ErrCodeHoldTimer, 0))
				return
			}
			if err := s.write(&Keepalive{}); err != nil {
				s.shutdown(err)
				return
			}
		}
	}
}

// Close performs an administrative shutdown (Cease notification).
func (s *Session) Close() error {
	s.closeOnce.Do(func() {
		s.Flush() // flush-on-close: drain MRAI-held advertisements first
		_ = s.write(&Notification{Code: ErrCodeCease, Subcode: CeaseAdminShutdown})
		s.setState(StateIdle)
		s.closeErr = nil
		_ = s.conn.Close()
		close(s.done)
		if s.cfg.OnClose != nil {
			s.cfg.OnClose(nil)
		}
	})
	return nil
}

// notifyAndClose sends a NOTIFICATION for err and terminates. Every
// locally detected decode or FSM error lands here; hold-timer expiry
// and administrative cease are the only non-error notification causes.
func (s *Session) notifyAndClose(ne *NotificationError) {
	if ne.Code != ErrCodeHoldTimer && ne.Code != ErrCodeCease {
		s.metrics.decodeErrs.Inc()
	}
	_ = s.write(&Notification{Code: ne.Code, Subcode: ne.Subcode, Data: ne.Data})
	s.shutdown(ne)
}

func (s *Session) shutdown(err error) {
	s.closeOnce.Do(func() {
		s.setState(StateIdle)
		s.closeErr = err
		_ = s.conn.Close()
		close(s.done)
		if s.cfg.OnClose != nil {
			s.cfg.OnClose(err)
		}
	})
}
