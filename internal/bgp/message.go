package bgp

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"net/netip"
)

// Message is implemented by all BGP message types.
type Message interface {
	// Type returns the message type code.
	Type() uint8
	// appendBody appends the message payload (everything after the
	// header) to b in place and returns the extended slice, so batched
	// encodes reuse one pooled buffer instead of allocating per message.
	// opts carries per-session negotiation state that affects encoding.
	appendBody(b []byte, opts *codecOpts) []byte
}

// codecOpts carries session-negotiated options that change message wire
// format.
type codecOpts struct {
	as4       bool // 4-octet AS_PATH encoding
	addPathV4 bool // path IDs in IPv4 NLRI
	addPathV6 bool // path IDs in MP IPv6 NLRI
}

// Open is a BGP OPEN message.
type Open struct {
	Version  uint8
	ASN      uint16 // AS_TRANS when the real ASN needs 4 octets
	HoldTime uint16
	BGPID    netip.Addr // router ID, always an IPv4 address
	Caps     *Capabilities
}

// Type implements Message.
func (*Open) Type() uint8 { return MsgOpen }

func (m *Open) appendBody(b []byte, _ *codecOpts) []byte {
	b = append(b, m.Version)
	b = binary.BigEndian.AppendUint16(b, m.ASN)
	b = binary.BigEndian.AppendUint16(b, m.HoldTime)
	id := m.BGPID.As4()
	b = append(b, id[:]...)
	opt := marshalCapabilities(m.Caps)
	b = append(b, byte(len(opt)))
	return append(b, opt...)
}

// Update is a BGP UPDATE message. IPv4 reachability travels in
// Withdrawn/NLRI; IPv6 reachability travels in the MP attributes and is
// surfaced here as MPReach/MPUnreach after decoding.
type Update struct {
	Withdrawn []NLRI
	Attrs     *PathAttrs
	NLRI      []NLRI

	// MPReach and MPUnreach are IPv6 routes carried in MP_REACH_NLRI /
	// MP_UNREACH_NLRI; the IPv6 next hop is Attrs.MPNextHop.
	MPReach   []NLRI
	MPUnreach []NLRI

	// eorV6 marks this update as an IPv6 End-of-RIB: the body carries a
	// bare MP_UNREACH_NLRI attribute with no routes (RFC 4724 §2).
	eorV6 bool
}

// EndOfRIB builds the RFC 4724 End-of-RIB marker for a family: an empty
// UPDATE for IPv4 unicast, an UPDATE whose only content is an empty
// MP_UNREACH_NLRI attribute for IPv6 unicast.
func EndOfRIB(f AFISAFI) *Update {
	if f == IPv6Unicast {
		return &Update{eorV6: true}
	}
	return &Update{}
}

// EndOfRIBFamily reports whether the (decoded) update is an End-of-RIB
// marker and for which family. An empty UPDATE with no attributes is the
// IPv4 marker; one whose attributes decoded to an empty set alongside an
// empty MP_UNREACH is the IPv6 marker.
func (m *Update) EndOfRIBFamily() (AFISAFI, bool) {
	if len(m.Withdrawn) != 0 || len(m.NLRI) != 0 || len(m.MPReach) != 0 || len(m.MPUnreach) != 0 {
		return AFISAFI{}, false
	}
	if m.eorV6 {
		return IPv6Unicast, true
	}
	if m.Attrs == nil {
		return IPv4Unicast, true
	}
	a := m.Attrs
	empty := !a.HasOrigin && a.ASPath == nil && !a.NextHop.IsValid() &&
		!a.MPNextHop.IsValid() && !a.HasMED && !a.HasLocalPref &&
		!a.AtomicAggregate && a.Aggregator == nil &&
		len(a.Communities) == 0 && len(a.LargeCommunities) == 0 && len(a.Unknown) == 0
	if empty {
		return IPv6Unicast, true
	}
	return AFISAFI{}, false
}

// Type implements Message.
func (*Update) Type() uint8 { return MsgUpdate }

func (m *Update) appendBody(b []byte, opts *codecOpts) []byte {
	// Both variable-length sections are appended in place and their
	// two-byte length prefixes patched afterwards.
	wdAt := len(b)
	b = append(b, 0, 0)
	for _, n := range m.Withdrawn {
		b = appendNLRI(b, n, opts.addPathV4)
	}
	binary.BigEndian.PutUint16(b[wdAt:], uint16(len(b)-wdAt-2))
	attrAt := len(b)
	b = append(b, 0, 0)
	b = appendAttrs(b, m.Attrs, opts.as4, m.MPReach, m.MPUnreach, opts.addPathV6)
	if m.eorV6 {
		// Empty MP_UNREACH_NLRI: AFI=2, SAFI=unicast, zero routes.
		b = append(b, FlagOptional, AttrMPUnreach, 3, 0, 2, SAFIUnicast)
	}
	binary.BigEndian.PutUint16(b[attrAt:], uint16(len(b)-attrAt-2))
	for _, n := range m.NLRI {
		b = appendNLRI(b, n, opts.addPathV4)
	}
	return b
}

// Notification is a BGP NOTIFICATION message; sending one closes the
// session.
type Notification struct {
	Code    uint8
	Subcode uint8
	Data    []byte
}

// Type implements Message.
func (*Notification) Type() uint8 { return MsgNotification }

func (m *Notification) appendBody(b []byte, _ *codecOpts) []byte {
	b = append(b, m.Code, m.Subcode)
	return append(b, m.Data...)
}

// Error renders the notification as an error.
func (m *Notification) Error() string {
	return fmt.Sprintf("bgp: received notification code=%d subcode=%d", m.Code, m.Subcode)
}

// Keepalive is a BGP KEEPALIVE message.
type Keepalive struct{}

// Type implements Message.
func (*Keepalive) Type() uint8 { return MsgKeepalive }

func (*Keepalive) appendBody(b []byte, _ *codecOpts) []byte { return b }

// RouteRefresh is an RFC 2918 ROUTE-REFRESH message.
type RouteRefresh struct {
	Family AFISAFI
}

// Type implements Message.
func (*RouteRefresh) Type() uint8 { return MsgRouteRefresh }

func (m *RouteRefresh) appendBody(b []byte, _ *codecOpts) []byte {
	b = binary.BigEndian.AppendUint16(b, m.Family.AFI)
	return append(b, 0, m.Family.SAFI)
}

// appendMessage appends m, framed with the BGP header, to dst and
// returns the extended slice. dst is truncated back to its original
// length on error, so callers accumulating a batched block keep the
// valid prefix.
func appendMessage(dst []byte, m Message, opts *codecOpts) ([]byte, error) {
	start := len(dst)
	dst = append(dst, marker[:]...)
	dst = append(dst, 0, 0, m.Type())
	dst = m.appendBody(dst, opts)
	total := len(dst) - start
	if total > MaxMessageLen {
		return dst[:start], fmt.Errorf("bgp: message length %d exceeds maximum %d", total, MaxMessageLen)
	}
	binary.BigEndian.PutUint16(dst[start+16:], uint16(total))
	return dst, nil
}

// marshalMessage frames a message with the BGP header.
func marshalMessage(m Message, opts *codecOpts) ([]byte, error) {
	return appendMessage(make([]byte, 0, HeaderLen+64), m, opts)
}

// decodeBlock decodes a contiguous concatenation of framed BGP messages
// — the wire image of one batched write (Session.SendBatch). It returns
// the messages decoded before the first error, if any; a trailing
// partial frame is an error.
func decodeBlock(data []byte, opts *codecOpts) ([]Message, error) {
	var msgs []Message
	r := bytes.NewReader(data)
	for r.Len() > 0 {
		m, err := readMessage(r, opts)
		if err != nil {
			return msgs, err
		}
		msgs = append(msgs, m)
	}
	return msgs, nil
}

// readMessage reads and decodes one message from r.
func readMessage(r io.Reader, opts *codecOpts) (Message, error) {
	var hdr [HeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	if [16]byte(hdr[:16]) != marker {
		return nil, notif(ErrCodeHeader, 1)
	}
	length := int(binary.BigEndian.Uint16(hdr[16:18]))
	typ := hdr[18]
	if length < HeaderLen || length > MaxMessageLen {
		return nil, notif(ErrCodeHeader, ErrSubBadLength)
	}
	body := make([]byte, length-HeaderLen)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return decodeBody(typ, body, opts)
}

// decodeBody decodes a message payload of the given type.
func decodeBody(typ uint8, body []byte, opts *codecOpts) (Message, error) {
	switch typ {
	case MsgOpen:
		return decodeOpen(body)
	case MsgUpdate:
		return decodeUpdate(body, opts)
	case MsgNotification:
		if len(body) < 2 {
			return nil, notif(ErrCodeHeader, ErrSubBadLength)
		}
		return &Notification{Code: body[0], Subcode: body[1], Data: append([]byte(nil), body[2:]...)}, nil
	case MsgKeepalive:
		if len(body) != 0 {
			return nil, notif(ErrCodeHeader, ErrSubBadLength)
		}
		return &Keepalive{}, nil
	case MsgRouteRefresh:
		if len(body) != 4 {
			return nil, notif(ErrCodeHeader, ErrSubBadLength)
		}
		return &RouteRefresh{Family: AFISAFI{binary.BigEndian.Uint16(body), body[3]}}, nil
	default:
		return nil, notif(ErrCodeHeader, ErrSubBadType, typ)
	}
}

func decodeOpen(body []byte) (*Open, error) {
	if len(body) < 10 {
		return nil, notif(ErrCodeHeader, ErrSubBadLength)
	}
	m := &Open{
		Version:  body[0],
		ASN:      binary.BigEndian.Uint16(body[1:3]),
		HoldTime: binary.BigEndian.Uint16(body[3:5]),
		BGPID:    netip.AddrFrom4([4]byte(body[5:9])),
	}
	if m.Version != Version {
		return nil, notif(ErrCodeOpen, ErrSubUnsupportedVersion, 0, Version)
	}
	optLen := int(body[9])
	if len(body) < 10+optLen {
		return nil, notif(ErrCodeHeader, ErrSubBadLength)
	}
	caps, err := parseCapabilities(body[10 : 10+optLen])
	if err != nil {
		return nil, err
	}
	m.Caps = caps
	return m, nil
}

func decodeUpdate(body []byte, opts *codecOpts) (*Update, error) {
	if len(body) < 4 {
		return nil, notif(ErrCodeUpdate, ErrSubMalformedAttrs)
	}
	wdLen := int(binary.BigEndian.Uint16(body[0:2]))
	if len(body) < 2+wdLen+2 {
		return nil, notif(ErrCodeUpdate, ErrSubMalformedAttrs)
	}
	withdrawn, err := decodeNLRIList(body[2:2+wdLen], opts.addPathV4, false)
	if err != nil {
		return nil, err
	}
	attrLen := int(binary.BigEndian.Uint16(body[2+wdLen : 4+wdLen]))
	if len(body) < 4+wdLen+attrLen {
		return nil, notif(ErrCodeUpdate, ErrSubMalformedAttrs)
	}
	attrBytes := body[4+wdLen : 4+wdLen+attrLen]
	nlriBytes := body[4+wdLen+attrLen:]

	m := &Update{Withdrawn: withdrawn}
	if attrLen > 0 {
		attrs, mpReach, mpUnreach, err := parseAttrs(attrBytes, opts.as4, opts.addPathV6)
		if err != nil {
			return nil, err
		}
		m.Attrs, m.MPReach, m.MPUnreach = attrs, mpReach, mpUnreach
	}
	if len(nlriBytes) > 0 {
		nlri, err := decodeNLRIList(nlriBytes, opts.addPathV4, false)
		if err != nil {
			return nil, err
		}
		m.NLRI = nlri
		if m.Attrs == nil || !m.Attrs.HasOrigin || m.Attrs.ASPath == nil || !m.Attrs.NextHop.IsValid() {
			return nil, notif(ErrCodeUpdate, ErrSubMissingWellKnown)
		}
	}
	return m, nil
}
