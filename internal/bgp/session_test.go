package bgp

import (
	"sync"
	"testing"
	"time"

	"repro/internal/pipe"
)

// startPair wires two sessions over a buffered pipe and waits for both to
// establish.
func startPair(t *testing.T, a, b Config) (*Session, *Session) {
	t.Helper()
	ca, cb := pipe.New()
	var wg sync.WaitGroup
	wg.Add(2)
	wrap := func(cfg *Config) {
		prev := cfg.OnEstablished
		cfg.OnEstablished = func() {
			wg.Done()
			if prev != nil {
				prev()
			}
		}
	}
	wrap(&a)
	wrap(&b)
	sa, sb := NewSession(ca, a), NewSession(cb, b)
	go sa.Run()
	go sb.Run()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("sessions did not establish: a=%s b=%s", sa.State(), sb.State())
	}
	t.Cleanup(func() { sa.Close(); sb.Close() })
	return sa, sb
}

func TestSessionEstablish(t *testing.T) {
	sa, sb := startPair(t,
		Config{LocalASN: 65001, RemoteASN: 65002, LocalID: ip("10.0.0.1")},
		Config{LocalASN: 65002, RemoteASN: 65001, LocalID: ip("10.0.0.2")},
	)
	if sa.State() != StateEstablished || sb.State() != StateEstablished {
		t.Fatalf("states: %s %s", sa.State(), sb.State())
	}
	if sa.RemoteASN() != 65002 || sb.RemoteASN() != 65001 {
		t.Errorf("remote ASNs: %d %d", sa.RemoteASN(), sb.RemoteASN())
	}
	if sa.RemoteID() != ip("10.0.0.2") {
		t.Errorf("remote ID: %s", sa.RemoteID())
	}
}

func TestSessionFourOctetASN(t *testing.T) {
	sa, _ := startPair(t,
		Config{LocalASN: 4200000001, RemoteASN: 4200000002, LocalID: ip("10.0.0.1")},
		Config{LocalASN: 4200000002, RemoteASN: 4200000001, LocalID: ip("10.0.0.2")},
	)
	if sa.RemoteASN() != 4200000002 {
		t.Errorf("4-octet remote ASN = %d", sa.RemoteASN())
	}
}

func TestSessionUpdateExchange(t *testing.T) {
	recv := make(chan *Update, 1)
	_, sb := startPair(t,
		Config{LocalASN: 65001, RemoteASN: 65002, LocalID: ip("10.0.0.1"),
			OnUpdate: func(u *Update) { recv <- u }},
		Config{LocalASN: 65002, RemoteASN: 65001, LocalID: ip("10.0.0.2")},
	)
	u := &Update{
		Attrs: &PathAttrs{
			Origin: OriginIGP, HasOrigin: true,
			ASPath:  []ASPathSegment{{Type: ASSequence, ASNs: []uint32{65002}}},
			NextHop: ip("10.0.0.2"),
		},
		NLRI: []NLRI{{Prefix: pfx("203.0.113.0/24")}},
	}
	if err := sb.Send(u); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-recv:
		if got.NLRI[0].Prefix != pfx("203.0.113.0/24") {
			t.Errorf("NLRI %v", got.NLRI)
		}
		if got.Attrs.FirstASN() != 65002 {
			t.Errorf("first ASN %d", got.Attrs.FirstASN())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("update not delivered")
	}
	if sb.UpdatesOut.Load() != 1 {
		t.Errorf("UpdatesOut = %d", sb.UpdatesOut.Load())
	}
}

func TestSessionAddPathNegotiation(t *testing.T) {
	recv := make(chan *Update, 1)
	sa, sb := startPair(t,
		Config{LocalASN: 65001, RemoteASN: 65002, LocalID: ip("10.0.0.1"),
			AddPath:  map[AFISAFI]uint8{IPv4Unicast: AddPathReceive},
			OnUpdate: func(u *Update) { recv <- u }},
		Config{LocalASN: 65002, RemoteASN: 65001, LocalID: ip("10.0.0.2"),
			AddPath: map[AFISAFI]uint8{IPv4Unicast: AddPathSend}},
	)
	if !sb.AddPathSendEnabled(IPv4Unicast) {
		t.Fatal("sender should have ADD-PATH send enabled")
	}
	if sa.AddPathSendEnabled(IPv4Unicast) {
		t.Fatal("receiver should not send path IDs")
	}
	// Two paths for the same prefix in one session — the core of vBGP's
	// control-plane delegation (§3.2.1).
	attrs := &PathAttrs{Origin: OriginIGP, HasOrigin: true,
		ASPath:  []ASPathSegment{{Type: ASSequence, ASNs: []uint32{65002}}},
		NextHop: ip("127.65.0.1")}
	u := &Update{Attrs: attrs, NLRI: []NLRI{
		{Prefix: pfx("192.168.0.0/24"), ID: 1},
		{Prefix: pfx("192.168.0.0/24"), ID: 2},
	}}
	if err := sb.Send(u); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-recv:
		if len(got.NLRI) != 2 || got.NLRI[0].ID != 1 || got.NLRI[1].ID != 2 {
			t.Errorf("path IDs lost: %v", got.NLRI)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("update not delivered")
	}
}

func TestSessionAddPathNotNegotiatedWithoutReceiver(t *testing.T) {
	_, sb := startPair(t,
		Config{LocalASN: 65001, RemoteASN: 65002, LocalID: ip("10.0.0.1")},
		Config{LocalASN: 65002, RemoteASN: 65001, LocalID: ip("10.0.0.2"),
			AddPath: map[AFISAFI]uint8{IPv4Unicast: AddPathSend}},
	)
	if sb.AddPathSendEnabled(IPv4Unicast) {
		t.Error("ADD-PATH enabled unilaterally")
	}
}

func TestSessionWrongASNRejected(t *testing.T) {
	ca, cb := pipe.New()
	errs := make(chan error, 2)
	sa := NewSession(ca, Config{LocalASN: 65001, RemoteASN: 65002, LocalID: ip("10.0.0.1")})
	sb := NewSession(cb, Config{LocalASN: 65099, RemoteASN: 65001, LocalID: ip("10.0.0.2")})
	go func() { errs <- sa.Run() }()
	go func() { errs <- sb.Run() }()
	select {
	case err := <-errs:
		if err == nil {
			t.Fatal("want error for ASN mismatch")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("sessions did not fail")
	}
}

func TestSessionSendBeforeEstablished(t *testing.T) {
	ca, _ := pipe.New()
	s := NewSession(ca, Config{LocalASN: 1, RemoteASN: 2, LocalID: ip("1.1.1.1")})
	if err := s.Send(&Update{}); err == nil {
		t.Error("Send before establish should fail")
	}
}

func TestSessionCloseDeliversCease(t *testing.T) {
	closed := make(chan error, 1)
	sa, _ := startPair(t,
		Config{LocalASN: 65001, RemoteASN: 65002, LocalID: ip("10.0.0.1")},
		Config{LocalASN: 65002, RemoteASN: 65001, LocalID: ip("10.0.0.2"),
			OnClose: func(err error) { closed <- err }},
	)
	sa.Close()
	select {
	case err := <-closed:
		n, ok := err.(*Notification)
		if !ok || n.Code != ErrCodeCease {
			t.Errorf("close err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("peer did not observe close")
	}
}

func TestSessionHoldTimerExpiry(t *testing.T) {
	// A peer that opens but then goes silent (no keepalives): our side
	// must drop the session when the hold time passes. The minimum legal
	// non-zero hold time is 3s, so this test takes a few seconds.
	if testing.Short() {
		t.Skip("hold timer test sleeps several seconds")
	}
	ca, cb := pipe.New()
	errs := make(chan error, 1)
	s := NewSession(ca, Config{LocalASN: 65001, RemoteASN: 65002, LocalID: ip("10.0.0.1"),
		HoldTime: 3 * time.Second})
	go func() { errs <- s.Run() }()

	// Hand-roll the silent peer: send OPEN + one KEEPALIVE, then nothing.
	opts := &codecOpts{}
	open, _ := marshalMessage(&Open{Version: Version, ASN: 65002, HoldTime: 3,
		BGPID: ip("10.0.0.2"), Caps: &Capabilities{AS4: 65002}}, opts)
	cb.Write(open)
	ka, _ := marshalMessage(&Keepalive{}, opts)
	cb.Write(ka)

	select {
	case err := <-errs:
		ne, ok := err.(*NotificationError)
		if !ok || ne.Code != ErrCodeHoldTimer {
			t.Errorf("err = %v, want hold timer expiry", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("hold timer never fired")
	}
}

func TestSessionRouteRefresh(t *testing.T) {
	sa, _ := startPair(t,
		Config{LocalASN: 65001, RemoteASN: 65002, LocalID: ip("10.0.0.1")},
		Config{LocalASN: 65002, RemoteASN: 65001, LocalID: ip("10.0.0.2")},
	)
	if err := sa.SendRouteRefresh(IPv4Unicast); err != nil {
		t.Fatal(err)
	}
}

func TestMRAIPacesReadvertisements(t *testing.T) {
	recv := make(chan *Update, 64)
	sa, sb := startPair(t,
		Config{LocalASN: 65001, RemoteASN: 65002, LocalID: ip("10.0.0.1"),
			OnUpdate: func(u *Update) { recv <- u }},
		Config{LocalASN: 65002, RemoteASN: 65001, LocalID: ip("10.0.0.2"),
			MRAI: 200 * time.Millisecond},
	)
	_ = sa
	mk := func(med uint32) *Update {
		a := &PathAttrs{Origin: OriginIGP, HasOrigin: true,
			ASPath:  []ASPathSegment{{Type: ASSequence, ASNs: []uint32{65002}}},
			NextHop: ip("10.0.0.2"), MED: med, HasMED: true}
		return &Update{Attrs: a, NLRI: []NLRI{{Prefix: pfx("203.0.113.0/24")}}}
	}
	// Flap the prefix 10 times rapidly: the first goes out immediately,
	// the rest coalesce into ONE paced re-advertisement carrying the
	// newest version.
	for i := 0; i < 10; i++ {
		if err := sb.Send(mk(uint32(i))); err != nil {
			t.Fatal(err)
		}
	}
	var got []*Update
	deadline := time.After(2 * time.Second)
collect:
	for {
		select {
		case u := <-recv:
			got = append(got, u)
			if len(got) >= 2 {
				// Allow a moment for any spurious extras.
				select {
				case u := <-recv:
					got = append(got, u)
				case <-time.After(300 * time.Millisecond):
				}
				break collect
			}
		case <-deadline:
			break collect
		}
	}
	if len(got) != 2 {
		t.Fatalf("received %d updates, want 2 (initial + one paced)", len(got))
	}
	if got[1].Attrs.MED != 9 {
		t.Errorf("paced update MED = %d, want the newest version 9", got[1].Attrs.MED)
	}
	if s := sb.MRAISuppressed.Load(); s != 9 {
		t.Errorf("suppressed = %d, want 9", s)
	}
	// A different prefix is not delayed by this one's interval.
	other := mk(0)
	other.NLRI = []NLRI{{Prefix: pfx("203.0.114.0/24")}}
	if err := sb.Send(other); err != nil {
		t.Fatal(err)
	}
	select {
	case u := <-recv:
		if u.NLRI[0].Prefix != pfx("203.0.114.0/24") {
			t.Errorf("unexpected paced leftover %v", u.NLRI)
		}
	case <-time.After(time.Second):
		t.Fatal("independent prefix delayed")
	}
}

func TestMRAIWithdrawalsImmediate(t *testing.T) {
	recv := make(chan *Update, 16)
	_, sb := startPair(t,
		Config{LocalASN: 65001, RemoteASN: 65002, LocalID: ip("10.0.0.1"),
			OnUpdate: func(u *Update) { recv <- u }},
		Config{LocalASN: 65002, RemoteASN: 65001, LocalID: ip("10.0.0.2"),
			MRAI: time.Hour},
	)
	w := &Update{Withdrawn: []NLRI{{Prefix: pfx("203.0.113.0/24")}}}
	if err := sb.Send(w); err != nil {
		t.Fatal(err)
	}
	select {
	case u := <-recv:
		if len(u.Withdrawn) != 1 {
			t.Errorf("got %v", u)
		}
	case <-time.After(time.Second):
		t.Fatal("withdrawal was paced; it must go out immediately")
	}
}

func TestSessionRejectsBadBGPID(t *testing.T) {
	ca, cb := pipe.New()
	errs := make(chan error, 1)
	s := NewSession(ca, Config{LocalASN: 65001, RemoteASN: 65002, LocalID: ip("10.0.0.1")})
	go func() { errs <- s.Run() }()
	// Hand-rolled OPEN with the illegal 0.0.0.0 identifier.
	open, _ := marshalMessage(&Open{Version: Version, ASN: 65002, HoldTime: 90,
		BGPID: ip("0.0.0.0"), Caps: &Capabilities{AS4: 65002}}, &codecOpts{})
	cb.Write(open)
	select {
	case err := <-errs:
		ne, ok := err.(*NotificationError)
		if !ok || ne.Code != ErrCodeOpen || ne.Subcode != ErrSubBadBGPID {
			t.Errorf("err = %v, want bad-BGP-ID notification", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("session accepted a zero BGP identifier")
	}
}

func TestSessionRejectsIllegalHoldTime(t *testing.T) {
	ca, cb := pipe.New()
	errs := make(chan error, 1)
	s := NewSession(ca, Config{LocalASN: 65001, RemoteASN: 65002, LocalID: ip("10.0.0.1")})
	go func() { errs <- s.Run() }()
	// Hold time 1 and 2 are illegal per RFC 4271 §4.2.
	open, _ := marshalMessage(&Open{Version: Version, ASN: 65002, HoldTime: 2,
		BGPID: ip("10.0.0.2"), Caps: &Capabilities{AS4: 65002}}, &codecOpts{})
	cb.Write(open)
	select {
	case err := <-errs:
		ne, ok := err.(*NotificationError)
		if !ok || ne.Subcode != ErrSubUnacceptableHold {
			t.Errorf("err = %v, want unacceptable hold time", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("session accepted an illegal hold time")
	}
}

func TestSessionRejectsUpdateBeforeEstablished(t *testing.T) {
	ca, cb := pipe.New()
	errs := make(chan error, 1)
	s := NewSession(ca, Config{LocalASN: 65001, RemoteASN: 65002, LocalID: ip("10.0.0.1")})
	go func() { errs <- s.Run() }()
	opts := &codecOpts{}
	open, _ := marshalMessage(&Open{Version: Version, ASN: 65002, HoldTime: 90,
		BGPID: ip("10.0.0.2"), Caps: &Capabilities{AS4: 65002}}, opts)
	cb.Write(open)
	// UPDATE straight after OPEN, skipping the keepalive: FSM error.
	u, _ := marshalMessage(&Update{Withdrawn: []NLRI{{Prefix: pfx("10.0.0.0/24")}}}, opts)
	cb.Write(u)
	select {
	case err := <-errs:
		ne, ok := err.(*NotificationError)
		if !ok || ne.Code != ErrCodeFSM {
			t.Errorf("err = %v, want FSM error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("out-of-order UPDATE accepted")
	}
}

func TestSessionRejectsSecondOpen(t *testing.T) {
	ca, cb := pipe.New()
	errs := make(chan error, 1)
	s := NewSession(ca, Config{LocalASN: 65001, RemoteASN: 65002, LocalID: ip("10.0.0.1")})
	go func() { errs <- s.Run() }()
	opts := &codecOpts{}
	open, _ := marshalMessage(&Open{Version: Version, ASN: 65002, HoldTime: 90,
		BGPID: ip("10.0.0.2"), Caps: &Capabilities{AS4: 65002}}, opts)
	cb.Write(open)
	ka, _ := marshalMessage(&Keepalive{}, opts)
	cb.Write(ka)
	cb.Write(open) // duplicate OPEN mid-session
	select {
	case err := <-errs:
		ne, ok := err.(*NotificationError)
		if !ok || ne.Code != ErrCodeFSM {
			t.Errorf("err = %v, want FSM error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("duplicate OPEN accepted")
	}
}

func TestSessionPureTwoOctet(t *testing.T) {
	// Both sides without the 4-octet-AS capability: classic 2-octet
	// session end to end.
	recv := make(chan *Update, 1)
	sa, sb := startPair(t,
		Config{LocalASN: 65001, RemoteASN: 65002, LocalID: ip("10.0.0.1"),
			DisableAS4: true, OnUpdate: func(u *Update) { recv <- u }},
		Config{LocalASN: 65002, RemoteASN: 65001, LocalID: ip("10.0.0.2"),
			DisableAS4: true},
	)
	if sa.RemoteCaps().AS4 != 0 || sb.RemoteCaps().AS4 != 0 {
		t.Fatal("AS4 capability advertised despite DisableAS4")
	}
	u := &Update{
		Attrs: &PathAttrs{Origin: OriginIGP, HasOrigin: true,
			ASPath:  []ASPathSegment{{Type: ASSequence, ASNs: []uint32{65002, 64999}}},
			NextHop: ip("10.0.0.2")},
		NLRI: []NLRI{{Prefix: pfx("203.0.113.0/24")}},
	}
	if err := sb.Send(u); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-recv:
		flat := got.Attrs.ASPathFlat()
		if len(flat) != 2 || flat[0] != 65002 || flat[1] != 64999 {
			t.Errorf("2-octet path %v", flat)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("update not delivered")
	}
}
