package bgp

import (
	"bytes"
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"
)

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }
func ip(s string) netip.Addr    { return netip.MustParseAddr(s) }

// roundTrip marshals and re-decodes a message with the given options.
func roundTrip(t *testing.T, m Message, opts *codecOpts) Message {
	t.Helper()
	b, err := marshalMessage(m, opts)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	got, err := readMessage(bytes.NewReader(b), opts)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return got
}

func TestKeepaliveRoundTrip(t *testing.T) {
	got := roundTrip(t, &Keepalive{}, &codecOpts{})
	if _, ok := got.(*Keepalive); !ok {
		t.Fatalf("got %T", got)
	}
}

func TestNotificationRoundTrip(t *testing.T) {
	m := &Notification{Code: ErrCodeCease, Subcode: CeaseAdminShutdown, Data: []byte{1, 2}}
	got := roundTrip(t, m, &codecOpts{}).(*Notification)
	if got.Code != m.Code || got.Subcode != m.Subcode || !bytes.Equal(got.Data, m.Data) {
		t.Errorf("got %+v want %+v", got, m)
	}
}

func TestRouteRefreshRoundTrip(t *testing.T) {
	m := &RouteRefresh{Family: IPv6Unicast}
	got := roundTrip(t, m, &codecOpts{}).(*RouteRefresh)
	if got.Family != IPv6Unicast {
		t.Errorf("family %+v", got.Family)
	}
}

func TestOpenRoundTripWithCapabilities(t *testing.T) {
	m := &Open{
		Version:  Version,
		ASN:      ASTrans,
		HoldTime: 90,
		BGPID:    ip("10.0.0.1"),
		Caps: &Capabilities{
			AS4:          4200000001,
			MP:           []AFISAFI{IPv4Unicast, IPv6Unicast},
			RouteRefresh: true,
			AddPath: map[AFISAFI]uint8{
				IPv4Unicast: AddPathSendReceive,
				IPv6Unicast: AddPathSend,
			},
		},
	}
	got := roundTrip(t, m, &codecOpts{}).(*Open)
	if got.ASN != ASTrans || got.HoldTime != 90 || got.BGPID != m.BGPID {
		t.Errorf("fixed fields: %+v", got)
	}
	if got.Caps.AS4 != 4200000001 {
		t.Errorf("AS4 = %d", got.Caps.AS4)
	}
	if !got.Caps.SupportsMP(IPv4Unicast) || !got.Caps.SupportsMP(IPv6Unicast) {
		t.Error("MP families lost")
	}
	if !got.Caps.RouteRefresh {
		t.Error("route refresh lost")
	}
	if got.Caps.AddPath[IPv4Unicast] != AddPathSendReceive || got.Caps.AddPath[IPv6Unicast] != AddPathSend {
		t.Errorf("addpath = %v", got.Caps.AddPath)
	}
}

func TestOpenVersionRejected(t *testing.T) {
	m := &Open{Version: 3, ASN: 1, HoldTime: 90, BGPID: ip("1.1.1.1"), Caps: &Capabilities{}}
	b, err := marshalMessage(m, &codecOpts{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = readMessage(bytes.NewReader(b), &codecOpts{})
	ne, ok := err.(*NotificationError)
	if !ok || ne.Code != ErrCodeOpen || ne.Subcode != ErrSubUnsupportedVersion {
		t.Errorf("err = %v", err)
	}
}

func baseAttrs() *PathAttrs {
	return &PathAttrs{
		Origin:    OriginIGP,
		HasOrigin: true,
		ASPath:    []ASPathSegment{{Type: ASSequence, ASNs: []uint32{65001, 65002}}},
		NextHop:   ip("192.0.2.1"),
	}
}

func TestUpdateRoundTripBasic(t *testing.T) {
	m := &Update{
		Attrs: baseAttrs(),
		NLRI:  []NLRI{{Prefix: pfx("10.1.0.0/24")}, {Prefix: pfx("10.2.0.0/23")}},
	}
	got := roundTrip(t, m, &codecOpts{as4: true}).(*Update)
	if !reflect.DeepEqual(got.NLRI, m.NLRI) {
		t.Errorf("NLRI %v want %v", got.NLRI, m.NLRI)
	}
	if !reflect.DeepEqual(got.Attrs.ASPath, m.Attrs.ASPath) {
		t.Errorf("ASPath %v", got.Attrs.ASPath)
	}
	if got.Attrs.NextHop != m.Attrs.NextHop {
		t.Errorf("NextHop %v", got.Attrs.NextHop)
	}
}

func TestUpdateRoundTripAllAttrs(t *testing.T) {
	a := baseAttrs()
	a.MED, a.HasMED = 50, true
	a.LocalPref, a.HasLocalPref = 200, true
	a.AtomicAggregate = true
	a.Aggregator = &Aggregator{ASN: 65001, Addr: ip("10.0.0.1")}
	a.Communities = []Community{NewCommunity(47065, 1), NewCommunity(65535, 666)}
	a.LargeCommunities = []LargeCommunity{{Global: 4200000000, Local1: 1, Local2: 2}}
	a.Unknown = []UnknownAttr{{Flags: FlagOptional | FlagTransitive, Type: 99, Data: []byte{0xde, 0xad}}}
	m := &Update{Attrs: a, NLRI: []NLRI{{Prefix: pfx("10.0.0.0/24")}}}

	got := roundTrip(t, m, &codecOpts{as4: true}).(*Update)
	g := got.Attrs
	if !g.HasMED || g.MED != 50 || !g.HasLocalPref || g.LocalPref != 200 {
		t.Errorf("MED/LP: %+v", g)
	}
	if !g.AtomicAggregate || g.Aggregator == nil || *g.Aggregator != *a.Aggregator {
		t.Errorf("aggregate attrs: %+v", g)
	}
	if !reflect.DeepEqual(g.Communities, a.Communities) {
		t.Errorf("communities %v", g.Communities)
	}
	if !reflect.DeepEqual(g.LargeCommunities, a.LargeCommunities) {
		t.Errorf("large communities %v", g.LargeCommunities)
	}
	if len(g.Unknown) != 1 || g.Unknown[0].Type != 99 || !bytes.Equal(g.Unknown[0].Data, []byte{0xde, 0xad}) {
		t.Errorf("unknown attrs %v", g.Unknown)
	}
	if !g.Unknown[0].Transitive() {
		t.Error("transitive flag lost")
	}
}

func TestUpdateWithdrawOnly(t *testing.T) {
	m := &Update{Withdrawn: []NLRI{{Prefix: pfx("10.1.0.0/24")}}}
	got := roundTrip(t, m, &codecOpts{}).(*Update)
	if len(got.Withdrawn) != 1 || got.Withdrawn[0].Prefix != pfx("10.1.0.0/24") {
		t.Errorf("withdrawn %v", got.Withdrawn)
	}
	if got.Attrs != nil || got.NLRI != nil {
		t.Errorf("unexpected attrs/NLRI: %+v", got)
	}
}

func TestUpdateAddPathIDs(t *testing.T) {
	opts := &codecOpts{as4: true, addPathV4: true}
	m := &Update{
		Attrs: baseAttrs(),
		NLRI:  []NLRI{{Prefix: pfx("192.168.0.0/24"), ID: 1}, {Prefix: pfx("192.168.0.0/24"), ID: 2}},
	}
	got := roundTrip(t, m, opts).(*Update)
	if !reflect.DeepEqual(got.NLRI, m.NLRI) {
		t.Errorf("ADD-PATH NLRI %v want %v", got.NLRI, m.NLRI)
	}
	// Same update without ADD-PATH loses the distinction (IDs zero) —
	// this is the visibility limitation ADD-PATH exists to fix (§2.2.2).
	noAP := roundTrip(t, &Update{Attrs: baseAttrs(), NLRI: []NLRI{{Prefix: pfx("192.168.0.0/24")}}}, &codecOpts{as4: true}).(*Update)
	if noAP.NLRI[0].ID != 0 {
		t.Error("path ID should be zero without ADD-PATH")
	}
}

func TestUpdateIPv6MPReach(t *testing.T) {
	a := baseAttrs()
	a.NextHop = netip.Addr{} // v6-only update
	a.MPNextHop = ip("2001:db8::1")
	m := &Update{
		Attrs:   a,
		MPReach: []NLRI{{Prefix: pfx("2001:db8:1000::/36")}},
	}
	got := roundTrip(t, m, &codecOpts{as4: true}).(*Update)
	if got.Attrs.MPNextHop != ip("2001:db8::1") {
		t.Errorf("MP next hop %v", got.Attrs.MPNextHop)
	}
	if len(got.MPReach) != 1 || got.MPReach[0].Prefix != pfx("2001:db8:1000::/36") {
		t.Errorf("MP NLRI %v", got.MPReach)
	}
}

func TestUpdateIPv6MPUnreach(t *testing.T) {
	m := &Update{
		Attrs:     &PathAttrs{},
		MPUnreach: []NLRI{{Prefix: pfx("2001:db8::/32")}},
	}
	got := roundTrip(t, m, &codecOpts{}).(*Update)
	if len(got.MPUnreach) != 1 || got.MPUnreach[0].Prefix != pfx("2001:db8::/32") {
		t.Errorf("MP withdraw %v", got.MPUnreach)
	}
}

func TestUpdateMissingWellKnown(t *testing.T) {
	// NLRI present but no next hop: must be rejected.
	a := &PathAttrs{Origin: OriginIGP, HasOrigin: true, ASPath: []ASPathSegment{}}
	m := &Update{Attrs: a, NLRI: []NLRI{{Prefix: pfx("10.0.0.0/24")}}}
	b, err := marshalMessage(m, &codecOpts{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = readMessage(bytes.NewReader(b), &codecOpts{})
	ne, ok := err.(*NotificationError)
	if !ok || ne.Code != ErrCodeUpdate || ne.Subcode != ErrSubMissingWellKnown {
		t.Errorf("err = %v", err)
	}
}

func TestTwoOctetASPathUsesASTrans(t *testing.T) {
	a := baseAttrs()
	a.ASPath = []ASPathSegment{{Type: ASSequence, ASNs: []uint32{4200000001, 65002}}}
	m := &Update{Attrs: a, NLRI: []NLRI{{Prefix: pfx("10.0.0.0/24")}}}

	// Encode for a 2-octet peer: AS_PATH gets AS_TRANS, AS4_PATH carries
	// the real path, and decoding merges them back (RFC 6793).
	got := roundTrip(t, m, &codecOpts{as4: false}).(*Update)
	flat := got.Attrs.ASPathFlat()
	if len(flat) != 2 || flat[0] != 4200000001 || flat[1] != 65002 {
		t.Errorf("merged path = %v, want [4200000001 65002]", flat)
	}
}

func TestASPathLongerThan255(t *testing.T) {
	asns := make([]uint32, 300)
	for i := range asns {
		asns[i] = uint32(65000 + i)
	}
	a := baseAttrs()
	a.ASPath = []ASPathSegment{{Type: ASSequence, ASNs: asns}}
	m := &Update{Attrs: a, NLRI: []NLRI{{Prefix: pfx("10.0.0.0/24")}}}
	got := roundTrip(t, m, &codecOpts{as4: true}).(*Update)
	if got.Attrs.ASPathLen() != 300 {
		t.Errorf("path length %d, want 300", got.Attrs.ASPathLen())
	}
	if !reflect.DeepEqual(got.Attrs.ASPathFlat(), asns) {
		t.Error("long path contents mangled")
	}
}

func TestASSetCountsOnce(t *testing.T) {
	a := &PathAttrs{ASPath: []ASPathSegment{
		{Type: ASSequence, ASNs: []uint32{1, 2}},
		{Type: ASSet, ASNs: []uint32{3, 4, 5}},
	}}
	if a.ASPathLen() != 3 {
		t.Errorf("ASPathLen = %d, want 3 (set counts once)", a.ASPathLen())
	}
	if a.OriginASN() != 5 {
		t.Errorf("OriginASN = %d", a.OriginASN())
	}
	if a.FirstASN() != 1 {
		t.Errorf("FirstASN = %d", a.FirstASN())
	}
}

func TestPathAttrsHelpers(t *testing.T) {
	a := baseAttrs()
	if !a.PathContains(65001) || a.PathContains(65999) {
		t.Error("PathContains")
	}
	a.PrependAS(47065, 3)
	flat := a.ASPathFlat()
	if len(flat) != 5 || flat[0] != 47065 || flat[2] != 47065 || flat[3] != 65001 {
		t.Errorf("after prepend: %v", flat)
	}
	a.AddCommunity(NewCommunity(47065, 100))
	a.AddCommunity(NewCommunity(47065, 100)) // duplicate
	if len(a.Communities) != 1 {
		t.Errorf("communities: %v", a.Communities)
	}
	c := NewCommunity(47065, 100)
	if c.ASN() != 47065 || c.Value() != 100 || c.String() != "47065:100" {
		t.Errorf("community accessors: %v", c)
	}
}

func TestPrependToEmptyAndSetLeading(t *testing.T) {
	var a PathAttrs
	a.PrependAS(65001, 2)
	if got := a.ASPathFlat(); len(got) != 2 {
		t.Errorf("prepend to empty: %v", got)
	}
	b := PathAttrs{ASPath: []ASPathSegment{{Type: ASSet, ASNs: []uint32{9}}}}
	b.PrependAS(65001, 1)
	if b.ASPath[0].Type != ASSequence || len(b.ASPath) != 2 {
		t.Errorf("prepend before set: %+v", b.ASPath)
	}
}

func TestAttrsClone(t *testing.T) {
	a := baseAttrs()
	a.Communities = []Community{1}
	a.Unknown = []UnknownAttr{{Type: 50, Data: []byte{1}}}
	c := a.Clone()
	c.ASPath[0].ASNs[0] = 99
	c.Communities[0] = 2
	c.Unknown[0].Data[0] = 9
	c.NextHop = ip("127.65.0.1")
	if a.ASPath[0].ASNs[0] != 65001 || a.Communities[0] != 1 || a.Unknown[0].Data[0] != 1 {
		t.Error("Clone shares state with original")
	}
	if a.NextHop != ip("192.0.2.1") {
		t.Error("Clone shares NextHop")
	}
}

func TestNLRIPropertyRoundTrip(t *testing.T) {
	fn := func(addr [4]byte, bits uint8, id uint32, addPath bool) bool {
		b := int(bits % 33)
		p := netip.PrefixFrom(netip.AddrFrom4(addr), b).Masked()
		n := NLRI{Prefix: p}
		if addPath {
			n.ID = PathID(id)
		}
		wire := appendNLRI(nil, n, addPath)
		got, used, err := decodeNLRI(wire, addPath, false)
		return err == nil && used == len(wire) && got == n
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestNLRIv6PropertyRoundTrip(t *testing.T) {
	fn := func(addr [16]byte, bits uint8, id uint32) bool {
		b := int(bits % 129)
		p := netip.PrefixFrom(netip.AddrFrom16(addr), b).Masked()
		n := NLRI{Prefix: p, ID: PathID(id)}
		wire := appendNLRI(nil, n, true)
		got, used, err := decodeNLRI(wire, true, true)
		return err == nil && used == len(wire) && got == n
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestUpdatePropertyRoundTrip(t *testing.T) {
	fn := func(asns []uint32, med uint32, hasMED bool, comms []uint32, nh [4]byte, prefixes [][4]byte) bool {
		if len(asns) > 100 {
			asns = asns[:100]
		}
		if len(prefixes) > 50 {
			prefixes = prefixes[:50]
		}
		if len(prefixes) == 0 {
			return true
		}
		a := &PathAttrs{
			Origin: OriginIncomplete, HasOrigin: true,
			ASPath:  []ASPathSegment{{Type: ASSequence, ASNs: asns}},
			NextHop: netip.AddrFrom4(nh),
			MED:     med, HasMED: hasMED,
		}
		for _, c := range comms {
			a.Communities = append(a.Communities, Community(c))
		}
		var nlri []NLRI
		for i, p := range prefixes {
			nlri = append(nlri, NLRI{Prefix: netip.PrefixFrom(netip.AddrFrom4(p), (i%33+24)%33).Masked()})
		}
		m := &Update{Attrs: a, NLRI: nlri}
		opts := &codecOpts{as4: true}
		b, err := marshalMessage(m, opts)
		if err != nil {
			return true // oversized message: marshal correctly refuses
		}
		got, err := readMessage(bytes.NewReader(b), opts)
		if err != nil {
			return false
		}
		gu := got.(*Update)
		if !reflect.DeepEqual(gu.NLRI, m.NLRI) {
			return false
		}
		if hasMED != gu.Attrs.HasMED || (hasMED && gu.Attrs.MED != med) {
			return false
		}
		return reflect.DeepEqual(gu.Attrs.ASPathFlat(), a.ASPathFlat())
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMessageTooLargeRejected(t *testing.T) {
	var nlri []NLRI
	for i := 0; i < 2000; i++ {
		nlri = append(nlri, NLRI{Prefix: netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i >> 8), byte(i), 0}), 30)})
	}
	m := &Update{Attrs: baseAttrs(), NLRI: nlri}
	if _, err := marshalMessage(m, &codecOpts{}); err == nil {
		t.Error("oversized message should fail to marshal")
	}
}

func TestBadMarkerRejected(t *testing.T) {
	b, err := marshalMessage(&Keepalive{}, &codecOpts{})
	if err != nil {
		t.Fatal(err)
	}
	b[0] = 0
	if _, err := readMessage(bytes.NewReader(b), &codecOpts{}); err == nil {
		t.Error("bad marker accepted")
	}
}

func TestDuplicateAttributeRejected(t *testing.T) {
	// Two ORIGIN attributes.
	attrs := appendAttrHeader(nil, FlagTransitive, AttrOrigin, 1)
	attrs = append(attrs, OriginIGP)
	attrs = appendAttrHeader(attrs, FlagTransitive, AttrOrigin, 1)
	attrs = append(attrs, OriginEGP)
	body := []byte{0, 0, 0, byte(len(attrs))}
	body = append(body, attrs...)
	_, err := decodeBody(MsgUpdate, body, &codecOpts{})
	if err == nil {
		t.Error("duplicate attribute accepted")
	}
}
