package bgp

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"sort"
	"strings"
)

// Path attribute type codes.
const (
	AttrOrigin          = 1
	AttrASPath          = 2
	AttrNextHop         = 3
	AttrMED             = 4
	AttrLocalPref       = 5
	AttrAtomicAggregate = 6
	AttrAggregator      = 7
	AttrCommunities     = 8  // RFC 1997
	AttrMPReach         = 14 // RFC 4760
	AttrMPUnreach       = 15 // RFC 4760
	AttrAS4Path         = 17 // RFC 6793
	AttrAS4Aggregator   = 18 // RFC 6793
	AttrLargeCommunity  = 32 // RFC 8092
)

// Attribute flag bits.
const (
	FlagOptional   = 0x80
	FlagTransitive = 0x40
	FlagPartial    = 0x20
	FlagExtLen     = 0x10
)

// Origin values.
const (
	OriginIGP        uint8 = 0
	OriginEGP        uint8 = 1
	OriginIncomplete uint8 = 2
)

// AS path segment types.
const (
	ASSet      uint8 = 1
	ASSequence uint8 = 2
)

// ASPathSegment is one segment of an AS_PATH attribute.
type ASPathSegment struct {
	Type uint8 // ASSet or ASSequence
	ASNs []uint32
}

// Community is an RFC 1997 community value, conventionally written
// "ASN:value".
type Community uint32

// NewCommunity builds a community from its conventional two 16-bit halves.
func NewCommunity(asn, value uint16) Community {
	return Community(uint32(asn)<<16 | uint32(value))
}

// ASN returns the upper half of the community.
func (c Community) ASN() uint16 { return uint16(c >> 16) }

// Value returns the lower half of the community.
func (c Community) Value() uint16 { return uint16(c) }

// String formats the community as "ASN:value".
func (c Community) String() string { return fmt.Sprintf("%d:%d", c.ASN(), c.Value()) }

// LargeCommunity is an RFC 8092 large community.
type LargeCommunity struct {
	Global uint32
	Local1 uint32
	Local2 uint32
}

// String formats the large community as "global:local1:local2".
func (c LargeCommunity) String() string {
	return fmt.Sprintf("%d:%d:%d", c.Global, c.Local1, c.Local2)
}

// Aggregator is the AGGREGATOR attribute value.
type Aggregator struct {
	ASN  uint32
	Addr netip.Addr
}

// UnknownAttr preserves an attribute this implementation does not
// interpret, so transitive attributes propagate per RFC 4271 §5 and so the
// enforcement engine can filter announcements carrying non-standard
// attributes (paper §4.7).
type UnknownAttr struct {
	Flags uint8
	Type  uint8
	Data  []byte
}

// Transitive reports whether the unknown attribute carries the transitive
// flag.
func (u UnknownAttr) Transitive() bool { return u.Flags&FlagTransitive != 0 }

// PathAttrs is the decoded attribute set of an UPDATE message.
//
// The zero value is an empty attribute set. HasMED, HasLocalPref
// distinguish absent attributes from zero values.
type PathAttrs struct {
	Origin           uint8
	HasOrigin        bool
	ASPath           []ASPathSegment
	NextHop          netip.Addr // invalid Addr when absent (e.g. pure withdraw)
	MED              uint32
	HasMED           bool
	LocalPref        uint32
	HasLocalPref     bool
	AtomicAggregate  bool
	Aggregator       *Aggregator
	Communities      []Community
	LargeCommunities []LargeCommunity

	// MPNextHop is the next hop carried in MP_REACH_NLRI for IPv6 routes.
	MPNextHop netip.Addr

	// Unknown holds attributes not interpreted here, in arrival order.
	Unknown []UnknownAttr
}

// Clone returns a deep copy of the attribute set, so callers can modify
// attributes (e.g. rewrite the next hop) without affecting shared state.
func (a *PathAttrs) Clone() *PathAttrs {
	c := *a
	c.ASPath = make([]ASPathSegment, len(a.ASPath))
	for i, seg := range a.ASPath {
		c.ASPath[i] = ASPathSegment{Type: seg.Type, ASNs: append([]uint32(nil), seg.ASNs...)}
	}
	c.Communities = append([]Community(nil), a.Communities...)
	c.LargeCommunities = append([]LargeCommunity(nil), a.LargeCommunities...)
	c.Unknown = make([]UnknownAttr, len(a.Unknown))
	for i, u := range a.Unknown {
		c.Unknown[i] = UnknownAttr{Flags: u.Flags, Type: u.Type, Data: append([]byte(nil), u.Data...)}
	}
	if a.Aggregator != nil {
		agg := *a.Aggregator
		c.Aggregator = &agg
	}
	return &c
}

// ASPathFlat returns the concatenated AS numbers of all AS_SEQUENCE and
// AS_SET segments, in order. Used for loop detection and path display.
func (a *PathAttrs) ASPathFlat() []uint32 {
	var out []uint32
	for _, seg := range a.ASPath {
		out = append(out, seg.ASNs...)
	}
	return out
}

// ASPathLen returns the AS path length used by the decision process: each
// AS in an AS_SEQUENCE counts 1, each AS_SET counts 1 total (RFC 4271
// §9.1.2.2).
func (a *PathAttrs) ASPathLen() int {
	n := 0
	for _, seg := range a.ASPath {
		if seg.Type == ASSet {
			n++
		} else {
			n += len(seg.ASNs)
		}
	}
	return n
}

// OriginASN returns the rightmost AS of the path (the route's originator),
// or 0 for an empty path.
func (a *PathAttrs) OriginASN() uint32 {
	for i := len(a.ASPath) - 1; i >= 0; i-- {
		seg := a.ASPath[i]
		if len(seg.ASNs) > 0 {
			return seg.ASNs[len(seg.ASNs)-1]
		}
	}
	return 0
}

// FirstASN returns the leftmost AS of the path (the neighbor that sent the
// route), or 0 for an empty path.
func (a *PathAttrs) FirstASN() uint32 {
	for _, seg := range a.ASPath {
		if len(seg.ASNs) > 0 {
			return seg.ASNs[0]
		}
	}
	return 0
}

// PathContains reports whether asn appears anywhere in the AS path. BGP
// speakers reject routes containing their own ASN (loop prevention), which
// is what AS-path poisoning exploits (paper §7.1).
func (a *PathAttrs) PathContains(asn uint32) bool {
	for _, seg := range a.ASPath {
		for _, as := range seg.ASNs {
			if as == asn {
				return true
			}
		}
	}
	return false
}

// PrependAS prepends asn count times to the AS path, creating a leading
// AS_SEQUENCE segment if needed.
func (a *PathAttrs) PrependAS(asn uint32, count int) {
	if count <= 0 {
		return
	}
	pre := make([]uint32, count)
	for i := range pre {
		pre[i] = asn
	}
	if len(a.ASPath) > 0 && a.ASPath[0].Type == ASSequence {
		a.ASPath[0].ASNs = append(pre, a.ASPath[0].ASNs...)
		return
	}
	a.ASPath = append([]ASPathSegment{{Type: ASSequence, ASNs: pre}}, a.ASPath...)
}

// HasCommunity reports whether the community set contains c.
func (a *PathAttrs) HasCommunity(c Community) bool {
	for _, have := range a.Communities {
		if have == c {
			return true
		}
	}
	return false
}

// AddCommunity appends c if not already present.
func (a *PathAttrs) AddCommunity(c Community) {
	if !a.HasCommunity(c) {
		a.Communities = append(a.Communities, c)
	}
}

// String renders the attributes compactly for logs.
func (a *PathAttrs) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "path=%v", a.ASPathFlat())
	if a.NextHop.IsValid() {
		fmt.Fprintf(&b, " nh=%s", a.NextHop)
	}
	if a.HasLocalPref {
		fmt.Fprintf(&b, " lp=%d", a.LocalPref)
	}
	if a.HasMED {
		fmt.Fprintf(&b, " med=%d", a.MED)
	}
	if len(a.Communities) > 0 {
		cs := make([]string, len(a.Communities))
		for i, c := range a.Communities {
			cs[i] = c.String()
		}
		sort.Strings(cs)
		fmt.Fprintf(&b, " comm=%s", strings.Join(cs, ","))
	}
	return b.String()
}

// appendAttrHeader appends flags, type, and a length of the proper width.
func appendAttrHeader(b []byte, flags, typ uint8, length int) []byte {
	if length > 255 {
		flags |= FlagExtLen
		return append(b, flags, typ, byte(length>>8), byte(length))
	}
	return append(b, flags, typ, byte(length))
}

// marshalASPath encodes the AS_PATH in 4-octet (as4=true) or 2-octet form.
// In 2-octet form, 4-octet ASNs are replaced by AS_TRANS (RFC 6793).
func marshalASPath(segs []ASPathSegment, as4 bool) []byte {
	var b []byte
	for _, seg := range segs {
		asns := seg.ASNs
		for len(asns) > 0 {
			chunk := asns
			if len(chunk) > 255 {
				chunk = chunk[:255]
			}
			asns = asns[len(chunk):]
			b = append(b, seg.Type, byte(len(chunk)))
			for _, as := range chunk {
				if as4 {
					b = binary.BigEndian.AppendUint32(b, as)
				} else {
					if as > 0xffff {
						as = ASTrans
					}
					b = binary.BigEndian.AppendUint16(b, uint16(as))
				}
			}
		}
		if len(seg.ASNs) == 0 {
			b = append(b, seg.Type, 0)
		}
	}
	return b
}

// parseASPath decodes an AS_PATH or AS4_PATH attribute body.
func parseASPath(data []byte, as4 bool) ([]ASPathSegment, error) {
	width := 2
	if as4 {
		width = 4
	}
	var segs []ASPathSegment
	for len(data) > 0 {
		if len(data) < 2 {
			return nil, notif(ErrCodeUpdate, ErrSubMalformedASPath)
		}
		typ, count := data[0], int(data[1])
		if typ != ASSet && typ != ASSequence {
			return nil, notif(ErrCodeUpdate, ErrSubMalformedASPath)
		}
		data = data[2:]
		if len(data) < count*width {
			return nil, notif(ErrCodeUpdate, ErrSubMalformedASPath)
		}
		seg := ASPathSegment{Type: typ, ASNs: make([]uint32, count)}
		for i := 0; i < count; i++ {
			if as4 {
				seg.ASNs[i] = binary.BigEndian.Uint32(data[i*4:])
			} else {
				seg.ASNs[i] = uint32(binary.BigEndian.Uint16(data[i*2:]))
			}
		}
		data = data[count*width:]
		segs = append(segs, seg)
	}
	return segs, nil
}

// marshalAttrs encodes the attribute set into a fresh slice; see
// appendAttrs.
func marshalAttrs(a *PathAttrs, as4 bool, mpNLRI []NLRI, mpWithdraw []NLRI, addPath bool) []byte {
	return appendAttrs(nil, a, as4, mpNLRI, mpWithdraw, addPath)
}

// appendAttrs appends the encoded attribute set to b in place (the hot
// path encodes straight into a pooled frame buffer). as4 selects
// 4-octet AS_PATH encoding (negotiated via capability). mpNLRI, when
// non-empty, is encoded into an MP_REACH_NLRI attribute for IPv6 along
// with MPNextHop; addPath controls path-ID encoding inside MP_REACH.
func appendAttrs(b []byte, a *PathAttrs, as4 bool, mpNLRI []NLRI, mpWithdraw []NLRI, addPath bool) []byte {
	if a == nil {
		a = &PathAttrs{}
	}
	if a.HasOrigin {
		b = appendAttrHeader(b, FlagTransitive, AttrOrigin, 1)
		b = append(b, a.Origin)
	}
	if a.ASPath != nil || a.HasOrigin {
		body := marshalASPath(a.ASPath, as4)
		b = appendAttrHeader(b, FlagTransitive, AttrASPath, len(body))
		b = append(b, body...)
		if !as4 && pathHas4Octet(a.ASPath) {
			body4 := marshalASPath(a.ASPath, true)
			b = appendAttrHeader(b, FlagOptional|FlagTransitive, AttrAS4Path, len(body4))
			b = append(b, body4...)
		}
	}
	if a.NextHop.IsValid() && a.NextHop.Is4() {
		b = appendAttrHeader(b, FlagTransitive, AttrNextHop, 4)
		nh := a.NextHop.As4()
		b = append(b, nh[:]...)
	}
	if a.HasMED {
		b = appendAttrHeader(b, FlagOptional, AttrMED, 4)
		b = binary.BigEndian.AppendUint32(b, a.MED)
	}
	if a.HasLocalPref {
		b = appendAttrHeader(b, FlagTransitive, AttrLocalPref, 4)
		b = binary.BigEndian.AppendUint32(b, a.LocalPref)
	}
	if a.AtomicAggregate {
		b = appendAttrHeader(b, FlagTransitive, AttrAtomicAggregate, 0)
	}
	if a.Aggregator != nil {
		addr := a.Aggregator.Addr.As4()
		if as4 {
			b = appendAttrHeader(b, FlagOptional|FlagTransitive, AttrAggregator, 8)
			b = binary.BigEndian.AppendUint32(b, a.Aggregator.ASN)
		} else {
			b = appendAttrHeader(b, FlagOptional|FlagTransitive, AttrAggregator, 6)
			asn := a.Aggregator.ASN
			if asn > 0xffff {
				asn = ASTrans
			}
			b = binary.BigEndian.AppendUint16(b, uint16(asn))
		}
		b = append(b, addr[:]...)
	}
	if len(a.Communities) > 0 {
		b = appendAttrHeader(b, FlagOptional|FlagTransitive, AttrCommunities, 4*len(a.Communities))
		for _, c := range a.Communities {
			b = binary.BigEndian.AppendUint32(b, uint32(c))
		}
	}
	if len(a.LargeCommunities) > 0 {
		b = appendAttrHeader(b, FlagOptional|FlagTransitive, AttrLargeCommunity, 12*len(a.LargeCommunities))
		for _, c := range a.LargeCommunities {
			b = binary.BigEndian.AppendUint32(b, c.Global)
			b = binary.BigEndian.AppendUint32(b, c.Local1)
			b = binary.BigEndian.AppendUint32(b, c.Local2)
		}
	}
	if len(mpNLRI) > 0 {
		body := marshalMPReach(a.MPNextHop, mpNLRI, addPath)
		b = appendAttrHeader(b, FlagOptional, AttrMPReach, len(body))
		b = append(b, body...)
	}
	if len(mpWithdraw) > 0 {
		body := marshalMPUnreach(mpWithdraw, addPath)
		b = appendAttrHeader(b, FlagOptional, AttrMPUnreach, len(body))
		b = append(b, body...)
	}
	for _, u := range a.Unknown {
		b = appendAttrHeader(b, u.Flags&^FlagExtLen, u.Type, len(u.Data))
		b = append(b, u.Data...)
	}
	return b
}

func pathHas4Octet(segs []ASPathSegment) bool {
	for _, seg := range segs {
		for _, as := range seg.ASNs {
			if as > 0xffff {
				return true
			}
		}
	}
	return false
}

func marshalMPReach(nextHop netip.Addr, nlri []NLRI, addPath bool) []byte {
	b := binary.BigEndian.AppendUint16(nil, AFIIPv6)
	b = append(b, SAFIUnicast)
	if nextHop.IsValid() && nextHop.Is6() {
		nh := nextHop.As16()
		b = append(b, 16)
		b = append(b, nh[:]...)
	} else {
		b = append(b, 0)
	}
	b = append(b, 0) // reserved
	for _, n := range nlri {
		b = appendNLRI(b, n, addPath)
	}
	return b
}

func marshalMPUnreach(nlri []NLRI, addPath bool) []byte {
	b := binary.BigEndian.AppendUint16(nil, AFIIPv6)
	b = append(b, SAFIUnicast)
	for _, n := range nlri {
		b = appendNLRI(b, n, addPath)
	}
	return b
}

// parseAttrs decodes the path attribute block of an UPDATE. as4 selects
// 4-octet AS_PATH decoding; addPath controls MP NLRI path-ID decoding.
// It returns the attributes plus any IPv6 NLRI / withdrawals carried in
// MP_REACH/MP_UNREACH.
func parseAttrs(data []byte, as4, addPath bool) (*PathAttrs, []NLRI, []NLRI, error) {
	a := &PathAttrs{}
	var mpReach, mpUnreach []NLRI
	var as4Path []ASPathSegment
	seen := make(map[uint8]bool)
	for len(data) > 0 {
		if len(data) < 3 {
			return nil, nil, nil, notif(ErrCodeUpdate, ErrSubMalformedAttrs)
		}
		flags, typ := data[0], data[1]
		var alen, off int
		if flags&FlagExtLen != 0 {
			if len(data) < 4 {
				return nil, nil, nil, notif(ErrCodeUpdate, ErrSubMalformedAttrs)
			}
			alen = int(binary.BigEndian.Uint16(data[2:4]))
			off = 4
		} else {
			alen = int(data[2])
			off = 3
		}
		if len(data) < off+alen {
			return nil, nil, nil, notif(ErrCodeUpdate, ErrSubAttrLength)
		}
		body := data[off : off+alen]
		data = data[off+alen:]
		if seen[typ] {
			return nil, nil, nil, notif(ErrCodeUpdate, ErrSubMalformedAttrs)
		}
		seen[typ] = true

		switch typ {
		case AttrOrigin:
			if alen != 1 {
				return nil, nil, nil, notif(ErrCodeUpdate, ErrSubAttrLength)
			}
			if body[0] > OriginIncomplete {
				return nil, nil, nil, notif(ErrCodeUpdate, ErrSubInvalidOrigin)
			}
			a.Origin, a.HasOrigin = body[0], true
		case AttrASPath:
			segs, err := parseASPath(body, as4)
			if err != nil {
				return nil, nil, nil, err
			}
			a.ASPath = segs
			if a.ASPath == nil {
				a.ASPath = []ASPathSegment{}
			}
		case AttrAS4Path:
			segs, err := parseASPath(body, true)
			if err != nil {
				return nil, nil, nil, err
			}
			as4Path = segs
		case AttrNextHop:
			if alen != 4 {
				return nil, nil, nil, notif(ErrCodeUpdate, ErrSubInvalidNextHop)
			}
			a.NextHop = netip.AddrFrom4([4]byte(body))
		case AttrMED:
			if alen != 4 {
				return nil, nil, nil, notif(ErrCodeUpdate, ErrSubAttrLength)
			}
			a.MED, a.HasMED = binary.BigEndian.Uint32(body), true
		case AttrLocalPref:
			if alen != 4 {
				return nil, nil, nil, notif(ErrCodeUpdate, ErrSubAttrLength)
			}
			a.LocalPref, a.HasLocalPref = binary.BigEndian.Uint32(body), true
		case AttrAtomicAggregate:
			a.AtomicAggregate = true
		case AttrAggregator:
			agg := &Aggregator{}
			switch alen {
			case 8:
				agg.ASN = binary.BigEndian.Uint32(body)
				agg.Addr = netip.AddrFrom4([4]byte(body[4:8]))
			case 6:
				agg.ASN = uint32(binary.BigEndian.Uint16(body))
				agg.Addr = netip.AddrFrom4([4]byte(body[2:6]))
			default:
				return nil, nil, nil, notif(ErrCodeUpdate, ErrSubAttrLength)
			}
			a.Aggregator = agg
		case AttrCommunities:
			if alen%4 != 0 {
				return nil, nil, nil, notif(ErrCodeUpdate, ErrSubAttrLength)
			}
			for i := 0; i < alen; i += 4 {
				a.Communities = append(a.Communities, Community(binary.BigEndian.Uint32(body[i:])))
			}
		case AttrLargeCommunity:
			if alen%12 != 0 {
				return nil, nil, nil, notif(ErrCodeUpdate, ErrSubAttrLength)
			}
			for i := 0; i < alen; i += 12 {
				a.LargeCommunities = append(a.LargeCommunities, LargeCommunity{
					Global: binary.BigEndian.Uint32(body[i:]),
					Local1: binary.BigEndian.Uint32(body[i+4:]),
					Local2: binary.BigEndian.Uint32(body[i+8:]),
				})
			}
		case AttrMPReach:
			nh, nlri, err := parseMPReach(body, addPath)
			if err != nil {
				return nil, nil, nil, err
			}
			a.MPNextHop = nh
			mpReach = nlri
		case AttrMPUnreach:
			nlri, err := parseMPUnreach(body, addPath)
			if err != nil {
				return nil, nil, nil, err
			}
			mpUnreach = nlri
		default:
			if flags&FlagOptional == 0 {
				// Unrecognized well-known attribute.
				return nil, nil, nil, notif(ErrCodeUpdate, ErrSubMalformedAttrs)
			}
			a.Unknown = append(a.Unknown, UnknownAttr{
				Flags: flags, Type: typ, Data: append([]byte(nil), body...),
			})
		}
	}
	// RFC 6793: merge AS4_PATH into AS_PATH when the session is 2-octet.
	if !as4 && as4Path != nil {
		a.ASPath = mergeAS4Path(a.ASPath, as4Path)
	}
	return a, mpReach, mpUnreach, nil
}

// mergeAS4Path reconstructs the true path from a 2-octet AS_PATH and an
// AS4_PATH per RFC 6793 §4.2.3: if AS_PATH is at least as long as
// AS4_PATH, the leading (len(ASPath)-len(AS4Path)) ASes of AS_PATH are
// prepended to AS4_PATH.
func mergeAS4Path(asPath, as4Path []ASPathSegment) []ASPathSegment {
	count := func(segs []ASPathSegment) int {
		n := 0
		for _, s := range segs {
			n += len(s.ASNs)
		}
		return n
	}
	nOld, nNew := count(asPath), count(as4Path)
	if nNew > nOld {
		return asPath // AS4_PATH inconsistent: ignore it
	}
	lead := nOld - nNew
	merged := make([]ASPathSegment, 0, len(as4Path)+1)
	if lead > 0 {
		var leadASNs []uint32
	outer:
		for _, seg := range asPath {
			for _, as := range seg.ASNs {
				leadASNs = append(leadASNs, as)
				if len(leadASNs) == lead {
					break outer
				}
			}
		}
		merged = append(merged, ASPathSegment{Type: ASSequence, ASNs: leadASNs})
	}
	for _, seg := range as4Path {
		merged = append(merged, ASPathSegment{Type: seg.Type, ASNs: append([]uint32(nil), seg.ASNs...)})
	}
	return merged
}

func parseMPReach(body []byte, addPath bool) (netip.Addr, []NLRI, error) {
	if len(body) < 5 {
		return netip.Addr{}, nil, notif(ErrCodeUpdate, ErrSubMalformedAttrs)
	}
	afi := binary.BigEndian.Uint16(body)
	safi := body[2]
	if afi != AFIIPv6 || safi != SAFIUnicast {
		return netip.Addr{}, nil, fmt.Errorf("bgp: unsupported AFI/SAFI %d/%d", afi, safi)
	}
	nhLen := int(body[3])
	if len(body) < 4+nhLen+1 {
		return netip.Addr{}, nil, notif(ErrCodeUpdate, ErrSubMalformedAttrs)
	}
	var nh netip.Addr
	if nhLen >= 16 {
		nh = netip.AddrFrom16([16]byte(body[4 : 4+16]))
	}
	rest := body[4+nhLen+1:] // skip reserved byte
	nlri, err := decodeNLRIList(rest, addPath, true)
	return nh, nlri, err
}

func parseMPUnreach(body []byte, addPath bool) ([]NLRI, error) {
	if len(body) < 3 {
		return nil, notif(ErrCodeUpdate, ErrSubMalformedAttrs)
	}
	afi := binary.BigEndian.Uint16(body)
	safi := body[2]
	if afi != AFIIPv6 || safi != SAFIUnicast {
		return nil, fmt.Errorf("bgp: unsupported AFI/SAFI %d/%d", afi, safi)
	}
	return decodeNLRIList(body[3:], addPath, true)
}
