package bgp

import (
	"bytes"
	"testing"
)

// FuzzReadMessage exercises the full message reader with arbitrary
// bytes. Run continuously with `go test -fuzz=FuzzReadMessage`; as a
// plain test it replays the seed corpus.
func FuzzReadMessage(f *testing.F) {
	// Seeds: every message type, valid and slightly damaged.
	opts := &codecOpts{as4: true, addPathV4: true}
	seed := func(m Message) {
		b, err := marshalMessage(m, opts)
		if err == nil {
			f.Add(b)
		}
	}
	seed(&Keepalive{})
	seed(&Notification{Code: ErrCodeCease, Subcode: CeaseAdminShutdown})
	seed(&RouteRefresh{Family: IPv6Unicast})
	seed(&Open{Version: Version, ASN: ASTrans, HoldTime: 90, BGPID: ip("10.0.0.1"),
		Caps: &Capabilities{AS4: 4200000001, MP: []AFISAFI{IPv4Unicast, IPv6Unicast},
			RouteRefresh: true, AddPath: map[AFISAFI]uint8{IPv4Unicast: AddPathSendReceive}}})
	seed(&Update{Attrs: &PathAttrs{Origin: OriginIGP, HasOrigin: true,
		ASPath:      []ASPathSegment{{Type: ASSequence, ASNs: []uint32{65001, 4200000001}}},
		NextHop:     ip("192.0.2.1"),
		Communities: []Community{NewCommunity(47065, 1)}},
		NLRI: []NLRI{{Prefix: pfx("10.0.0.0/24"), ID: 7}}})

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, o := range []*codecOpts{{}, {as4: true}, {as4: true, addPathV4: true, addPathV6: true}} {
			msg, err := readMessage(bytes.NewReader(data), o)
			if err != nil {
				continue
			}
			// Anything that decodes must re-encode without panicking.
			if _, err := marshalMessage(msg, o); err != nil {
				// Oversized re-encodings are legal failures.
				continue
			}
		}
	})
}

// FuzzParseAttrs targets the attribute block parser directly.
func FuzzParseAttrs(f *testing.F) {
	a := baseAttrs()
	a.Communities = []Community{NewCommunity(47065, 1)}
	a.LargeCommunities = []LargeCommunity{{Global: 4200000000, Local1: 1, Local2: 2}}
	a.Unknown = []UnknownAttr{{Flags: FlagOptional | FlagTransitive, Type: 99, Data: []byte{1, 2}}}
	f.Add(marshalAttrs(a, true, nil, nil, false), true, false)
	f.Add(marshalAttrs(a, false, nil, nil, false), false, false)
	f.Add(marshalAttrs(a, true, []NLRI{{Prefix: pfx("2001:db8::/32"), ID: 3}}, nil, true), true, true)

	f.Fuzz(func(t *testing.T, data []byte, as4, addPath bool) {
		attrs, _, _, err := parseAttrs(data, as4, addPath)
		if err != nil || attrs == nil {
			return
		}
		// Round-trippable invariants: flattening and cloning never panic
		// and agree with each other.
		flat := attrs.ASPathFlat()
		clone := attrs.Clone()
		if len(clone.ASPathFlat()) != len(flat) {
			t.Fatalf("clone changed path length")
		}
	})
}
