// Package bgp implements the BGP-4 protocol (RFC 4271) as used by vBGP:
// message encoding and decoding, path attributes, capability negotiation
// (RFC 5492), 4-octet AS numbers (RFC 6793), communities (RFC 1997) and
// large communities (RFC 8092), multiprotocol reachability for IPv6
// (RFC 4760), ADD-PATH (RFC 7911), route refresh (RFC 2918), the session
// finite state machine (RFC 4271 §8), and a Speaker that runs sessions
// over arbitrary net.Conn transports.
package bgp

import (
	"errors"
	"fmt"
)

// Message type codes (RFC 4271 §4.1).
const (
	MsgOpen         = 1
	MsgUpdate       = 2
	MsgNotification = 3
	MsgKeepalive    = 4
	MsgRouteRefresh = 5 // RFC 2918
)

// Protocol constants.
const (
	// Version is the only supported BGP version.
	Version = 4
	// HeaderLen is the fixed message header length.
	HeaderLen = 19
	// MaxMessageLen is the largest legal BGP message (RFC 4271 §4.1).
	MaxMessageLen = 4096
	// ASTrans is the 2-octet placeholder for 4-octet AS numbers
	// (RFC 6793).
	ASTrans = 23456
	// DefaultHoldTime is the hold time proposed in OPEN messages.
	DefaultHoldTime = 90
)

// AFI/SAFI values used by the multiprotocol extensions.
const (
	AFIIPv4 uint16 = 1
	AFIIPv6 uint16 = 2

	SAFIUnicast uint8 = 1
)

// ErrTruncated reports a message or attribute shorter than its declared
// length.
var ErrTruncated = errors.New("bgp: truncated message")

// NotificationError carries the error code/subcode of a NOTIFICATION that
// should be (or was) sent for a protocol error.
type NotificationError struct {
	Code    uint8
	Subcode uint8
	Data    []byte
}

// Notification error codes (RFC 4271 §4.5).
const (
	ErrCodeHeader    = 1
	ErrCodeOpen      = 2
	ErrCodeUpdate    = 3
	ErrCodeHoldTimer = 4
	ErrCodeFSM       = 5
	ErrCodeCease     = 6
)

// Selected subcodes.
const (
	// Header subcodes.
	ErrSubBadLength = 2
	ErrSubBadType   = 3
	// OPEN subcodes.
	ErrSubUnsupportedVersion = 1
	ErrSubBadPeerAS          = 2
	ErrSubBadBGPID           = 3
	ErrSubUnacceptableHold   = 6
	// UPDATE subcodes.
	ErrSubMalformedAttrs   = 1
	ErrSubMissingWellKnown = 3
	ErrSubAttrFlags        = 4
	ErrSubAttrLength       = 5
	ErrSubInvalidOrigin    = 6
	ErrSubInvalidNextHop   = 8
	ErrSubMalformedASPath  = 11
	// Cease subcodes (RFC 4486).
	CeaseAdminShutdown   = 2
	CeaseConnectionLimit = 8 // used when enforcement fails closed
)

// Error implements the error interface.
func (e *NotificationError) Error() string {
	return fmt.Sprintf("bgp: notification code=%d subcode=%d", e.Code, e.Subcode)
}

// notif builds a NotificationError.
func notif(code, subcode uint8, data ...byte) *NotificationError {
	return &NotificationError{Code: code, Subcode: subcode, Data: data}
}

// marker is the all-ones 16-byte header marker.
var marker = [16]byte{
	0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
	0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
}
