package bgp

import (
	"encoding/binary"
	"fmt"
	"time"
)

// Capability codes (RFC 5492 registry).
const (
	CapMultiprotocol   = 1  // RFC 4760
	CapRouteRefresh    = 2  // RFC 2918
	CapGracefulRestart = 64 // RFC 4724
	CapAS4             = 65 // RFC 6793
	CapAddPath         = 69 // RFC 7911
)

// Graceful restart flag bits (RFC 4724 §3).
const (
	grRestartFlag = 0x8000 // R bit: speaker has restarted
	grForwardFlag = 0x80   // per-family F bit: forwarding state preserved
	grRestartMask = 0x0fff // 12-bit restart time in seconds
)

// GRFamily is one address family advertised in the graceful restart
// capability.
type GRFamily struct {
	Family AFISAFI
	// Forwarding is the F bit: forwarding state for this family was
	// preserved across the restart.
	Forwarding bool
}

// GracefulRestart is the RFC 4724 capability: the peer will retain this
// speaker's routes for Time after the session drops, marking them stale
// until re-advertisement ends with an End-of-RIB marker.
type GracefulRestart struct {
	// Restarting is the R bit: this session is the re-establishment
	// after a restart.
	Restarting bool
	// Time is how long the peer should retain routes (12-bit seconds).
	Time time.Duration
	// Families lists the address families covered.
	Families []GRFamily
}

// ADD-PATH send/receive modes (RFC 7911 §4).
const (
	AddPathReceive     uint8 = 1
	AddPathSend        uint8 = 2
	AddPathSendReceive uint8 = 3
)

// AFISAFI is an address family pair used in capability negotiation.
type AFISAFI struct {
	AFI  uint16
	SAFI uint8
}

// IPv4Unicast and IPv6Unicast are the address families vBGP uses.
var (
	IPv4Unicast = AFISAFI{AFIIPv4, SAFIUnicast}
	IPv6Unicast = AFISAFI{AFIIPv6, SAFIUnicast}
)

// Capabilities is the decoded capability set of an OPEN message.
type Capabilities struct {
	// AS4 carries the 4-octet AS number, or 0 when the capability is
	// absent.
	AS4 uint32
	// MP lists the multiprotocol address families advertised.
	MP []AFISAFI
	// RouteRefresh indicates RFC 2918 support.
	RouteRefresh bool
	// AddPath maps address families to the advertised send/receive mode.
	AddPath map[AFISAFI]uint8
	// GR is the graceful restart capability, or nil when absent.
	GR *GracefulRestart
}

// SupportsMP reports whether the family was advertised via the
// multiprotocol capability.
func (c *Capabilities) SupportsMP(f AFISAFI) bool {
	for _, have := range c.MP {
		if have == f {
			return true
		}
	}
	return false
}

// marshalCapabilities encodes the capability set as a single OPEN optional
// parameter of type 2 (RFC 5492).
func marshalCapabilities(c *Capabilities) []byte {
	var caps []byte
	for _, f := range c.MP {
		caps = append(caps, CapMultiprotocol, 4)
		caps = binary.BigEndian.AppendUint16(caps, f.AFI)
		caps = append(caps, 0, f.SAFI)
	}
	if c.RouteRefresh {
		caps = append(caps, CapRouteRefresh, 0)
	}
	if c.GR != nil {
		secs := uint16(c.GR.Time/time.Second) & grRestartMask
		if c.GR.Restarting {
			secs |= grRestartFlag
		}
		caps = append(caps, CapGracefulRestart, byte(2+4*len(c.GR.Families)))
		caps = binary.BigEndian.AppendUint16(caps, secs)
		for _, f := range c.GR.Families {
			caps = binary.BigEndian.AppendUint16(caps, f.Family.AFI)
			flags := byte(0)
			if f.Forwarding {
				flags = grForwardFlag
			}
			caps = append(caps, f.Family.SAFI, flags)
		}
	}
	if c.AS4 != 0 {
		caps = append(caps, CapAS4, 4)
		caps = binary.BigEndian.AppendUint32(caps, c.AS4)
	}
	if len(c.AddPath) > 0 {
		body := make([]byte, 0, 4*len(c.AddPath))
		// Encode in a stable order for test determinism.
		for _, f := range []AFISAFI{IPv4Unicast, IPv6Unicast} {
			if mode, ok := c.AddPath[f]; ok {
				body = binary.BigEndian.AppendUint16(body, f.AFI)
				body = append(body, f.SAFI, mode)
			}
		}
		for f, mode := range c.AddPath {
			if f != IPv4Unicast && f != IPv6Unicast {
				body = binary.BigEndian.AppendUint16(body, f.AFI)
				body = append(body, f.SAFI, mode)
			}
		}
		caps = append(caps, CapAddPath, byte(len(body)))
		caps = append(caps, body...)
	}
	if len(caps) == 0 {
		return nil
	}
	out := []byte{2, byte(len(caps))} // optional parameter type 2: capabilities
	return append(out, caps...)
}

// parseCapabilities decodes the optional parameter block of an OPEN.
func parseCapabilities(data []byte) (*Capabilities, error) {
	c := &Capabilities{AddPath: make(map[AFISAFI]uint8)}
	for len(data) > 0 {
		if len(data) < 2 {
			return nil, notif(ErrCodeOpen, 0)
		}
		ptype, plen := data[0], int(data[1])
		if len(data) < 2+plen {
			return nil, notif(ErrCodeOpen, 0)
		}
		body := data[2 : 2+plen]
		data = data[2+plen:]
		if ptype != 2 {
			continue // ignore non-capability optional parameters
		}
		for len(body) > 0 {
			if len(body) < 2 {
				return nil, notif(ErrCodeOpen, 0)
			}
			code, clen := body[0], int(body[1])
			if len(body) < 2+clen {
				return nil, notif(ErrCodeOpen, 0)
			}
			val := body[2 : 2+clen]
			body = body[2+clen:]
			switch code {
			case CapMultiprotocol:
				if clen != 4 {
					return nil, fmt.Errorf("bgp: bad multiprotocol capability length %d", clen)
				}
				c.MP = append(c.MP, AFISAFI{binary.BigEndian.Uint16(val), val[3]})
			case CapRouteRefresh:
				c.RouteRefresh = true
			case CapAS4:
				if clen != 4 {
					return nil, fmt.Errorf("bgp: bad AS4 capability length %d", clen)
				}
				c.AS4 = binary.BigEndian.Uint32(val)
			case CapGracefulRestart:
				if clen < 2 {
					return nil, fmt.Errorf("bgp: bad graceful restart capability length %d", clen)
				}
				hdr := binary.BigEndian.Uint16(val)
				gr := &GracefulRestart{
					Restarting: hdr&grRestartFlag != 0,
					Time:       time.Duration(hdr&grRestartMask) * time.Second,
				}
				for fam := val[2:]; len(fam) >= 4; fam = fam[4:] {
					gr.Families = append(gr.Families, GRFamily{
						Family:     AFISAFI{binary.BigEndian.Uint16(fam), fam[2]},
						Forwarding: fam[3]&grForwardFlag != 0,
					})
				}
				c.GR = gr
			case CapAddPath:
				for len(val) >= 4 {
					f := AFISAFI{binary.BigEndian.Uint16(val), val[2]}
					c.AddPath[f] = val[3]
					val = val[4:]
				}
			}
		}
	}
	return c, nil
}

// negotiateAddPath returns whether ADD-PATH applies in each direction for
// family f given local and remote capability sets: we send path IDs when
// we advertised send and the peer advertised receive, and vice versa.
func negotiateAddPath(local, remote *Capabilities, f AFISAFI) (send, recv bool) {
	l, r := local.AddPath[f], remote.AddPath[f]
	send = l&AddPathSend != 0 && r&AddPathReceive != 0
	recv = l&AddPathReceive != 0 && r&AddPathSend != 0
	return send, recv
}
