package bgp

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/pipe"
)

// TestDecodeRandomBytesNeverPanics hammers the wire decoder with random
// message bodies of every type: malformed input must produce errors, not
// panics or hangs. This is the property that protects the platform from
// a misbehaving experiment sending garbage (§4.7).
func TestDecodeRandomBytesNeverPanics(t *testing.T) {
	fn := func(typ uint8, body []byte, as4, ap4, ap6 bool) bool {
		opts := &codecOpts{as4: as4, addPathV4: ap4, addPathV6: ap6}
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("decodeBody(type %d, %d bytes) panicked: %v", typ%6, len(body), r)
			}
		}()
		decodeBody(typ%6, body, opts)
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// TestParseAttrsRandomBytesNeverPanics targets the attribute parser,
// the most structurally complex decoder.
func TestParseAttrsRandomBytesNeverPanics(t *testing.T) {
	fn := func(body []byte, as4, addPath bool) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("parseAttrs(%d bytes) panicked: %v", len(body), r)
			}
		}()
		parseAttrs(body, as4, addPath)
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// TestGarbageOnWireClosesSessionCleanly connects a session to a peer
// that speaks garbage after a valid handshake: the session must
// terminate with an error rather than wedge.
func TestGarbageOnWireClosesSessionCleanly(t *testing.T) {
	ca, cb := pipe.New()
	errs := make(chan error, 1)
	s := NewSession(ca, Config{LocalASN: 65001, RemoteASN: 65002, LocalID: ip("10.0.0.1")})
	go func() { errs <- s.Run() }()

	open, _ := marshalMessage(&Open{Version: Version, ASN: 65002, HoldTime: 90,
		BGPID: ip("10.0.0.2"), Caps: &Capabilities{AS4: 65002}}, &codecOpts{})
	cb.Write(open)
	ka, _ := marshalMessage(&Keepalive{}, &codecOpts{})
	cb.Write(ka)
	// Now garbage: a correct marker but absurd declared length.
	junk := append(append([]byte{}, marker[:]...), 0xff, 0xff, 9)
	cb.Write(junk)

	select {
	case err := <-errs:
		if err == nil {
			t.Fatal("session ended without error on garbage input")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("session wedged on garbage input")
	}
}

func TestSessionRouteRefreshCallback(t *testing.T) {
	ca, cb := pipe.New()
	refreshed := make(chan AFISAFI, 1)
	established := make(chan struct{}, 2)
	sa := NewSession(ca, Config{LocalASN: 65001, RemoteASN: 65002, LocalID: ip("10.0.0.1"),
		OnRouteRefresh: func(f AFISAFI) { refreshed <- f },
		OnEstablished:  func() { established <- struct{}{} }})
	sb := NewSession(cb, Config{LocalASN: 65002, RemoteASN: 65001, LocalID: ip("10.0.0.2"),
		OnEstablished: func() { established <- struct{}{} }})
	go sa.Run()
	go sb.Run()
	defer sa.Close()
	defer sb.Close()
	for i := 0; i < 2; i++ {
		select {
		case <-established:
		case <-time.After(5 * time.Second):
			t.Fatal("not established")
		}
	}
	if err := sb.SendRouteRefresh(IPv6Unicast); err != nil {
		t.Fatal(err)
	}
	select {
	case f := <-refreshed:
		if f != IPv6Unicast {
			t.Errorf("family %+v", f)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("refresh callback never fired")
	}
}
