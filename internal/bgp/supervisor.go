package bgp

import (
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Supervisor defaults: IdleHoldTime starts at BaseHold, doubles per
// consecutive failure up to MaxHold, and resets once a session survives
// StableReset (RFC 4271 §8.2.1 IdleHoldTime semantics, scaled to the
// simulator's time base).
const (
	defaultBaseHold    = 50 * time.Millisecond
	defaultMaxHold     = 5 * time.Second
	defaultStableReset = 2 * time.Second
)

// recoveryBuckets are the bgp_session_recovery_seconds histogram edges.
var recoveryBuckets = []float64{0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// SupervisorConfig configures automatic session re-establishment.
type SupervisorConfig struct {
	// Session is the session configuration used for every attempt. The
	// Supervisor wraps OnEstablished to record recovery telemetry; all
	// other callbacks fire unchanged on every incarnation.
	Session Config
	// Conn is the initial transport. Nil means dial immediately.
	Conn net.Conn
	// Dial produces a replacement transport after a failure. Nil
	// disables reconnection (the Supervisor then runs one session and
	// stops, i.e. pre-supervisor behavior).
	Dial func() (net.Conn, error)
	// BaseHold, MaxHold, and StableReset tune the backoff ladder; zero
	// selects the defaults above.
	BaseHold    time.Duration
	MaxHold     time.Duration
	StableReset time.Duration
	// Seed makes the backoff jitter reproducible.
	Seed int64
	// OnSession is called with each new session before it runs, so the
	// owner can swap the session pointer its send paths use.
	OnSession func(*Session)
	// Logf receives reconnect logs.
	Logf func(format string, args ...any)
}

// Supervisor keeps one BGP session alive across transport failures:
// when a session dies with an error it redials with exponential backoff
// plus jitter and runs a replacement, marking the RFC 4724 R bit on
// reconnect attempts. Administrative Close (session error nil) stops
// the loop.
type Supervisor struct {
	cfg SupervisorConfig
	rng *rand.Rand

	mu   sync.Mutex
	sess *Session

	stopOnce sync.Once
	stopCh   chan struct{}
	doneCh   chan struct{}

	attempts    *telemetry.Counter
	reconnects  *telemetry.Counter
	recoverySec *telemetry.Histogram
}

// NewSupervisor creates a Supervisor; call Start to run it.
func NewSupervisor(cfg SupervisorConfig) *Supervisor {
	if cfg.BaseHold <= 0 {
		cfg.BaseHold = defaultBaseHold
	}
	if cfg.MaxHold <= 0 {
		cfg.MaxHold = defaultMaxHold
	}
	if cfg.StableReset <= 0 {
		cfg.StableReset = defaultStableReset
	}
	peer := cfg.Session.PeerName
	if peer == "" {
		peer = "unnamed"
	}
	reg := telemetry.Default()
	return &Supervisor{
		cfg:         cfg,
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		stopCh:      make(chan struct{}),
		doneCh:      make(chan struct{}),
		attempts:    reg.Counter("bgp_reconnect_attempts_total", telemetry.L("peer", peer)),
		reconnects:  reg.Counter("bgp_reconnects_total", telemetry.L("peer", peer)),
		recoverySec: reg.Histogram("bgp_session_recovery_seconds", recoveryBuckets),
	}
}

// Start launches the supervision loop.
func (sv *Supervisor) Start() { go sv.run() }

// Session returns the current session (the latest incarnation), or nil
// before the first one exists.
func (sv *Supervisor) Session() *Session {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	return sv.sess
}

func (sv *Supervisor) setSession(s *Session) {
	sv.mu.Lock()
	sv.sess = s
	sv.mu.Unlock()
}

// Done is closed when the supervision loop exits.
func (sv *Supervisor) Done() <-chan struct{} { return sv.doneCh }

// Stop ends supervision and administratively closes the current
// session.
func (sv *Supervisor) Stop() {
	sv.stopOnce.Do(func() { close(sv.stopCh) })
	if s := sv.Session(); s != nil {
		_ = s.Close()
	}
}

func (sv *Supervisor) stopped() bool {
	select {
	case <-sv.stopCh:
		return true
	default:
		return false
	}
}

func (sv *Supervisor) logf(format string, args ...any) {
	if sv.cfg.Logf != nil {
		sv.cfg.Logf(format, args...)
	}
}

// sleep waits d or until Stop, reporting whether to continue.
func (sv *Supervisor) sleep(d time.Duration) bool {
	select {
	case <-sv.stopCh:
		return false
	case <-time.After(d):
		return true
	}
}

// run is the supervision loop. Session callbacks fire on this goroutine
// (inside sess.Run), so the loop-local recovery state needs no locking.
func (sv *Supervisor) run() {
	defer close(sv.doneCh)
	hold := sv.cfg.BaseHold
	conn := sv.cfg.Conn
	restarting := false
	var downSince time.Time

	for !sv.stopped() {
		if conn == nil {
			if sv.cfg.Dial == nil {
				return
			}
			c, err := sv.cfg.Dial()
			if err != nil {
				sv.logf("supervisor %s: dial failed: %v (retry in ~%s)", sv.cfg.Session.PeerName, err, hold)
				if !sv.sleep(sv.jitter(hold)) {
					return
				}
				hold = sv.nextHold(hold)
				continue
			}
			conn = c
		}
		if sv.stopped() {
			_ = conn.Close()
			return
		}

		scfg := sv.cfg.Session
		if restarting {
			sv.attempts.Inc()
			if scfg.GracefulRestart != nil {
				gr := *scfg.GracefulRestart
				gr.Restarting = true
				scfg.GracefulRestart = &gr
			}
		}
		userEst := scfg.OnEstablished
		scfg.OnEstablished = func() {
			if !downSince.IsZero() {
				sv.reconnects.Inc()
				sv.recoverySec.Observe(time.Since(downSince).Seconds())
				downSince = time.Time{}
			}
			if userEst != nil {
				userEst()
			}
		}

		sess := NewSession(conn, scfg)
		sv.setSession(sess)
		if sv.cfg.OnSession != nil {
			sv.cfg.OnSession(sess)
		}
		start := time.Now()
		err := sess.Run()
		conn = nil
		if err == nil {
			// Administrative shutdown: the owner closed the session.
			return
		}
		if sv.stopped() || sv.cfg.Dial == nil {
			return
		}
		if downSince.IsZero() {
			downSince = time.Now()
		}
		restarting = true
		if time.Since(start) >= sv.cfg.StableReset {
			hold = sv.cfg.BaseHold
		}
		sv.logf("supervisor %s: session died: %v (reconnect in ~%s)", sv.cfg.Session.PeerName, err, hold)
		if !sv.sleep(sv.jitter(hold)) {
			return
		}
		hold = sv.nextHold(hold)
	}
}

// jitter spreads a hold time over [0.75, 1.0) of its value so a burst
// of failures does not reconnect in lockstep.
func (sv *Supervisor) jitter(hold time.Duration) time.Duration {
	return time.Duration(float64(hold) * (0.75 + 0.25*sv.rng.Float64()))
}

func (sv *Supervisor) nextHold(hold time.Duration) time.Duration {
	hold *= 2
	if hold > sv.cfg.MaxHold {
		hold = sv.cfg.MaxHold
	}
	return hold
}
