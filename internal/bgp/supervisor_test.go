package bgp

import (
	"net"
	"net/netip"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/pipe"
	"repro/internal/telemetry"
)

// supervisedPair wires a supervised local session against a peer that
// accepts a fresh session on every dial. It returns the supervisor, a
// function that kills the current transport, and a counter of peer-side
// establishments.
func supervisedPair(t *testing.T, established *atomic.Int32) (*Supervisor, func()) {
	t.Helper()
	var current atomic.Value // net.Conn (local side)

	dial := func() (net.Conn, error) {
		cl, cp := pipe.New()
		peer := NewSession(cp, Config{
			LocalASN: 65002, RemoteASN: 65001, LocalID: netip.MustParseAddr("2.2.2.2"),
			OnEstablished: func() { established.Add(1) },
		})
		go peer.Run()
		current.Store(net.Conn(cl))
		return cl, nil
	}

	first, err := dial()
	if err != nil {
		t.Fatal(err)
	}
	sv := NewSupervisor(SupervisorConfig{
		Session: Config{
			LocalASN: 65001, RemoteASN: 65002, LocalID: netip.MustParseAddr("1.1.1.1"),
			PeerName: "sv-test",
		},
		Conn:     first,
		Dial:     dial,
		BaseHold: time.Millisecond,
		MaxHold:  20 * time.Millisecond,
		Seed:     1,
	})
	sv.Start()
	kill := func() {
		if c, ok := current.Load().(net.Conn); ok {
			_ = c.Close()
		}
	}
	return sv, kill
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSupervisorReestablishesAfterTransportLoss(t *testing.T) {
	var established atomic.Int32
	sv, kill := supervisedPair(t, &established)
	defer sv.Stop()

	waitFor(t, "initial establishment", func() bool { return established.Load() >= 1 })
	before := telemetry.Default().Value("bgp_reconnects_total")

	for i := 0; i < 3; i++ {
		target := established.Load() + 1
		kill()
		waitFor(t, "re-establishment", func() bool { return established.Load() >= target })
	}
	if got := telemetry.Default().Value("bgp_reconnects_total"); got < before+3 {
		t.Fatalf("bgp_reconnects_total rose by %v, want >= 3", got-before)
	}
	if telemetry.Default().Value("bgp_session_recovery_seconds") == 0 {
		t.Fatal("no recovery latency observations recorded")
	}
}

func TestSupervisorStopsOnAdministrativeClose(t *testing.T) {
	var established atomic.Int32
	sv, _ := supervisedPair(t, &established)
	waitFor(t, "initial establishment", func() bool { return established.Load() >= 1 })

	sv.Session().Close()
	select {
	case <-sv.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("supervisor kept running after administrative close")
	}
}

// TestSupervisorBackoffIsBounded pins the reconnect backoff contract:
// the hold time doubles from BaseHold, saturates exactly at MaxHold,
// and every jittered value lands in [0.75·hold, hold]. The ladders are
// spelled out per case so a change to the doubling or the cap fails
// loudly here instead of surfacing as chaos-soak flakiness.
func TestSupervisorBackoffIsBounded(t *testing.T) {
	cases := []struct {
		name     string
		base     time.Duration
		max      time.Duration
		wantBase time.Duration
		wantMax  time.Duration
		ladder   []time.Duration // successive nextHold values from wantBase
	}{
		{
			name:     "defaults",
			wantBase: 50 * time.Millisecond,
			wantMax:  5 * time.Second,
			ladder: []time.Duration{
				100 * time.Millisecond, 200 * time.Millisecond,
				400 * time.Millisecond, 800 * time.Millisecond,
				1600 * time.Millisecond, 3200 * time.Millisecond,
				5 * time.Second, 5 * time.Second,
			},
		},
		{
			name:     "custom",
			base:     10 * time.Millisecond,
			max:      40 * time.Millisecond,
			wantBase: 10 * time.Millisecond,
			wantMax:  40 * time.Millisecond,
			ladder: []time.Duration{
				20 * time.Millisecond, 40 * time.Millisecond,
				40 * time.Millisecond, 40 * time.Millisecond,
			},
		},
		{
			name:     "cap below one doubling",
			base:     30 * time.Millisecond,
			max:      50 * time.Millisecond,
			wantBase: 30 * time.Millisecond,
			wantMax:  50 * time.Millisecond,
			ladder:   []time.Duration{50 * time.Millisecond, 50 * time.Millisecond},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sv := NewSupervisor(SupervisorConfig{
				Session:  Config{PeerName: "backoff-" + tc.name},
				BaseHold: tc.base,
				MaxHold:  tc.max,
			})
			if sv.cfg.BaseHold != tc.wantBase || sv.cfg.MaxHold != tc.wantMax {
				t.Fatalf("effective base/max = %v/%v, want %v/%v",
					sv.cfg.BaseHold, sv.cfg.MaxHold, tc.wantBase, tc.wantMax)
			}
			hold := sv.cfg.BaseHold
			for i, want := range tc.ladder {
				hold = sv.nextHold(hold)
				if hold != want {
					t.Fatalf("step %d: hold = %v, want %v", i, hold, want)
				}
				// Jitter bounds: sample repeatedly so a widened range
				// cannot hide behind one lucky draw.
				for n := 0; n < 100; n++ {
					if j := sv.jitter(hold); j < hold*3/4 || j > hold {
						t.Fatalf("step %d: jitter %v outside [%v, %v]", i, j, hold*3/4, hold)
					}
				}
			}
			if hold != sv.cfg.MaxHold {
				t.Fatalf("ladder settled at %v, want cap %v", hold, sv.cfg.MaxHold)
			}
		})
	}
}

func TestSupervisorSetsRestartBitOnReconnect(t *testing.T) {
	var established atomic.Int32
	sawRestart := make(chan bool, 8)
	var current atomic.Value

	dial := func() (net.Conn, error) {
		cl, cp := pipe.New()
		var peer *Session
		peer = NewSession(cp, Config{
			LocalASN: 65002, RemoteASN: 65001, LocalID: netip.MustParseAddr("2.2.2.2"),
			GracefulRestart: &GracefulRestartConfig{RestartTime: 5 * time.Second},
			OnEstablished: func() {
				established.Add(1)
				caps := peer.RemoteCaps()
				sawRestart <- caps != nil && caps.GR != nil && caps.GR.Restarting
			},
		})
		go peer.Run()
		current.Store(net.Conn(cl))
		return cl, nil
	}
	sv := NewSupervisor(SupervisorConfig{
		Session: Config{
			LocalASN: 65001, RemoteASN: 65002, LocalID: netip.MustParseAddr("1.1.1.1"),
			GracefulRestart: &GracefulRestartConfig{RestartTime: 5 * time.Second},
		},
		Dial:     dial,
		BaseHold: time.Millisecond,
		Seed:     1,
	})
	sv.Start()
	defer sv.Stop()

	select {
	case restarting := <-sawRestart:
		if restarting {
			t.Fatal("first establishment advertised the R bit")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("never established")
	}
	if c, ok := current.Load().(net.Conn); ok {
		_ = c.Close()
	}
	select {
	case restarting := <-sawRestart:
		if !restarting {
			t.Fatal("reconnect did not advertise the R bit")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("never re-established")
	}
}
