package bgp

import "sync"

// Pooled UPDATE encode buffers. Every outbound message — single sends
// and batched blocks alike — is framed into a checked-out buffer, so a
// busy session reuses the same backing array instead of allocating per
// message. Buffers are reset (length zero) before they re-enter the
// pool; one that has grown past maxPooledEncodeCap is dropped for the
// GC instead, so a single giant table dump doesn't pin its high-water
// mark for the life of the process.

const (
	// encodeBufCap is the capacity new pooled buffers start with:
	// enough for several coalesced UPDATEs without growing.
	encodeBufCap = 4096
	// maxPooledEncodeCap is the largest buffer release will return to
	// the pool.
	maxPooledEncodeCap = 1 << 20
)

var encPool = sync.Pool{
	New: func() any { return &encodeBuffer{buf: make([]byte, 0, encodeBufCap)} },
}

// encodeBuffer is a reusable message-framing scratch buffer.
type encodeBuffer struct{ buf []byte }

// getEncodeBuffer checks a buffer out of the pool. The returned buffer
// always has length zero.
func getEncodeBuffer() *encodeBuffer {
	e := encPool.Get().(*encodeBuffer)
	e.buf = e.buf[:0]
	return e
}

// release resets the buffer and returns it to the pool, reporting
// whether it was pooled (false for oversized buffers, which are left to
// the GC). The caller must not touch e afterwards.
func (e *encodeBuffer) release() bool {
	if cap(e.buf) > maxPooledEncodeCap {
		return false
	}
	e.buf = e.buf[:0]
	encPool.Put(e)
	return true
}
