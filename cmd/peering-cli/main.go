// Command peering-cli is an interactive version of the experiment
// toolkit (paper §4.5, Table 1): it brings up a self-contained platform
// with one PoP and two interconnections, approves an experiment, and
// drops into a REPL exposing the toolkit verbs.
//
//	tunnel open|close|status
//	bgp start|stop|status
//	announce <prefix> [to <id>] [except <id>] [prepend <n>] [poison <asn>]
//	withdraw <prefix>
//	routes | show route [prefix] | show protocols
//	ping <addr> [via <id>]
//	neighbors
//	health
//	history stats|state|between|diff
//	metrics [prefix]
//	help | quit
//
// Invoked as `peering-cli metrics [address]` it instead fetches and
// renders the plain-text exposition served by `peeringd -metrics`
// (default address localhost:9179) and exits. Invoked as `peering-cli
// history <verb> [flags]` it queries the /history/* endpoints of a
// `peeringd -history -metrics` instance (see runHistoryCommand).
// Invoked as `peering-cli catchment [flags]` or `peering-cli te status
// [flags]` it queries the /catchment and /te/status endpoints of a
// `peeringd -te -metrics` instance (see runCatchmentCommand and
// runTECommand). Invoked as `peering-cli watch [flags]` it tails the
// control plane's /v1/watch SSE event stream until interrupted (see
// runWatchCommand). Invoked as `peering-cli apply [flags] <spec.json>...`
// or `peering-cli diff [flags] <spec.json>...` it pushes (create or
// CAS-update) or compares declarative experiment specs against the
// /v1/experiments API (see runApplyCommand and runDiffCommand).
package main

import (
	"bufio"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/netip"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/guard"
	"repro/internal/history"
	"repro/internal/inet"
	"repro/internal/telemetry"
	"repro/peering"
)

const popName = "amsix"

func main() {
	if len(os.Args) > 1 && os.Args[1] == "metrics" {
		addr := "localhost:9179"
		if len(os.Args) > 2 {
			addr = os.Args[2]
		}
		if err := fetchMetrics(os.Stdout, addr); err != nil {
			log.Fatal(err)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "history" {
		if err := runHistoryCommand(os.Args[2:]); err != nil {
			log.Fatal(err)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "catchment" {
		if err := runCatchmentCommand(os.Args[2:]); err != nil {
			log.Fatal(err)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "te" {
		if err := runTECommand(os.Args[2:]); err != nil {
			log.Fatal(err)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "watch" {
		if err := runWatchCommand(os.Args[2:]); err != nil {
			log.Fatal(err)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "apply" {
		if err := runApplyCommand(os.Args[2:]); err != nil {
			log.Fatal(err)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "diff" {
		if err := runDiffCommand(os.Args[2:]); err != nil {
			log.Fatal(err)
		}
		return
	}
	cfg := inet.DefaultGenConfig()
	cfg.Tier2 = 12
	cfg.Edges = 60
	topo := inet.Generate(cfg)
	// The session's route events land in a throwaway history store so
	// the history verb can time-travel over the REPL session itself.
	histDir, err := os.MkdirTemp("", "peering-cli-history-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(histDir)
	hist, err := history.Open(history.Config{Dir: histDir})
	if err != nil {
		log.Fatal(err)
	}
	// The interactive platform runs with the full convergence-safety
	// layer on: flap damping, MRAI pacing, and the overload watchdog
	// (inspect it with the health verb).
	platform := peering.NewPlatform(peering.PlatformConfig{
		ASN: 47065, Topology: topo,
		Damping:      &guard.DampingConfig{},
		NeighborMRAI: 50 * time.Millisecond,
		Guard:        peering.DefaultGuardConfig(),
		History:      hist,
	})
	defer platform.Close()
	pop, err := platform.AddPoP(peering.PoPConfig{
		Name: popName, RouterID: netip.MustParseAddr("198.51.100.1"),
		LocalPool: netip.MustParsePrefix("127.65.0.0/16"),
		ExpLAN:    netip.MustParsePrefix("100.65.0.0/24"),
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := pop.ConnectTransit(1000, 40); err != nil {
		log.Fatal(err)
	}
	if _, err := pop.ConnectPeer(10000, 40); err != nil {
		log.Fatal(err)
	}
	if err := platform.Submit(peering.Proposal{
		Name: "cli", Owner: "operator", Plan: "interactive toolkit session",
		Prefixes: []netip.Prefix{netip.MustParsePrefix("184.164.224.0/23")},
		ASNs:     []uint32{61574},
	}); err != nil {
		log.Fatal(err)
	}
	key, err := platform.Approve("cli", nil)
	if err != nil {
		log.Fatal(err)
	}
	client := peering.NewClient("cli", key, 61574)
	fmt.Println("peering-cli: experiment 'cli' approved (AS61574, 184.164.224.0/23)")
	fmt.Println("type 'help' for commands")

	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("peering> ")
		if !sc.Scan() {
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line == "quit" || line == "exit" {
			return
		}
		if out := execute(client, pop, platform, line); out != "" {
			fmt.Println(out)
		}
	}
}

func execute(c *peering.Client, pop *peering.PoP, platform *peering.Platform, line string) string {
	f := strings.Fields(line)
	switch f[0] {
	case "help":
		return strings.Join([]string{
			"tunnel open|close|status        manage the VPN tunnel",
			"bgp start|stop|status           manage the BGP session",
			"announce <prefix> [to <id>] [except <id>] [prepend <n>] [poison <asn>]",
			"withdraw <prefix>               retract an announcement",
			"routes                          list learned routes",
			"show route [prefix]             BIRD-style route dump",
			"show protocols                  BIRD-style session status",
			"ping <addr> [via <id>]          data-plane probe",
			"neighbors                       list PoP interconnections",
			"health                          per-PoP watchdog state and pressure",
			"history stats                   history store accounting",
			"history state <prefix> [at]     routes alive at an instant (RFC 3339)",
			"history between <prefix> [from [to]]  a prefix's event timeline",
			"history diff <popA> <popB> [at] routes held at exactly one PoP",
			"metrics [prefix]                dump platform metrics (optionally filtered)",
			"quit",
		}, "\n")
	case "tunnel":
		if len(f) < 2 {
			return "usage: tunnel open|close|status"
		}
		switch f[1] {
		case "open":
			if err := c.OpenTunnel(pop); err != nil {
				return err.Error()
			}
			return "tunnel up, address " + c.LocalIP(popName).String()
		case "close":
			if err := c.CloseTunnel(popName); err != nil {
				return err.Error()
			}
			return "tunnel down"
		case "status":
			return c.TunnelStatus(popName)
		}
	case "bgp":
		if len(f) < 2 {
			return "usage: bgp start|stop|status"
		}
		switch f[1] {
		case "start":
			if err := c.StartBGP(popName); err != nil {
				return err.Error()
			}
			if err := c.WaitEstablished(popName, 5*time.Second); err != nil {
				return err.Error()
			}
			// Give the initial ADD-PATH table dump a moment to land so
			// the next command already sees routes.
			deadline := time.Now().Add(2 * time.Second)
			for len(c.Routes(popName)) == 0 && time.Now().Before(deadline) {
				time.Sleep(10 * time.Millisecond)
			}
			return fmt.Sprintf("BGP Established, %d routes learned", len(c.Routes(popName)))
		case "stop":
			if err := c.StopBGP(popName); err != nil {
				return err.Error()
			}
			return "BGP stopped"
		case "status":
			return c.BGPStatus(popName).String()
		}
	case "announce":
		if len(f) < 2 {
			return "usage: announce <prefix> [to <id>] [except <id>] [prepend <n>] [poison <asn>]"
		}
		prefix, err := netip.ParsePrefix(f[1])
		if err != nil {
			return err.Error()
		}
		var opts []peering.AnnounceOption
		for i := 2; i+1 < len(f); i += 2 {
			n, err := strconv.Atoi(f[i+1])
			if err != nil {
				return err.Error()
			}
			switch f[i] {
			case "to":
				opts = append(opts, peering.ToNeighbors(uint32(n)))
			case "except":
				opts = append(opts, peering.ExceptNeighbors(uint32(n)))
			case "prepend":
				opts = append(opts, peering.WithPrepend(n))
			case "poison":
				opts = append(opts, peering.WithPoison(uint32(n)))
			default:
				return "unknown option " + f[i]
			}
		}
		if err := c.Announce(popName, prefix, opts...); err != nil {
			return err.Error()
		}
		return "announced " + prefix.String()
	case "withdraw":
		if len(f) < 2 {
			return "usage: withdraw <prefix>"
		}
		prefix, err := netip.ParsePrefix(f[1])
		if err != nil {
			return err.Error()
		}
		if err := c.Withdraw(popName, prefix, 0); err != nil {
			return err.Error()
		}
		return "withdrew " + prefix.String()
	case "routes":
		return c.CLI(popName, "show route")
	case "show":
		return c.CLI(popName, line)
	case "ping":
		if len(f) < 2 {
			return "usage: ping <addr> [via <id>]"
		}
		dst, err := netip.ParseAddr(f[1])
		if err != nil {
			return err.Error()
		}
		via := uint32(0)
		if len(f) == 4 && f[2] == "via" {
			n, err := strconv.Atoi(f[3])
			if err != nil {
				return err.Error()
			}
			via = uint32(n)
		}
		rtt, err := c.Ping(popName, via, dst, 7, uint16(time.Now().UnixNano()), 3*time.Second)
		if err != nil {
			return err.Error()
		}
		return fmt.Sprintf("reply from %s: rtt=%s", dst, rtt.Round(time.Microsecond))
	case "neighbors":
		var b strings.Builder
		for _, n := range pop.Router.Neighbors() {
			fmt.Fprintf(&b, "id %-3d %-12s AS%-6d routes=%d\n", n.ID, n.Name, n.ASN, n.Table.PathCount())
		}
		return strings.TrimRight(b.String(), "\n")
	case "health":
		report := platform.HealthReport()
		if len(report) == 0 {
			return "watchdog not running (platform built without a GuardConfig)"
		}
		var b strings.Builder
		fmt.Fprintf(&b, "%-10s %-10s %12s %10s %8s %10s\n",
			"pop", "state", "upd/s", "rib-paths", "queue", "loop-lag")
		for _, st := range report {
			fmt.Fprintf(&b, "%-10s %-10s %12.0f %10d %8d %10s\n",
				st.PoP, st.State, st.Pressure.UpdateRate, st.Pressure.RIBPaths,
				st.Pressure.QueueDepth, st.Pressure.LoopLag.Round(time.Microsecond))
		}
		return strings.TrimRight(b.String(), "\n")
	case "history":
		// The store ingests asynchronously; settle it so the query sees
		// everything the session just did.
		platform.WaitMonitorDrained(2 * time.Second)
		return executeHistory(platform.History(), f)
	case "metrics":
		prefix := ""
		if len(f) > 1 {
			prefix = f[1]
		}
		return renderMetrics(telemetry.Default().Text(), prefix)
	}
	return "unknown command (try 'help')"
}

// fetchMetrics pulls the exposition from a running peeringd and renders
// it to w.
func fetchMetrics(w io.Writer, addr string) error {
	url := addr
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	if !strings.HasSuffix(url, "/metrics") {
		url = strings.TrimRight(url, "/") + "/metrics"
	}
	// A bounded client: a wedged or unreachable peeringd must fail the
	// scrape, not hang the CLI (http.DefaultClient has no timeout).
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("peering-cli: %s returned %s", url, resp.Status)
	}
	_, err = fmt.Fprint(w, renderMetrics(string(body), "")+"\n")
	return err
}

// renderMetrics filters an exposition down to series whose name starts
// with prefix (empty keeps everything) and drops comment lines, the
// operator-facing view of the raw scrape format.
func renderMetrics(text, prefix string) string {
	var out []string
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if prefix != "" && !strings.HasPrefix(line, prefix) {
			continue
		}
		out = append(out, line)
	}
	if len(out) == 0 {
		return "no metrics matched"
	}
	return strings.Join(out, "\n")
}
