package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/ctlplane"
)

// runApplyCommand implements `peering-cli apply [flags] <spec.json>...`:
// the declarative half of the toolkit. Each file holds one experiment
// spec; apply creates it when the server has no such experiment and
// otherwise updates it compare-and-swap style at the server's current
// revision, so a concurrent edit surfaces as a 409 instead of being
// silently clobbered.
func runApplyCommand(args []string) error {
	usage := `usage: peering-cli apply [flags] <spec.json>...

pushes declarative experiment specs to a running peeringd control plane.

flags:
  -addr host:port   peeringd metrics address (default localhost:9179)
  -dry-run          validate server-side without storing`
	fs := flag.NewFlagSet("apply", flag.ContinueOnError)
	addr := fs.String("addr", "localhost:9179", "peeringd metrics address")
	dryRun := fs.Bool("dry-run", false, "validate without storing")
	fs.Usage = func() { fmt.Fprintln(os.Stderr, usage) }
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return fmt.Errorf("peering-cli: apply needs at least one spec file")
	}
	cli := newAPIClient(*addr)
	for _, path := range fs.Args() {
		spec, err := loadSpecFile(path)
		if err != nil {
			return err
		}
		action, rev, err := cli.apply(spec, *dryRun)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if rev > 0 {
			fmt.Printf("%s %s (revision %d)\n", action, spec.Name, rev)
		} else {
			fmt.Printf("%s %s\n", action, spec.Name)
		}
	}
	return nil
}

// runDiffCommand implements `peering-cli diff [flags] <spec.json>...`:
// it renders, per file, how the local spec differs from what the server
// currently holds — the dry inspection before an apply. Exits with
// status 1 (like diff(1)) when any file differs.
func runDiffCommand(args []string) error {
	usage := `usage: peering-cli diff [flags] <spec.json>...

compares local experiment specs against the running control plane.
exit status 1 when any spec differs.

flags:
  -addr host:port   peeringd metrics address (default localhost:9179)`
	fs := flag.NewFlagSet("diff", flag.ContinueOnError)
	addr := fs.String("addr", "localhost:9179", "peeringd metrics address")
	fs.Usage = func() { fmt.Fprintln(os.Stderr, usage) }
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return fmt.Errorf("peering-cli: diff needs at least one spec file")
	}
	cli := newAPIClient(*addr)
	differs := false
	for _, path := range fs.Args() {
		spec, err := loadSpecFile(path)
		if err != nil {
			return err
		}
		remote, _, err := cli.getSpec(spec.Name)
		if err == errNotFound {
			fmt.Printf("%s: experiment %s not on server (apply would create it)\n", path, spec.Name)
			differs = true
			continue
		}
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		lines := diffSpecs(*remote, spec)
		if len(lines) == 0 {
			fmt.Printf("%s: experiment %s is in sync\n", path, spec.Name)
			continue
		}
		differs = true
		fmt.Printf("%s: experiment %s differs:\n", path, spec.Name)
		for _, l := range lines {
			fmt.Println("  " + l)
		}
	}
	if differs {
		os.Exit(1)
	}
	return nil
}

// loadSpecFile reads and strictly validates one spec file, so typos are
// caught locally before any request is made.
func loadSpecFile(path string) (ctlplane.Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return ctlplane.Spec{}, err
	}
	spec, err := ctlplane.DecodeSpec(data)
	if err != nil {
		return ctlplane.Spec{}, fmt.Errorf("%s: %w", path, err)
	}
	return spec, nil
}

// apiClient speaks the /v1 experiment API with bounded requests.
type apiClient struct {
	base string
	http *http.Client
}

var errNotFound = fmt.Errorf("not found")

func newAPIClient(addr string) *apiClient {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &apiClient{
		base: strings.TrimRight(base, "/"),
		http: &http.Client{Timeout: 10 * time.Second},
	}
}

func (c *apiClient) do(method, path string, body any) (int, []byte, error) {
	var rd *bytes.Reader
	if body == nil {
		rd = bytes.NewReader(nil)
	} else {
		data, err := json.Marshal(body)
		if err != nil {
			return 0, nil, err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, buf.Bytes(), nil
}

// getSpec fetches the server's current spec and revision for an
// experiment, or errNotFound.
func (c *apiClient) getSpec(name string) (*ctlplane.Spec, int64, error) {
	code, body, err := c.do("GET", "/v1/experiments/"+name, nil)
	if err != nil {
		return nil, 0, err
	}
	if code == http.StatusNotFound {
		return nil, 0, errNotFound
	}
	if code != http.StatusOK {
		return nil, 0, fmt.Errorf("GET /v1/experiments/%s: %d %s", name, code, body)
	}
	var view struct {
		Object ctlplane.Object `json:"object"`
	}
	if err := json.Unmarshal(body, &view); err != nil {
		return nil, 0, err
	}
	return &view.Object.Spec, view.Object.Revision, nil
}

// apply creates or CAS-updates one spec, returning what happened and
// the resulting revision.
func (c *apiClient) apply(spec ctlplane.Spec, dryRun bool) (string, int64, error) {
	if dryRun {
		code, body, err := c.do("POST", "/v1/experiments?dry_run=1", spec)
		if err != nil {
			return "", 0, err
		}
		if code != http.StatusOK {
			return "", 0, fmt.Errorf("dry run: %d %s", code, body)
		}
		return "validated", 0, nil
	}
	remote, rev, err := c.getSpec(spec.Name)
	if err != nil && err != errNotFound {
		return "", 0, err
	}
	if err == errNotFound {
		code, body, err := c.do("POST", "/v1/experiments", spec)
		if err != nil {
			return "", 0, err
		}
		if code != http.StatusCreated && code != http.StatusOK {
			return "", 0, fmt.Errorf("create: %d %s", code, body)
		}
		return "created", decodeRevision(body), nil
	}
	if len(diffSpecs(*remote, spec)) == 0 {
		return "unchanged", rev, nil
	}
	// Compare-and-swap at the revision just read: losing a race to a
	// concurrent writer is a visible 409, not a silent overwrite.
	code, body, err := c.do("PATCH", "/v1/experiments/"+spec.Name,
		map[string]any{"revision": rev, "spec": spec})
	if err != nil {
		return "", 0, err
	}
	if code == http.StatusConflict {
		return "", 0, fmt.Errorf("revision conflict: experiment %s changed on the server since it was read (re-run apply)", spec.Name)
	}
	if code != http.StatusOK {
		return "", 0, fmt.Errorf("update: %d %s", code, body)
	}
	return "updated", decodeRevision(body), nil
}

func decodeRevision(body []byte) int64 {
	var view struct {
		Object struct {
			Revision int64 `json:"revision"`
		} `json:"object"`
	}
	if json.Unmarshal(body, &view) != nil {
		return 0
	}
	return view.Object.Revision
}

// diffSpecs reports the fields where the local spec departs from the
// server's, as "field: server -> local" lines. Both sides are decoded
// through their JSON form so omitted and zero-valued knobs compare
// equal.
func diffSpecs(server, local ctlplane.Spec) []string {
	return diffJSON("", toJSONValue(server), toJSONValue(local))
}

func toJSONValue(v any) any {
	data, err := json.Marshal(v)
	if err != nil {
		return nil
	}
	var out any
	if json.Unmarshal(data, &out) != nil {
		return nil
	}
	return out
}

// diffJSON walks two decoded JSON values and emits one line per leaf
// difference, prefixed with the dotted path.
func diffJSON(path string, server, local any) []string {
	render := func(v any) string {
		if v == nil {
			return "(unset)"
		}
		data, err := json.Marshal(v)
		if err != nil {
			return fmt.Sprintf("%v", v)
		}
		return string(data)
	}
	sm, sok := server.(map[string]any)
	lm, lok := local.(map[string]any)
	if sok && lok {
		keys := map[string]bool{}
		for k := range sm {
			keys[k] = true
		}
		for k := range lm {
			keys[k] = true
		}
		sorted := make([]string, 0, len(keys))
		for k := range keys {
			sorted = append(sorted, k)
		}
		sort.Strings(sorted)
		var out []string
		for _, k := range sorted {
			sub := k
			if path != "" {
				sub = path + "." + k
			}
			out = append(out, diffJSON(sub, sm[k], lm[k])...)
		}
		return out
	}
	sa, saok := server.([]any)
	la, laok := local.([]any)
	if saok && laok && len(sa) == len(la) {
		var out []string
		for i := range sa {
			out = append(out, diffJSON(fmt.Sprintf("%s[%d]", path, i), sa[i], la[i])...)
		}
		return out
	}
	if render(server) == render(local) {
		return nil
	}
	if path == "" {
		path = "(spec)"
	}
	return []string{fmt.Sprintf("%s: %s -> %s", path, render(server), render(local))}
}
