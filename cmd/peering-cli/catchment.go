package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strings"
	"time"
)

// teHTTPClient bounds the remote TE verbs like the metrics and history
// scrapes: a wedged peeringd fails the query instead of hanging the CLI.
var teHTTPClient = &http.Client{Timeout: 10 * time.Second}

// runCatchmentCommand implements `peering-cli catchment [flags]`,
// fetching the current catchment map from the /catchment endpoint of a
// running `peeringd -te -metrics` instance.
func runCatchmentCommand(args []string) error {
	usage := `usage: peering-cli catchment [flags]

fetches the anycast catchment map peeringd resolved for its TE
population: which PoP each client population's BGP best path lands on,
the per-PoP client weights, and the FIB digests the map was read from.

flags:
  -addr host:port   peeringd metrics address (default localhost:9179)
  -prefix P         resolve for this prefix instead of the -te default`
	fs := flag.NewFlagSet("catchment", flag.ExitOnError)
	addr := fs.String("addr", "localhost:9179", "peeringd metrics address")
	prefix := fs.String("prefix", "", "prefix override")
	fs.Usage = func() { fmt.Fprintln(os.Stderr, usage) }
	if err := fs.Parse(args); err != nil {
		return err
	}
	q := url.Values{}
	if *prefix != "" {
		q.Set("prefix", *prefix)
	}
	return teGet(*addr, "/catchment", q)
}

// runTECommand implements `peering-cli te status [flags]`, fetching the
// closed-loop controller's progress from /te/status.
func runTECommand(args []string) error {
	usage := `usage: peering-cli te status [flags]

reports the traffic-engineering controller's progress: targets, the
round history (imbalance, shares, actions), and on infeasibility the
certificate describing the knob state that could not reach the targets.

flags:
  -addr host:port   peeringd metrics address (default localhost:9179)`
	if len(args) == 0 || args[0] != "status" {
		return fmt.Errorf("%s", usage)
	}
	fs := flag.NewFlagSet("te", flag.ExitOnError)
	addr := fs.String("addr", "localhost:9179", "peeringd metrics address")
	fs.Usage = func() { fmt.Fprintln(os.Stderr, usage) }
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	return teGet(*addr, "/te/status", nil)
}

// teGet fetches one JSON endpoint and prints the body verbatim.
func teGet(addr, path string, q url.Values) error {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	u := strings.TrimRight(base, "/") + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	resp, err := teHTTPClient.Get(u)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("peering-cli: %s returned %s: %s", u, resp.Status, strings.TrimSpace(string(body)))
	}
	_, err = fmt.Print(string(body))
	return err
}
