package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/url"
	"os"
	"strings"
	"time"
)

// runWatchCommand implements `peering-cli watch [flags]`: it subscribes
// to the /v1/watch SSE stream of a running `peeringd -metrics` instance
// and renders each event as one line until interrupted or the server
// closes the stream. Unlike the query verbs the connection is
// deliberately unbounded — it is a live tail, not a scrape — so the
// client carries no timeout.
func runWatchCommand(args []string) error {
	usage := `usage: peering-cli watch [flags]

streams the control plane's live event feed (SSE) until interrupted.

flags:
  -addr host:port   peeringd metrics address (default localhost:9179)
  -types a,b,c      event types to subscribe to: telemetry, reconcile,
                    health, store, deploy (default: all)
  -raw              print raw SSE frames instead of one line per event`
	fs := flag.NewFlagSet("watch", flag.ContinueOnError)
	addr := fs.String("addr", "localhost:9179", "peeringd metrics address")
	types := fs.String("types", "", "comma-separated event types (empty = all)")
	raw := fs.Bool("raw", false, "print raw SSE frames")
	fs.Usage = func() { fmt.Fprintln(os.Stderr, usage) }
	if err := fs.Parse(args); err != nil {
		return err
	}

	u := *addr
	if !strings.Contains(u, "://") {
		u = "http://" + u
	}
	u = strings.TrimRight(u, "/") + "/v1/watch"
	if *types != "" {
		u += "?" + url.Values{"types": {*types}}.Encode()
	}
	resp, err := http.Get(u)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("peering-cli: %s returned %s", u, resp.Status)
	}
	fmt.Fprintf(os.Stderr, "watching %s (ctrl-c to stop)\n", u)

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if *raw {
			fmt.Println(line)
			continue
		}
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		fmt.Println(renderWatchEvent(strings.TrimPrefix(line, "data: ")))
	}
	return sc.Err()
}

// renderWatchEvent turns one SSE data payload into a compact log line:
// timestamp, sequence, type, then the event body re-marshalled without
// the envelope. Undecodable payloads pass through verbatim.
func renderWatchEvent(payload string) string {
	var ev struct {
		Seq  uint64          `json:"seq"`
		Type string          `json:"type"`
		Time time.Time       `json:"time"`
		Data json.RawMessage `json:"data"`
	}
	if err := json.Unmarshal([]byte(payload), &ev); err != nil || ev.Type == "" {
		return payload
	}
	return fmt.Sprintf("%s %-9s #%-5d %s",
		ev.Time.Format("15:04:05.000"), ev.Type, ev.Seq, compactJSON(ev.Data))
}

// compactJSON renders raw JSON on one line, falling back to the input.
func compactJSON(raw json.RawMessage) string {
	var buf bytes.Buffer
	if err := json.Compact(&buf, raw); err != nil {
		return string(raw)
	}
	return buf.String()
}
