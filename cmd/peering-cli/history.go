package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/netip"
	"net/url"
	"os"
	"strings"
	"time"

	"repro/internal/history"
)

// historyHTTPClient is the bounded client for the remote history verbs:
// like the metrics scrape, a wedged peeringd must fail the query, not
// hang the CLI.
var historyHTTPClient = &http.Client{Timeout: 10 * time.Second}

// runHistoryCommand implements `peering-cli history <verb> [flags]`,
// querying the /history/* endpoints of a running `peeringd -history
// -metrics` instance.
func runHistoryCommand(args []string) error {
	usage := `usage: peering-cli history <verb> [flags]

verbs:
  state    routes alive for a prefix at an instant   (-prefix, -at)
  between  a prefix's stored events in a time range  (-prefix, -from, -to)
  diff     routes visible at exactly one of two PoPs (-a, -b, -at)
  stats    store accounting and the vantage table

flags:
  -addr host:port   peeringd metrics address (default localhost:9179)
  -prefix P         exact prefix to query, e.g. 184.164.224.0/24
  -at T             instant, RFC 3339 (default now)
  -from T, -to T    range bounds, RFC 3339 (default all .. now)
  -a POP, -b POP    the two PoPs to diff`
	if len(args) == 0 {
		return fmt.Errorf("%s", usage)
	}
	verb := args[0]
	fs := flag.NewFlagSet("history", flag.ExitOnError)
	addr := fs.String("addr", "localhost:9179", "peeringd metrics address")
	prefix := fs.String("prefix", "", "prefix to query")
	at := fs.String("at", "", "instant (RFC 3339)")
	from := fs.String("from", "", "range start (RFC 3339)")
	to := fs.String("to", "", "range end (RFC 3339)")
	popA := fs.String("a", "", "first PoP to diff")
	popB := fs.String("b", "", "second PoP to diff")
	fs.Usage = func() { fmt.Fprintln(os.Stderr, usage) }
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}

	q := url.Values{}
	set := func(key, val string) {
		if val != "" {
			q.Set(key, val)
		}
	}
	switch verb {
	case "state":
		set("prefix", *prefix)
		set("at", *at)
	case "between":
		set("prefix", *prefix)
		set("from", *from)
		set("to", *to)
	case "diff":
		set("a", *popA)
		set("b", *popB)
		set("at", *at)
	case "stats":
	default:
		return fmt.Errorf("unknown history verb %q\n%s", verb, usage)
	}

	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	u := strings.TrimRight(base, "/") + "/history/" + verb
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	resp, err := historyHTTPClient.Get(u)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("peering-cli: %s returned %s: %s", u, resp.Status, strings.TrimSpace(string(body)))
	}
	_, err = fmt.Print(string(body))
	return err
}

// executeHistory implements the REPL's history verb against the local
// platform's store.
//
//	history stats
//	history state <prefix> [<rfc3339>]
//	history between <prefix> [<from> [<to>]]
//	history diff <popA> <popB> [<rfc3339>]
func executeHistory(store *history.Store, f []string) string {
	if store == nil {
		return "history store not running"
	}
	usage := "usage: history stats | state <prefix> [at] | between <prefix> [from [to]] | diff <popA> <popB> [at]"
	if len(f) < 2 {
		return usage
	}
	parseAt := func(s string, fallback time.Time) (time.Time, error) {
		if s == "" {
			return fallback, nil
		}
		return time.Parse(time.RFC3339Nano, s)
	}
	arg := func(i int) string {
		if i < len(f) {
			return f[i]
		}
		return ""
	}
	switch f[1] {
	case "stats":
		st := store.Stats()
		return fmt.Sprintf(
			"observed=%d stored=%d deduped=%d dropped=%d skipped=%d\nsegments=%d sealed-bytes=%d retired=%d compacted=%d\nvantages: %s",
			st.Observed, st.Stored, st.Deduped, st.Dropped, st.Skipped,
			st.Segments, st.SealedBytes, st.RetiredSegments, st.CompactedEvents,
			strings.Join(store.Vantages(), ", "))
	case "state":
		if len(f) < 3 {
			return usage
		}
		prefix, err := netip.ParsePrefix(f[2])
		if err != nil {
			return err.Error()
		}
		at, err := parseAt(arg(3), time.Now())
		if err != nil {
			return err.Error()
		}
		states, err := store.StateAt(prefix, at)
		if err != nil {
			return err.Error()
		}
		if len(states) == 0 {
			return "no routes alive at " + at.Format(time.RFC3339)
		}
		var b strings.Builder
		for _, rs := range states {
			fmt.Fprintf(&b, "%s via %s path %v since %s at [%s]\n",
				rs.Prefix, rs.Peer, rs.ASPath, rs.Since.Format(time.RFC3339), strings.Join(rs.Vantages, " "))
		}
		return strings.TrimRight(b.String(), "\n")
	case "between":
		if len(f) < 3 {
			return usage
		}
		prefix, err := netip.ParsePrefix(f[2])
		if err != nil {
			return err.Error()
		}
		from, err := parseAt(arg(3), time.Time{})
		if err != nil {
			return err.Error()
		}
		to, err := parseAt(arg(4), time.Now())
		if err != nil {
			return err.Error()
		}
		events, err := store.Between(prefix, from, to)
		if err != nil {
			return err.Error()
		}
		if len(events) == 0 {
			return "no events in range"
		}
		var b strings.Builder
		for _, ev := range events {
			kind := "announce"
			if ev.Withdraw {
				kind = "withdraw"
			}
			fmt.Fprintf(&b, "%s %-8s %s via %s path %v dups=%d at [%s]\n",
				ev.Time.Format(time.RFC3339Nano), kind, ev.Prefix, ev.Peer,
				ev.ASPath, ev.Dups, strings.Join(ev.VantageNames, " "))
		}
		return strings.TrimRight(b.String(), "\n")
	case "diff":
		if len(f) < 4 {
			return usage
		}
		at, err := parseAt(arg(4), time.Now())
		if err != nil {
			return err.Error()
		}
		diffs, err := store.DiffPoPs(f[2], f[3], at)
		if err != nil {
			return err.Error()
		}
		if len(diffs) == 0 {
			return "no divergence: both PoPs hold the same routes"
		}
		var b strings.Builder
		for _, d := range diffs {
			fmt.Fprintf(&b, "%s via %s origin AS%d only at %s\n", d.Prefix, d.Peer, d.Origin, d.OnlyAt)
		}
		return strings.TrimRight(b.String(), "\n")
	}
	return usage
}
