package main

import (
	"fmt"
	"net/netip"
	"time"

	"repro/internal/bgp"
	"repro/internal/chaos"
	"repro/internal/inet"
	"repro/internal/rib"
	"repro/internal/telemetry"
	"repro/peering"
)

// chaosSoak runs the resilience rig end to end: a two-PoP platform with
// every transport class (neighbor, experiment, tunnel, backbone)
// threaded through the fault injector takes a seeded-random fault
// stream, then the bench verifies every session re-established, no
// stale graceful-restart state remains, and the RIBs reconverged to the
// pre-fault view. The same seed replays the same fault sequence.
func chaosSoak() error {
	header("chaos soak — fault injection + session resilience",
		"seeded random faults on every transport; supervised reconnect with backoff, RFC 4724 retention, RIB reconvergence")

	inj := chaos.New(chaos.Config{Seed: 1, Rate: 240, DefaultDuration: 40 * time.Millisecond})
	cfg := inet.DefaultGenConfig()
	cfg.Tier2 = 10
	cfg.Edges = 40
	topo := inet.Generate(cfg)
	platform := peering.NewPlatform(peering.PlatformConfig{ASN: 47065, Topology: topo, Chaos: inj})
	popA, err := platform.AddPoP(peering.PoPConfig{
		Name: "amsix", RouterID: netip.MustParseAddr("198.51.100.1"),
		LocalPool: netip.MustParsePrefix("127.65.0.0/16"),
		ExpLAN:    netip.MustParsePrefix("100.65.0.0/24"),
	})
	if err != nil {
		return err
	}
	popB, err := platform.AddPoP(peering.PoPConfig{
		Name: "seattle", RouterID: netip.MustParseAddr("198.51.100.2"),
		LocalPool: netip.MustParsePrefix("127.66.0.0/16"),
		ExpLAN:    netip.MustParsePrefix("100.66.0.0/24"),
	})
	if err != nil {
		return err
	}
	if err := platform.ConnectBackbone(popA, popB, 400e6, 30*time.Millisecond); err != nil {
		return err
	}
	if _, err := popA.ConnectTransit(1000, 20); err != nil {
		return err
	}
	if _, err := popB.ConnectPeer(10000, 20); err != nil {
		return err
	}
	if err := platform.Submit(peering.Proposal{
		Name: "bench", Owner: "bench", Plan: "chaos soak",
		Prefixes: []netip.Prefix{netip.MustParsePrefix("184.164.224.0/23")},
		ASNs:     []uint32{61574},
	}); err != nil {
		return err
	}
	key, err := platform.Approve("bench", nil)
	if err != nil {
		return err
	}
	client := peering.NewClient("bench", key, 61574)
	client.SetResilient(true)
	for _, pop := range []*peering.PoP{popA, popB} {
		if err := client.OpenTunnel(pop); err != nil {
			return err
		}
		if err := client.StartBGP(pop.Name); err != nil {
			return err
		}
		if err := client.WaitEstablished(pop.Name, 5*time.Second); err != nil {
			return err
		}
	}
	if err := client.Announce("amsix", netip.MustParsePrefix("184.164.224.0/24")); err != nil {
		return err
	}
	if err := client.Announce("seattle", netip.MustParsePrefix("184.164.225.0/24")); err != nil {
		return err
	}

	probe := inet.PrefixForASN(100)
	converged := func() bool {
		return len(client.RoutesFor("amsix", probe)) == 2 && len(client.RoutesFor("seattle", probe)) == 2 &&
			topo.Reachable(1000, netip.MustParsePrefix("184.164.225.0/24")) &&
			topo.Reachable(10000, netip.MustParsePrefix("184.164.224.0/24"))
	}
	if err := await("pre-fault convergence", 20*time.Second, converged); err != nil {
		return err
	}
	baseRoutes := popA.Router.RouteCount() + popB.Router.RouteCount()
	fmt.Printf("testbed up: 2 PoPs, %d routes, all transports behind the injector\n", baseRoutes)

	const soakFor = 4 * time.Second
	fmt.Printf("injecting seeded-random faults for %s (seed 1, %.0f faults/min)...\n", soakFor, 240.0)
	go inj.Run()
	time.Sleep(soakFor)
	inj.Stop()
	<-inj.Done()

	byKind := map[chaos.FaultKind]int{}
	for _, ev := range inj.Events() {
		byKind[ev.Fault.Kind]++
	}
	fmt.Printf("injected %d faults:", len(inj.Events()))
	for _, k := range append(chaos.ConnKinds(), chaos.LinkFlap) {
		if byKind[k] > 0 {
			fmt.Printf(" %s=%d", k, byKind[k])
		}
	}
	fmt.Println()

	recovered := func() bool {
		for _, pop := range []*peering.PoP{popA, popB} {
			if client.BGPStatus(pop.Name) != bgp.StateEstablished {
				return false
			}
			for _, n := range pop.Router.Neighbors() {
				if countStale(n.Table) > 0 {
					return false
				}
				if !n.Remote {
					sess := n.Session()
					if sess == nil || sess.State() != bgp.StateEstablished {
						return false
					}
				}
			}
			if countStale(pop.Router.ExperimentRoutes()) > 0 {
				return false
			}
		}
		return converged()
	}
	recoverStart := time.Now()
	if err := await("post-fault recovery", 60*time.Second, recovered); err != nil {
		return err
	}
	recovery := time.Since(recoverStart)
	fmt.Printf("recovered: all sessions re-established, 0 stale paths, RIBs reconverged (%.2fs after last fault)\n",
		recovery.Seconds())
	printMetricsSnapshot("chaos_", "bgp_reconnect", "bgp_session_recovery_seconds", "tunnel_")
	reg := telemetry.Default()
	fmt.Printf("\nreconnects: %.0f session(s) recovered over %.0f attempt(s); %.0f tunnel redial(s)\n",
		reg.Value("bgp_reconnects_total"), reg.Value("bgp_reconnect_attempts_total"),
		reg.Value("tunnel_reconnect_attempts_total"))
	record("chaos", map[string]any{"seed": 1, "rate_per_min": 240, "soak_seconds": soakFor.Seconds()},
		benchSample{Name: "faults", Value: float64(len(inj.Events())), Unit: "faults"},
		benchSample{Name: "recovery", Value: recovery.Seconds(), Unit: "s"},
		benchSample{Name: "reconnects", Value: reg.Value("bgp_reconnects_total"), Unit: "sessions"})
	return nil
}

// await polls cond until it holds or the deadline passes.
func await(what string, d time.Duration, cond func() bool) error {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	return fmt.Errorf("timed out waiting for %s", what)
}

// countStale counts paths still marked stale under graceful restart.
func countStale(tbl *rib.Table) int {
	n := 0
	tbl.Walk(func(_ netip.Prefix, paths []*rib.Path) bool {
		for _, p := range paths {
			if p.Stale {
				n++
			}
		}
		return true
	})
	return n
}
