package main

import (
	"encoding/json"
	"os"
	"testing"
)

// TestBenchSanity runs a scaled-down ribscale sweep end to end and
// parses the BENCH_ribscale.json it writes. It is the harness lock on
// the benchmark itself: the artifact must exist, carry the speedup
// samples the acceptance gate reads, and — the hard invariant that
// holds at any problem size — report zero shard write-lock acquisitions
// during the pure-lookup phase. Throughput ratios are NOT asserted
// here; at toy sizes they are noise, and the full-size run gates them.
func TestBenchSanity(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a live convergence sweep")
	}
	t.Chdir(t.TempDir())
	err := ribscaleSweep(ribscaleParams{
		Shards:    []int{1, 4},
		Routes:    []int{1 << 10, 1 << 12},
		Writers:   []int{1, 2},
		LookupOps: 1 << 14,
	})
	if err != nil {
		t.Fatalf("ribscaleSweep: %v", err)
	}

	data, err := os.ReadFile("BENCH_ribscale.json")
	if err != nil {
		t.Fatalf("benchmark artifact missing: %v", err)
	}
	var out struct {
		Fig     string        `json:"fig"`
		Samples []benchSample `json:"samples"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("BENCH_ribscale.json does not parse: %v", err)
	}
	if out.Fig != "ribscale" {
		t.Fatalf("fig = %q, want ribscale", out.Fig)
	}

	byName := map[string]benchSample{}
	for _, s := range out.Samples {
		byName[s.Name] = s
	}
	wl, ok := byName["lookup-write-locks"]
	if !ok {
		t.Fatal("lookup-write-locks sample missing: the contention guard did not run")
	}
	if wl.Value != 0 {
		t.Fatalf("lookups acquired %v shard write locks; the read path must be lock-free", wl.Value)
	}
	for _, name := range []string{"convergence-speedup", "lookup-speedup"} {
		s, ok := byName[name]
		if !ok {
			t.Fatalf("%s sample missing", name)
		}
		if s.Value <= 0 || s.Unit != "x" {
			t.Fatalf("%s = %v %q, want a positive ratio in x", name, s.Value, s.Unit)
		}
	}
	throughput := 0
	for _, s := range out.Samples {
		if s.RoutesPerSec < 0 {
			t.Fatalf("%s: negative throughput %v", s.Name, s.RoutesPerSec)
		}
		if s.RoutesPerSec > 0 {
			throughput++
		}
	}
	if throughput < 4 {
		t.Fatalf("only %d throughput samples recorded; sweep incomplete", throughput)
	}
}
