package main

import (
	"fmt"
	"net/netip"
	"os"
	"path/filepath"
	"time"

	"repro/internal/ctlplane"
)

// ctlrecoverFig measures the crash-safety tax and the recovery cost of
// the durable desired-state store: the per-commit latency of the
// fsynced WAL append, the on-disk footprint, and the wall-clock time a
// restarted control plane spends replaying snapshot+log back into
// memory, swept over the number of stored experiments.
func ctlrecoverFig() error {
	header("Control-plane crash recovery — WAL commit cost and replay time",
		"crash-only operation: durable commits cost one fsync; restart recovery replays snapshot+log and stays sub-second at experiment-fleet scale")

	counts := []int{250, 1000, 4000}
	fmt.Printf("%-12s %14s %14s %14s %14s\n",
		"experiments", "commit", "recover", "log+snap", "objs/s replay")

	var samples []benchSample
	var lastRecover time.Duration
	for _, n := range counts {
		dir, err := os.MkdirTemp("", "vbgp-ctlrecover-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)

		s, _, _, err := ctlplane.RecoverStore(ctlplane.StoreConfig{}, dir)
		if err != nil {
			return err
		}
		start := time.Now()
		for i := 0; i < n; i++ {
			spec := ctlplane.Spec{
				Name:     fmt.Sprintf("exp-%05d", i),
				Owner:    "bench",
				ASN:      61574,
				Prefixes: []string{fmt.Sprintf("10.%d.%d.0/24", (i/256)%256, i%256)},
				Announcements: []ctlplane.Announcement{
					{Prefix: fmt.Sprintf("10.%d.%d.0/24", (i/256)%256, i%256), PoPs: []string{"amsix", "seattle"}},
				},
			}
			obj, _, err := s.Create(spec)
			if err != nil {
				return fmt.Errorf("create %s: %w", spec.Name, err)
			}
			// Each experiment also logs one actuation fingerprint: the
			// record recovery uses for budget-free adoption.
			s.LogAct("announce", ctlplane.AnnKey{
				Experiment: obj.Spec.Name, PoP: "amsix",
				Prefix: netip.MustParsePrefix(obj.Spec.Announcements[0].Prefix),
			}, "fp")
		}
		commitPerOp := time.Since(start) / time.Duration(n)
		if err := s.Close(); err != nil {
			return err
		}

		var onDisk int64
		for _, name := range []string{"ctlplane.wal", "ctlplane.snap"} {
			if st, err := os.Stat(filepath.Join(dir, name)); err == nil {
				onDisk += st.Size()
			}
		}

		start = time.Now()
		s2, _, rec, err := ctlplane.RecoverStore(ctlplane.StoreConfig{}, dir)
		if err != nil {
			return err
		}
		replay := time.Since(start)
		lastRecover = replay
		if rec == nil || len(rec.Objects) != n || len(rec.Acts) != n {
			return fmt.Errorf("recovered %d objects / %d acts, want %d each",
				len(rec.Objects), len(rec.Acts), n)
		}
		s2.Close()

		fmt.Printf("%-12d %14s %14s %12.1fKB %14.0f\n",
			n, commitPerOp.Round(time.Microsecond), replay.Round(time.Microsecond),
			float64(onDisk)/1e3, float64(n)/replay.Seconds())
		samples = append(samples,
			benchSample{Name: fmt.Sprintf("commit-%d", n), NsPerOp: float64(commitPerOp.Nanoseconds())},
			benchSample{Name: fmt.Sprintf("recover-%d", n), NsPerOp: float64(replay.Nanoseconds())},
			benchSample{Name: fmt.Sprintf("disk-%d", n), Value: float64(onDisk) / 1e3, Unit: "KB"},
		)
	}
	fmt.Printf("shape check (restart replay of %d experiments under 1s): %v\n",
		counts[len(counts)-1], lastRecover < time.Second)
	record("ctlrecover", map[string]any{"counts": counts}, samples...)
	return nil
}
