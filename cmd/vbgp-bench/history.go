package main

import (
	"fmt"
	"net/netip"
	"os"
	"time"

	"repro/internal/history"
	"repro/internal/telemetry"
)

// historyBench measures the durable RIB history store on a synthetic
// update stream: segment-log ingest throughput at six-figure event
// counts (with size-based rotation live), then the time-travel query
// layer — StateAt, Between, DiffPoPs — replaying against the stored
// log. Writes BENCH_history.json.
func historyBench() error {
	header("history — segment-log ingest + time-travel query latency",
		"durable RIB history: 100k+ events through dedup and rotation; StateAt/Between/DiffPoPs replay from the log")

	const (
		events    = 120_000
		nPrefixes = 2_048
	)
	dir, err := os.MkdirTemp("", "vbgp-bench-history-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	store, err := history.Open(history.Config{
		Dir:                 dir,
		QueueSize:           1 << 15,
		MaintenanceInterval: -1, // no background clock: the stream's timestamps are synthetic
		Registry:            telemetry.NewRegistry(),
	})
	if err != nil {
		return err
	}
	defer store.Close()

	// The workload: nPrefixes timelines of alternating announce and
	// withdraw legs, observed from two PoPs, spread over a synthetic
	// hour. Every event is distinct content, so stored == ingested and
	// the measurement is pure append path.
	prefixes := make([]netip.Prefix, nPrefixes)
	for i := range prefixes {
		prefixes[i] = netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i >> 8), byte(i), 0}), 24)
	}
	base := time.Now().Add(-time.Hour)
	step := time.Hour / events
	pops := [2]string{"amsix", "seattle"}
	ev := func(i int) telemetry.Event {
		return telemetry.Event{
			Kind: telemetry.EventRouteMonitoring, Time: base.Add(time.Duration(i) * step),
			PoP: pops[i%2], Peer: "bench", PeerASN: 61574,
			Prefix:   prefixes[i%nPrefixes],
			PathID:   uint32(i / nPrefixes), // distinct content per leg
			NextHop:  netip.AddrFrom4([4]byte{100, 65, 0, 2}),
			ASPath:   []uint32{61574, uint32(1000 + i%7)},
			Withdraw: (i/nPrefixes)%2 == 1,
		}
	}

	start := time.Now()
	for i := 0; i < events; i++ {
		// Observe is lossy by design; the bench applies backpressure so
		// every event lands and the throughput number means "stored".
		for !store.Observe(ev(i)) {
			time.Sleep(10 * time.Microsecond)
		}
	}
	if !store.Drain(60 * time.Second) {
		return fmt.Errorf("history store did not drain the bench stream")
	}
	elapsed := time.Since(start)
	st := store.Stats()
	if st.Stored < 100_000 {
		return fmt.Errorf("bench stored only %d events, want >= 100k", st.Stored)
	}
	ingestRate := float64(events) / elapsed.Seconds()
	fmt.Printf("ingest: %d events in %s (%.0f events/s), %d segments, %.1f MB sealed\n",
		events, elapsed.Round(time.Millisecond), ingestRate, st.Segments, float64(st.SealedBytes)/1e6)

	// Query latency against the populated log. Each probe hits a
	// different prefix and a mid-stream instant, so replay cost covers
	// index lookup across every segment plus state folding.
	mid := base.Add(30 * time.Minute)
	end := base.Add(time.Hour)
	measure := func(what string, iters int, fn func(i int) error) (float64, error) {
		qStart := time.Now()
		for i := 0; i < iters; i++ {
			if err := fn(i); err != nil {
				return 0, fmt.Errorf("%s: %w", what, err)
			}
		}
		ns := float64(time.Since(qStart).Nanoseconds()) / float64(iters)
		fmt.Printf("%-10s %10.0f ns/op  (%d iterations)\n", what, ns, iters)
		return ns, nil
	}
	stateNs, err := measure("state-at", 2000, func(i int) error {
		_, err := store.StateAt(prefixes[(i*37)%nPrefixes], mid)
		return err
	})
	if err != nil {
		return err
	}
	betweenNs, err := measure("between", 2000, func(i int) error {
		_, err := store.Between(prefixes[(i*37)%nPrefixes], base, end)
		return err
	})
	if err != nil {
		return err
	}
	diffNs, err := measure("diff-pops", 5, func(int) error {
		_, err := store.DiffPoPs("amsix", "seattle", mid)
		return err
	})
	if err != nil {
		return err
	}

	record("history", map[string]any{
		"events": events, "prefixes": nPrefixes,
		"segments": st.Segments, "sealed_bytes": st.SealedBytes,
		"stored": st.Stored, "deduped": st.Deduped,
	},
		benchSample{Name: "ingest", RoutesPerSec: ingestRate},
		benchSample{Name: "state-at", NsPerOp: stateNs},
		benchSample{Name: "between", NsPerOp: betweenNs},
		benchSample{Name: "diff-pops", NsPerOp: diffNs},
	)
	return nil
}
