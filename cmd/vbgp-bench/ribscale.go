package main

import (
	"fmt"
	"math/bits"
	"net/netip"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bgp"
	"repro/internal/pipe"
	"repro/internal/rib"
)

// ribscale measures the million-route table architecture: sharded RIB
// install throughput, end-to-end convergence (install + batched
// propagation over a live session), and concurrent lookups against the
// lock-free FIB snapshot. The shards=1 / per-route samples reproduce
// the pre-sharding architecture as the baseline of the speedup figures.
func ribscale(int) error {
	header("RIB scale — sharded tables, batched propagation, FIB snapshots",
		"AMS-IX PoP holds 2.7M routes (§6); table and export paths must scale past 1M routes")
	return ribscaleSweep(ribscaleParams{
		Shards:    []int{1, 16},
		Routes:    []int{1 << 18, 1 << 20},
		Writers:   []int{1, 8},
		LookupOps: 1 << 21,
	})
}

// ribscaleParams sizes one sweep; TestBenchSanity runs a small one.
type ribscaleParams struct {
	Shards    []int
	Routes    []int
	Writers   []int
	LookupOps int
}

// ribscalePrefixes generates n distinct /24s whose leading bits are
// uniform (bit-reversed counter), so every shard count sees an even
// spread.
func ribscalePrefixes(n int) []netip.Prefix {
	out := make([]netip.Prefix, n)
	for i := range out {
		v := bits.Reverse32(uint32(i))
		a := netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), 0})
		out[i] = netip.PrefixFrom(a, 24)
	}
	return out
}

// ribscalePaths builds one path per prefix, slab-backed so the fixture
// is a handful of large heap objects instead of a million small ones —
// GC cycles during the timed phases then spend their time on the table
// under test, not on scanning the test inputs.
func ribscalePaths(pfx []netip.Prefix, attrs *bgp.PathAttrs) []*rib.Path {
	slab := make([]rib.Path, len(pfx))
	out := make([]*rib.Path, len(pfx))
	for i, p := range pfx {
		slab[i] = rib.Path{Prefix: p, Peer: "bench", Attrs: attrs, EBGP: true, Seq: uint64(i + 1)}
		out[i] = &slab[i]
	}
	return out
}

// ribscaleBatch is the route-block size of the batched paths: AddBatch
// chunks and SendBatch blocks (the latter packs them further into
// 4096-byte UPDATE frames).
const ribscaleBatch = 2048

// ribscaleTrials runs fn that many times and keeps the best throughput;
// back-to-back trials bound scheduler and GC noise on a busy host.
const ribscaleTrials = 2

func ribscaleSweep(p ribscaleParams) error {
	maxRoutes := p.Routes[len(p.Routes)-1]
	pfx := ribscalePrefixes(maxRoutes)
	attrs := &bgp.PathAttrs{
		Origin: bgp.OriginIGP, HasOrigin: true,
		ASPath:  []bgp.ASPathSegment{{Type: bgp.ASSequence, ASNs: []uint32{65010}}},
		NextHop: netip.MustParseAddr("10.0.0.2"),
	}
	var samples []benchSample

	// Phase 1 — install throughput: batched adds across the shard ×
	// routes × writers grid, plus the pre-sharding per-route baseline.
	install := make(map[[2]int]float64) // [shards, routes] at max writers
	var baseline1 float64
	for _, routes := range p.Routes {
		basePaths := ribscalePaths(pfx[:routes], attrs)
		runtime.GC()
		t0 := time.Now()
		tbl := rib.NewTableShards("ribscale-base", 1)
		for _, path := range basePaths {
			tbl.Add(path)
		}
		baseline1 = float64(routes) / time.Since(t0).Seconds()
		samples = append(samples, benchSample{
			Name: fmt.Sprintf("conv-install-baseline/routes=%d", routes), RoutesPerSec: baseline1,
		})
		for _, shards := range p.Shards {
			for _, writers := range p.Writers {
				paths := ribscalePaths(pfx[:routes], attrs)
				tbl := rib.NewTableShards("ribscale", shards)
				runtime.GC()
				t0 := time.Now()
				var wg sync.WaitGroup
				per := routes / writers
				for w := 0; w < writers; w++ {
					wg.Add(1)
					go func(chunk []*rib.Path) {
						defer wg.Done()
						for i := 0; i < len(chunk); i += ribscaleBatch {
							tbl.AddBatch(chunk[i:min(i+ribscaleBatch, len(chunk))])
						}
					}(paths[w*per : (w+1)*per])
				}
				wg.Wait()
				rps := float64(routes) / time.Since(t0).Seconds()
				install[[2]int{shards, routes}] = max(install[[2]int{shards, routes}], rps)
				samples = append(samples, benchSample{
					Name:         fmt.Sprintf("conv-install/shards=%d/routes=%d/writers=%d", shards, routes, writers),
					RoutesPerSec: rps,
				})
				if tbl.PathCount() != routes {
					return fmt.Errorf("ribscale: installed %d of %d routes (shards=%d writers=%d)",
						tbl.PathCount(), routes, shards, writers)
				}
			}
		}
	}

	// Phase 2 — end-to-end convergence: full table installed AND
	// propagated to an established peer session. Baseline is the
	// pre-batching path (per-route Add + per-route Send on shards=1);
	// the batched path installs shard-bucketed blocks and ships pooled
	// SendBatch blocks.
	converge := func(shards int, batched bool) (float64, error) {
		best := 0.0
		for trial := 0; trial < ribscaleTrials; trial++ {
			runtime.GC()
			rps, err := ribscaleConverge(pfx[:maxRoutes], attrs, shards, batched)
			if err != nil {
				return 0, err
			}
			best = max(best, rps)
		}
		return best, nil
	}
	e2eBase, err := converge(1, false)
	if err != nil {
		return err
	}
	e2eBatched, err := converge(p.Shards[len(p.Shards)-1], true)
	if err != nil {
		return err
	}
	samples = append(samples,
		benchSample{Name: fmt.Sprintf("conv-e2e-baseline/shards=1/routes=%d", maxRoutes), RoutesPerSec: e2eBase},
		benchSample{Name: fmt.Sprintf("conv-e2e-batched/shards=%d/routes=%d", p.Shards[len(p.Shards)-1], maxRoutes), RoutesPerSec: e2eBatched},
		benchSample{Name: "convergence-speedup", Value: e2eBatched / e2eBase, Unit: "x"},
	)

	// Phase 3 — concurrent lookups at the largest table: the locked
	// pre-sharding path (shards=1, no snapshot) vs the FIB-snapshot
	// path. The write-lock counter delta across both measurements is
	// the satellite guard: pure lookups must never take a shard write
	// lock.
	readers := runtime.GOMAXPROCS(0)
	addrs := make([]netip.Addr, maxRoutes)
	for i, pf := range pfx[:maxRoutes] {
		raw := pf.Addr().As4()
		raw[3] = 9
		addrs[i] = netip.AddrFrom4(raw)
	}
	lockedTbl := rib.NewTableShards("ribscale-locked", 1)
	snapTbl := rib.NewTableShards("ribscale-snap", p.Shards[len(p.Shards)-1])
	for i := 0; i < maxRoutes; i += ribscaleBatch {
		chunk := ribscalePaths(pfx[i:min(i+ribscaleBatch, maxRoutes)], attrs)
		lockedTbl.AddBatch(chunk)
		snapTbl.AddBatch(chunk)
	}
	snapTbl.BuildSnapshot()
	wlBefore := lockedTbl.Stats().WriteLocks + snapTbl.Stats().WriteLocks

	measure := func(tbl *rib.Table) float64 {
		var wg sync.WaitGroup
		per := p.LookupOps / readers
		t0 := time.Now()
		for w := 0; w < readers; w++ {
			wg.Add(1)
			go func(idx int) {
				defer wg.Done()
				for i := 0; i < per; i++ {
					if tbl.Lookup(addrs[idx&(maxRoutes-1)]) == nil {
						panic("ribscale: lookup miss")
					}
					idx += 2654435761 // Fibonacci-hash stride: full-period pseudo-random order
				}
			}(w * 131)
		}
		wg.Wait()
		return float64(per*readers) / time.Since(t0).Seconds()
	}
	measureBest := func(tbl *rib.Table) float64 {
		best := 0.0
		for trial := 0; trial < ribscaleTrials; trial++ {
			runtime.GC()
			best = max(best, measure(tbl))
		}
		return best
	}
	lockedRPS := measureBest(lockedTbl)
	snapRPS := measureBest(snapTbl)
	wlDelta := lockedTbl.Stats().WriteLocks + snapTbl.Stats().WriteLocks - wlBefore
	if st := snapTbl.Stats(); st.SnapshotLookups == 0 {
		return fmt.Errorf("ribscale: snapshot table served no snapshot lookups (version %d, snap %d)",
			st.Version, st.SnapshotVersion)
	}
	samples = append(samples,
		benchSample{Name: fmt.Sprintf("lookup-locked/shards=1/routes=%d", maxRoutes), RoutesPerSec: lockedRPS},
		benchSample{Name: fmt.Sprintf("lookup-snapshot/shards=%d/routes=%d", p.Shards[len(p.Shards)-1], maxRoutes), RoutesPerSec: snapRPS},
		benchSample{Name: "lookup-speedup", Value: snapRPS / lockedRPS, Unit: "x"},
		benchSample{Name: "lookup-write-locks", Value: float64(wlDelta), Unit: "locks"},
	)

	fmt.Printf("install: per-route S=1 %.0f routes/s; batched S=%d %.0f routes/s\n",
		baseline1, p.Shards[len(p.Shards)-1], install[[2]int{p.Shards[len(p.Shards)-1], maxRoutes}])
	fmt.Printf("convergence (install+propagate %d routes): baseline %.0f routes/s, batched %.0f routes/s (%.2fx)\n",
		maxRoutes, e2eBase, e2eBatched, e2eBatched/e2eBase)
	fmt.Printf("lookups (%d readers, %d routes): locked %.0f/s, snapshot %.0f/s (%.2fx), write-locks during lookups: %d\n",
		readers, maxRoutes, lockedRPS, snapRPS, snapRPS/lockedRPS, wlDelta)
	fmt.Printf("shape check (>=2x convergence and lookup speedups, zero lookup write-locks): %v\n",
		e2eBatched/e2eBase >= 2 && snapRPS/lockedRPS >= 2 && wlDelta == 0)

	record("ribscale", map[string]any{
		"shards": p.Shards, "routes": p.Routes, "writers": p.Writers,
		"lookup_ops": p.LookupOps, "readers": readers,
	}, samples...)
	return nil
}

// ribscaleConverge installs every prefix into a table and propagates it
// over an established BGP session, returning routes/s from start to the
// peer having decoded the full table. batched selects the sharded
// AddBatch + SendBatch path; false replays the pre-batching per-route
// architecture.
func ribscaleConverge(pfx []netip.Prefix, attrs *bgp.PathAttrs, shards int, batched bool) (float64, error) {
	ca, cb := pipe.New()
	var established sync.WaitGroup
	established.Add(2)
	var got atomic.Int64
	done := make(chan struct{})
	total := int64(len(pfx))
	sa := bgp.NewSession(ca, bgp.Config{
		LocalASN: 65001, RemoteASN: 65010, LocalID: netip.MustParseAddr("10.0.0.1"),
		OnEstablished: func() { established.Done() },
	})
	sb := bgp.NewSession(cb, bgp.Config{
		LocalASN: 65010, RemoteASN: 65001, LocalID: netip.MustParseAddr("10.0.0.2"),
		OnEstablished: func() { established.Done() },
		OnUpdate: func(u *bgp.Update) {
			if got.Add(int64(len(u.NLRI))) == total {
				close(done)
			}
		},
	})
	go sa.Run()
	go sb.Run()
	defer sa.Close()
	defer sb.Close()
	established.Wait()

	updates := make([]*bgp.Update, len(pfx))
	updSlab := make([]bgp.Update, len(pfx))
	nlriSlab := make([]bgp.NLRI, len(pfx))
	for i, p := range pfx {
		nlriSlab[i] = bgp.NLRI{Prefix: p}
		updSlab[i] = bgp.Update{Attrs: attrs, NLRI: nlriSlab[i : i+1 : i+1]}
		updates[i] = &updSlab[i]
	}
	paths := ribscalePaths(pfx, attrs)
	tbl := rib.NewTableShards("ribscale-e2e", shards)

	runtime.GC()
	t0 := time.Now()
	if batched {
		for i := 0; i < len(pfx); i += ribscaleBatch {
			end := min(i+ribscaleBatch, len(pfx))
			tbl.AddBatch(paths[i:end])
			if err := sa.SendBatch(updates[i:end]); err != nil {
				return 0, fmt.Errorf("ribscale: batched send: %w", err)
			}
		}
	} else {
		for i := range pfx {
			tbl.Add(paths[i])
			if err := sa.Send(updates[i]); err != nil {
				return 0, fmt.Errorf("ribscale: send: %w", err)
			}
		}
	}
	select {
	case <-done:
	case <-time.After(10 * time.Minute):
		return 0, fmt.Errorf("ribscale: convergence stalled at %d/%d routes", got.Load(), total)
	}
	return float64(total) / time.Since(t0).Seconds(), nil
}
