package main

import (
	"fmt"
	"net/netip"
	"strings"
	"time"

	"repro/internal/inet"
	"repro/internal/telemetry"
	"repro/peering"
)

// monitor exercises the BMP-style monitoring station (RFC 7854 in
// spirit): it brings up a one-PoP platform, runs an experiment through
// announce/withdraw/session-stop churn, requests a stats report from
// the router, and prints the station's per-peer view plus the event
// accounting of the bounded queue.
func monitor() error {
	header("monitoring station — BMP-style event feed",
		"PeerUp/PeerDown/RouteMonitoring/StatsReport per neighbor; lossy bounded queue with drop accounting")

	cfg := inet.DefaultGenConfig()
	cfg.Tier2 = 8
	cfg.Edges = 40
	topo := inet.Generate(cfg)
	platform := peering.NewPlatform(peering.PlatformConfig{ASN: 47065, Topology: topo})
	pop, err := platform.AddPoP(peering.PoPConfig{
		Name: "amsix", RouterID: netip.MustParseAddr("198.51.100.1"),
		LocalPool: netip.MustParsePrefix("127.65.0.0/16"),
		ExpLAN:    netip.MustParsePrefix("100.65.0.0/24"),
	})
	if err != nil {
		return err
	}
	if _, err := pop.ConnectTransit(1000, 20); err != nil {
		return err
	}
	if _, err := pop.ConnectPeer(10000, 20); err != nil {
		return err
	}
	if err := platform.Submit(peering.Proposal{
		Name: "bench", Owner: "bench", Plan: "monitoring-station exercise",
		Prefixes: []netip.Prefix{netip.MustParsePrefix("184.164.224.0/23")},
		ASNs:     []uint32{61574},
	}); err != nil {
		return err
	}
	key, err := platform.Approve("bench", nil)
	if err != nil {
		return err
	}
	client := peering.NewClient("bench", key, 61574)
	if err := client.OpenTunnel(pop); err != nil {
		return err
	}
	if err := client.StartBGP("amsix"); err != nil {
		return err
	}
	if err := client.WaitEstablished("amsix", 5*time.Second); err != nil {
		return err
	}
	if err := client.Announce("amsix", netip.MustParsePrefix("184.164.224.0/24")); err != nil {
		return err
	}
	if err := client.Announce("amsix", netip.MustParsePrefix("184.164.225.0/24")); err != nil {
		return err
	}
	if err := client.Withdraw("amsix", netip.MustParsePrefix("184.164.225.0/24"), 0); err != nil {
		return err
	}
	// Stop the experiment session so the report shows a peer-down too.
	if err := client.StopBGP("amsix"); err != nil {
		return err
	}
	pop.Router.EmitStatsReport()
	platform.WaitMonitorDrained(3 * time.Second)

	em, st := platform.Monitor(), platform.Station()
	fmt.Print(st.Report())
	fmt.Printf("\nevents: accepted %d, dropped %d, processed %d (queue cap %d)\n",
		em.Accepted(), em.Dropped(), st.Processed(), telemetry.DefaultQueueSize)
	printMetricsSnapshot("telemetry_")
	record("monitor", map[string]any{"queue_cap": telemetry.DefaultQueueSize},
		benchSample{Name: "accepted", Value: float64(em.Accepted()), Unit: "events"},
		benchSample{Name: "dropped", Value: float64(em.Dropped()), Unit: "events"},
		benchSample{Name: "processed", Value: float64(st.Processed()), Unit: "events"})
	return nil
}

// printMetricsSnapshot dumps the default registry's series whose names
// match any prefix — the post-run counters the benches accumulate.
func printMetricsSnapshot(prefixes ...string) {
	matched := false
	for _, line := range strings.Split(telemetry.Default().Text(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		for _, p := range prefixes {
			if strings.HasPrefix(line, p) {
				if !matched {
					fmt.Println("metrics snapshot:")
					matched = true
				}
				fmt.Printf("  %s\n", line)
				break
			}
		}
	}
}
