// Command vbgp-bench regenerates every table and figure of the paper's
// evaluation and prints paper-vs-measured comparisons.
//
// Usage:
//
//	vbgp-bench [-fig NAME|all] [-scale N]
//
// Run with -fig list (or any unknown name) to see the figures; they are
// defined once, in order, in the figures table below.
//
// Absolute numbers differ from the paper (the substrate is an in-memory
// simulator, not BIRD on a server at AMS-IX); the comparisons check the
// shapes the paper claims: linear growth, configuration orderings, and
// envelope ranges.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/eval"
)

// figures is the single ordered registry of every experiment: the name
// accepted by -fig, and the function that runs it (taking the -scale
// downscale factor, which most figures ignore). "all" runs them in this
// order. Add a figure here and nowhere else.
var figures = []struct {
	name string
	fn   func(scale int) error
}{
	{"6a", func(int) error { return fig6a() }},
	{"6b", func(int) error { return fig6b() }},
	{"backbone", func(int) error { return backbone() }},
	{"amsix", amsix},
	{"updates", func(int) error { return updates() }},
	{"footprint", footprint},
	{"monitor", func(int) error { return monitor() }},
	{"chaos", func(int) error { return chaosSoak() }},
	{"rov", func(int) error { return rov() }},
	{"damping", damping},
	{"history", func(int) error { return historyBench() }},
	{"ribscale", ribscale},
	{"catchment", catchmentFig},
	{"ctlrecover", func(int) error { return ctlrecoverFig() }},
}

func figureNames() string {
	names := make([]string, 0, len(figures)+1)
	names = append(names, "all")
	for _, f := range figures {
		names = append(names, f.name)
	}
	return strings.Join(names, "|")
}

func main() {
	fig := flag.String("fig", "all", "which experiment to run: "+figureNames())
	scale := flag.Int("scale", 10, "downscale factor for full-footprint experiments")
	flag.Parse()

	matched := false
	for _, f := range figures {
		if *fig != "all" && *fig != f.name {
			continue
		}
		matched = true
		if err := f.fn(*scale); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", f.name, err)
			os.Exit(1)
		}
		fmt.Println()
	}
	if !matched {
		fmt.Fprintf(os.Stderr, "unknown figure %q (want %s)\n", *fig, figureNames())
		os.Exit(2)
	}
}

func header(title, paper string) {
	fmt.Printf("=== %s ===\n", title)
	fmt.Printf("paper: %s\n", paper)
}

func fig6a() error {
	header("Figure 6a — memory vs known routes",
		"linear growth, ~327 B/route, ordering control < data < data+default; 32 GiB ~ 100M routes")
	sizes := []int{50000, 100000, 200000}
	res := eval.MeasureFig6a(sizes, 20)
	fmt.Printf("%-45s", "routes:")
	for _, n := range sizes {
		fmt.Printf("%12d", n)
	}
	fmt.Printf("%14s\n", "B/route")
	for _, cfg := range eval.Fig6aConfigs {
		fmt.Printf("%-45s", cfg)
		for _, pt := range res.Curves[cfg] {
			fmt.Printf("%10.1fMB", float64(pt.Bytes)/1e6)
		}
		fmt.Printf("%14.0f\n", res.BytesPerRoute(cfg))
	}
	bpr := res.BytesPerRoute("per-interconnection-data-plane")
	fmt.Printf("measured: %0.f B/route => 32 GiB supports ~%.0fM routes (paper: ~100M at 327 B/route)\n",
		bpr, 32*1024*1024*1024/bpr/1e6)
	ok := res.BytesPerRoute("control-plane") < res.BytesPerRoute("per-interconnection-data-plane") &&
		res.BytesPerRoute("per-interconnection-data-plane") < res.BytesPerRoute("per-interconnection-data-plane-with-default")
	fmt.Printf("shape check (ordering holds): %v\n", ok)
	printMetricsSnapshot("rib_")
	samples := make([]benchSample, 0, len(eval.Fig6aConfigs))
	for _, cfg := range eval.Fig6aConfigs {
		samples = append(samples, benchSample{Name: cfg, Value: res.BytesPerRoute(cfg), Unit: "B/route"})
	}
	record("6a", map[string]any{"sizes": sizes, "trials": 20}, samples...)
	return nil
}

func fig6b() error {
	header("Figure 6b — CPU vs update rate",
		"linear growth; accept < single-router < multi-router; thousands of updates/s on one core")
	res := eval.MeasureFig6b(1 << 17)
	rates := []float64{500, 1000, 2000, 4000}
	fmt.Printf("%-22s%14s", "config", "per-update")
	for _, r := range rates {
		fmt.Printf("%12.0f/s", r)
	}
	fmt.Println()
	for _, cfg := range eval.Fig6bConfigs {
		fmt.Printf("%-22s%14s", cfg, res.PerUpdate[cfg])
		for _, r := range rates {
			fmt.Printf("%13.2f%%", 100*res.CPUAtRate(cfg, r))
		}
		fmt.Println()
	}
	ok := res.PerUpdate["accept"] < res.PerUpdate["single-router-vbgp"] &&
		res.PerUpdate["single-router-vbgp"] <= res.PerUpdate["multi-router-vbgp"]
	fmt.Printf("shape check (ordering holds): %v\n", ok)
	fmt.Printf("max sustainable rate (single-router): %.0f updates/s on one core\n",
		1/res.PerUpdate["single-router-vbgp"].Seconds())
	printMetricsSnapshot("bgp_fsm_", "policy_", "rib_adds", "rib_withdraws", "core_nexthop_")
	samples := make([]benchSample, 0, len(eval.Fig6bConfigs))
	for _, cfg := range eval.Fig6bConfigs {
		samples = append(samples, benchSample{
			Name: cfg, NsPerOp: float64(res.PerUpdate[cfg].Nanoseconds()),
			RoutesPerSec: 1 / res.PerUpdate[cfg].Seconds(),
		})
	}
	record("6b", map[string]any{"updates": 1 << 17}, samples...)
	return nil
}

func backbone() error {
	header("§6 backbone throughput (iperf3 between PoP pairs)",
		"min 60, avg ~400, max 750 Mbps across all PoP pairs")
	res, err := eval.MeasureBackbone(13, 47065)
	if err != nil {
		return err
	}
	fmt.Printf("pairs measured: %d\n", len(res.Pairs))
	fmt.Printf("measured: min %.0f, avg %.0f, max %.0f Mbps\n", res.Min, res.Avg, res.Max)
	fmt.Printf("shape check (within provisioned envelope 60-750): %v\n",
		res.Min >= 60*0.5 && res.Max <= 750*1.01)
	record("backbone", map[string]any{"pops": 13, "pairs": len(res.Pairs)},
		benchSample{Name: "min", Value: res.Min, Unit: "Mbps"},
		benchSample{Name: "avg", Value: res.Avg, Unit: "Mbps"},
		benchSample{Name: "max", Value: res.Max, Unit: "Mbps"})
	return nil
}

func amsix(scale int) error {
	header("§6 AMS-IX scale",
		"854 peer ASes (106 bilateral, 4 route servers), 2.7M routes on a commodity server")
	res, err := eval.MeasureAMSIX(scale, 40)
	if err != nil {
		return err
	}
	fmt.Printf("scale: 1/%d of AMS-IX\n", scale)
	fmt.Printf("members: %d (bilateral %d), route servers: %d\n", res.Members, res.Bilateral, res.RouteServers)
	fmt.Printf("routes loaded through live RS sessions: %d\n", res.Routes)
	fmt.Printf("heap: %.1f MB (%.0f B/route)\n", float64(res.HeapBytes)/1e6, res.BytesPerRoute)
	fmt.Printf("extrapolated to the paper's 2.7M routes: %.1f GB (paper: fits a 32 GiB server)\n",
		res.BytesPerRoute*2.7e6/1e9)
	record("amsix", map[string]any{"scale": scale, "members": res.Members, "route_servers": res.RouteServers},
		benchSample{Name: "routes", Value: float64(res.Routes), Unit: "routes"},
		benchSample{Name: "bytes-per-route", Value: res.BytesPerRoute, Unit: "B/route"})
	return nil
}

func updates() error {
	header("§6 AMS-IX update load (18h trace)",
		"mean 21.8 updates/s, p99 ~400 updates/s, handled with headroom")
	res := eval.MeasureUpdateLoad()
	fmt.Printf("mean %.1f upd/s -> %.3f%% CPU; p99 %.0f upd/s -> %.2f%% CPU\n",
		res.MeanRate, 100*res.MeanCPU, res.P99Rate, 100*res.P99CPU)
	fmt.Printf("shape check (p99 well under one core): %v\n", res.P99CPU < 0.5)
	record("updates", nil,
		benchSample{Name: "mean", RoutesPerSec: res.MeanRate, Value: res.MeanCPU, Unit: "cpu-fraction"},
		benchSample{Name: "p99", RoutesPerSec: res.P99Rate, Value: res.P99CPU, Unit: "cpu-fraction"})
	return nil
}

func footprint(scale int) error {
	header("§4.2 footprint and connectivity",
		"13 PoPs, 8 ASNs, 40 prefixes; 923 peers (129 bilateral); AMS-IX 854/106, SIX 306/63, PHX 140/10, IX.br 129/6; 33% transit / 28% access / 23% content")
	res := eval.MeasureFootprint(scale)
	fmt.Printf("scale: 1/%d of the production footprint\n", scale)
	fmt.Printf("PoPs %d, ASNs %d, prefixes %d (configured per paper)\n", res.PoPs, res.ASNs, res.Prefixes)
	fmt.Printf("synthetic Internet: %d ASes\n", res.TopologySize)
	for _, name := range eval.SortedKeys(res.PerIXP) {
		c := res.PerIXP[name]
		fmt.Printf("  %-12s members %4d  bilateral %3d\n", name, c[0], c[1])
	}
	fmt.Printf("distinct peers: %d, bilateral total: %d\n", res.TotalPeers, res.Bilateral)
	fmt.Printf("peer type mix (%%):")
	for _, typ := range eval.SortedKeys(res.TypePercent) {
		fmt.Printf(" %s %.0f", typ, res.TypePercent[typ])
	}
	fmt.Println()
	fmt.Printf("union of peers' customer cones: %d ASes (reach of peer announcements)\n", res.PeerConeUnion)
	record("footprint", map[string]any{"scale": scale},
		benchSample{Name: "pops", Value: float64(res.PoPs), Unit: "pops"},
		benchSample{Name: "peers", Value: float64(res.TotalPeers), Unit: "peers"},
		benchSample{Name: "bilateral", Value: float64(res.Bilateral), Unit: "peers"},
		benchSample{Name: "peer-cone-union", Value: float64(res.PeerConeUnion), Unit: "ASes"})
	return nil
}
