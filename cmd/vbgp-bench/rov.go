package main

import (
	"fmt"
	"net/netip"

	"repro/internal/inet"
	"repro/internal/rpki"
)

// rov sweeps RPKI route-origin-validation deployment across the
// synthetic Internet and measures two attacks the platform's security
// layer must contain:
//
//   - a sub-prefix hijack from an unauthorized origin (RPKI-Invalid
//     under the victim's ROA): ROV-deploying ASes drop it at import, so
//     the hijacker's catchment shrinks as deployment grows;
//   - a route leak forging a path through a tier-1 to the true origin
//     (RPKI-Valid, invisible to ROV): only the tier-1s' Peerlock rules
//     catch it, at every deployment fraction.
//
// Each fraction rebuilds the topology so ROV is in force before the
// attacks propagate (ROV is an import policy; held routes stay put).
func rov() error {
	header("ROV sweep — origin validation + Peerlock route-leak defense",
		"hijack catchment shrinks monotonically with ROV deployment; origin-valid leaks pass ROV and are stopped by Peerlock")

	cfg := inet.DefaultGenConfig()
	cfg.Tier2 = 20
	cfg.Edges = 150

	const (
		victim   = uint32(10010) // sub-prefix hijack target
		attacker = uint32(10077) // originates victim's /25 (Invalid)
		origin2  = uint32(10034) // true origin the leak claims to reach
		leaker   = uint32(10123) // forges a path through tier-1 AS101
		seed     = int64(47065)
	)
	victimPfx := inet.PrefixForASN(victim)
	subPfx := netip.PrefixFrom(victimPfx.Addr(), victimPfx.Bits()+1)

	fractions := []float64{0, 0.25, 0.5, 0.75, 1.0}
	catchments := make([]int, 0, len(fractions))
	leakBlockedEverywhere := true

	fmt.Printf("%-10s%10s%12s%11s%12s%9s%9s%10s\n",
		"fraction", "rov-ASes", "hijacked", "rov-drops", "leak-drops", "valid", "invalid", "notfound")
	for _, f := range fractions {
		topo := inet.Generate(cfg)
		store := rpki.NewStore()
		for _, asn := range topo.ASNs() {
			for _, prefix := range topo.AS(asn).Originated {
				store.Add(rpki.ROA{Prefix: prefix, ASN: asn})
			}
		}
		topo.SetValidator(store)
		deployed := topo.DeployROV(f, seed)

		// Peerlock at the tier-1 clique: each tier-1 protects every
		// other — their ASNs never legitimately appear mid-path in a
		// route learned from anyone but the tier-1 itself.
		for i := 0; i < cfg.Tier1; i++ {
			for j := 0; j < cfg.Tier1; j++ {
				if i == j {
					continue
				}
				if err := topo.AddPeerlock(uint32(100+i), rpki.Peerlock{Protected: uint32(100 + j)}); err != nil {
					return err
				}
			}
		}

		// Attack 1: sub-prefix hijack. The victim's ROA covers the /24
		// at its own length, so any /25 announcement is Invalid no
		// matter who originates it.
		if err := topo.Originate(attacker, subPfx); err != nil {
			return err
		}
		hijacked := len(topo.ChoosersOf(subPfx, attacker))
		catchments = append(catchments, hijacked)

		// Attack 2: route leak. The leaker announces origin2's exact
		// prefix with a forged path through tier-1 AS101 ending at the
		// true origin — origin validation passes, Peerlock does not.
		if err := topo.OriginateWithPath(leaker, inet.PrefixForASN(origin2),
			[]uint32{leaker, 101, origin2}); err != nil {
			return err
		}
		rovDrops, leakDrops := topo.SecurityDrops()
		if leakDrops == 0 {
			leakBlockedEverywhere = false
		}
		valid, invalid, notFound := topo.ValidationCounts(store)
		fmt.Printf("%-10.2f%10d%12d%11d%12d%9d%9d%10d\n",
			f, deployed, hijacked, rovDrops, leakDrops, valid, invalid, notFound)
	}

	shrinks := true
	for i := 1; i < len(catchments); i++ {
		if catchments[i] > catchments[i-1] {
			shrinks = false
		}
	}
	full := catchments[len(catchments)-1] == 1 // only the hijacker itself
	fmt.Printf("shape check (catchment monotonically shrinks with deployment): %v\n", shrinks)
	fmt.Printf("shape check (full deployment confines the hijack to its origin): %v\n", full)
	fmt.Printf("shape check (Peerlock blocks the origin-valid leak at every fraction): %v\n", leakBlockedEverywhere)
	printMetricsSnapshot("rpki_")
	samples := make([]benchSample, 0, len(fractions))
	for i, f := range fractions {
		samples = append(samples, benchSample{
			Name: fmt.Sprintf("catchment@%.2f", f), Value: float64(catchments[i]), Unit: "ASes",
		})
	}
	record("rov", map[string]any{"fractions": fractions}, samples...)
	return nil
}
