package main

import (
	"fmt"

	"repro/internal/eval"
)

// catchmentFig sweeps PoP count × population size through the
// closed-loop TE controller: each cell stands up a full platform,
// resolves the anycast catchment of a cone-weighted client population
// from the routers' FIB snapshots, and steers it to equal per-PoP
// targets with community no-exports and prepends.
func catchmentFig(scale int) error {
	header("catchment — closed-loop anycast TE at population scale",
		"§4.5 steering knobs (community export control, prepending, announce/withdraw) close the loop from FIB-derived catchment maps to balanced per-PoP load")
	type cell struct {
		pops    int
		clients int
	}
	sweep := []cell{{3, 50000}, {5, 100000}, {5, 200000}}
	if scale > 10 {
		// Deep downscales keep only the smallest cell.
		sweep = sweep[:1]
	}
	fmt.Printf("%-22s %8s %8s %10s %10s %12s %10s\n",
		"cell", "rounds", "actions", "init-imb", "final-imb", "init-ratio", "wall")
	samples := make([]benchSample, 0, 2*len(sweep))
	for _, c := range sweep {
		res, err := eval.MeasureCatchment(c.pops, c.clients)
		if err != nil {
			return err
		}
		name := fmt.Sprintf("pops=%d/clients=%d", c.pops, c.clients)
		status := ""
		if !res.Converged {
			status = "  (did not converge)"
		}
		fmt.Printf("%-22s %8d %8d %10.3f %10.3f %11.1f:1 %10s%s\n",
			name, res.Rounds, res.Actions, res.InitialImbalance, res.FinalImbalance,
			res.InitialRatio, res.Wall.Round(res.Wall/100+1), status)
		samples = append(samples,
			benchSample{Name: name + "/rounds", Value: float64(res.Rounds), Unit: "rounds",
				NsPerOp: float64(res.Wall.Nanoseconds())},
			benchSample{Name: name + "/final-imbalance", Value: res.FinalImbalance, Unit: "fraction"})
	}
	fmt.Println("shape check (every cell converges within the round budget): see final-imb <= 0.10")
	record("catchment", map[string]any{"tolerance": 0.10, "max_rounds": 64}, samples...)
	return nil
}
