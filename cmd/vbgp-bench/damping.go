package main

import (
	"fmt"
	"net/netip"
	"strings"
	"time"

	"repro/internal/guard"
	"repro/internal/inet"
	"repro/internal/telemetry"
	"repro/peering"
)

// damping runs the convergence-safety sweep: the same flap workload —
// every prefix announced, withdrawn, and re-announced to the point of
// RFC 2439 suppression — against four platform configurations, showing
// how MRAI coalescing and flap damping each cut the update load the
// platform pushes to its neighbors, and how fast suppressed state
// drains once the storm stops. A final guarded run walks the overload
// watchdog through its shedding ladder on the same storm.
func damping(scale int) error {
	header("damping — flap-storm update load vs convergence-safety config",
		"damping + MRAI cut neighbor update load; suppressed prefixes drain after the storm; watchdog sheds and recovers")
	if scale < 1 {
		scale = 1
	}
	prefixes := 2000 / scale
	if prefixes < 50 {
		prefixes = 50
	}

	configs := []struct {
		name    string
		mrai    time.Duration
		damping *guard.DampingConfig
		guard   *peering.GuardConfig
	}{
		{"baseline", 0, nil, nil},
		{"mrai", 25 * time.Millisecond, nil, nil},
		{"damping", 0, &guard.DampingConfig{HalfLife: 150 * time.Millisecond}, nil},
		{"mrai+damping", 25 * time.Millisecond, &guard.DampingConfig{HalfLife: 150 * time.Millisecond}, nil},
	}

	fmt.Printf("flap workload: %d prefixes x 5 updates (announce, withdraw, announce, withdraw, announce)\n\n", prefixes)
	fmt.Printf("%-14s%14s%12s%12s%12s%12s\n",
		"config", "nbr-updates", "absorbed", "suppressed", "reused", "quiesce")

	var updatesOut []uint64
	for _, cfg := range configs {
		r, err := runDampingStorm(cfg.name, prefixes, cfg.mrai, cfg.damping, cfg.guard, nil)
		if err != nil {
			return err
		}
		updatesOut = append(updatesOut, r.updatesOut)
		fmt.Printf("%-14s%14d%12d%12.0f%12.0f%12s\n",
			cfg.name, r.updatesOut, r.absorbed, r.suppressed, r.reused, r.quiesce.Round(time.Millisecond))
	}

	fmt.Printf("\nshape check (MRAI alone cuts neighbor updates): %v\n", updatesOut[1] < updatesOut[0])
	fmt.Printf("shape check (damping alone cuts neighbor updates): %v\n", updatesOut[2] < updatesOut[0])
	fmt.Printf("shape check (combined is the quietest): %v\n",
		updatesOut[3] < updatesOut[1] && updatesOut[3] < updatesOut[2])

	// The shedding ladder on the same storm: low thresholds so the
	// watchdog visibly steps up under load and recovers after.
	gcfg := peering.DefaultGuardConfig()
	gcfg.SampleInterval = 50 * time.Millisecond
	gcfg.Health.Degraded = guard.Limits{UpdateRate: 200}
	gcfg.Health.Shedding = guard.Limits{UpdateRate: 1_000}
	gcfg.Health.RecoverSamples = 2
	var ladder []string
	gcfg.Health.OnChange = func(from, to guard.State, why string) {
		ladder = append(ladder, fmt.Sprintf("%s -> %s (%s)", from, to, why))
	}
	fmt.Printf("\noverload watchdog (degraded > %0.f upd/s, shedding > %0.f upd/s):\n",
		gcfg.Health.Degraded.UpdateRate, gcfg.Health.Shedding.UpdateRate)
	if _, err := runDampingStorm("guarded", prefixes,
		25*time.Millisecond, &guard.DampingConfig{HalfLife: 150 * time.Millisecond}, gcfg,
		func(p *peering.Platform) bool { return p.PoPHealth("amsix") == guard.Healthy }); err != nil {
		return err
	}
	for _, step := range ladder {
		fmt.Printf("  %s\n", step)
	}
	fmt.Printf("shape check (watchdog stepped up and recovered to healthy): %v\n",
		len(ladder) >= 2 && strings.Contains(ladder[len(ladder)-1], "-> healthy"))

	printMetricsSnapshot("guard_")
	samples := make([]benchSample, 0, len(configs))
	for i, cfg := range configs {
		samples = append(samples, benchSample{
			Name: cfg.name, Value: float64(updatesOut[i]), Unit: "neighbor-updates",
		})
	}
	record("damping", map[string]any{"prefixes": prefixes, "updates_per_prefix": 5}, samples...)
	return nil
}

type dampingStormResult struct {
	updatesOut uint64        // UPDATEs sent on the transit neighbor session
	absorbed   uint64        // adverts absorbed by MRAI coalescing
	suppressed float64       // prefixes driven past the suppress threshold
	reused     float64       // suppressed prefixes released by decay
	quiesce    time.Duration // time for the suppressed set to drain
}

// runDampingStorm builds a one-PoP platform in the given safety
// configuration, drives the flap workload through an experiment
// session, and measures the neighbor-facing update load plus the
// damping counters. waitRecovered, when set, is polled after the storm
// (for the guarded run, until the watchdog returns to healthy).
func runDampingStorm(name string, prefixes int, mrai time.Duration,
	dcfg *guard.DampingConfig, gcfg *peering.GuardConfig,
	waitRecovered func(*peering.Platform) bool) (dampingStormResult, error) {
	var res dampingStormResult
	cfg := inet.DefaultGenConfig()
	cfg.Tier2 = 8
	cfg.Edges = 30
	topo := inet.Generate(cfg)

	platform := peering.NewPlatform(peering.PlatformConfig{
		ASN: 47065, Topology: topo,
		NeighborMRAI: mrai, Damping: dcfg, Guard: gcfg,
	})
	defer platform.StopGuard()
	pop, err := platform.AddPoP(peering.PoPConfig{
		Name: "amsix", RouterID: netip.MustParseAddr("198.51.100.1"),
		LocalPool: netip.MustParsePrefix("127.65.0.0/16"),
		ExpLAN:    netip.MustParsePrefix("100.65.0.0/24"),
	})
	if err != nil {
		return res, err
	}
	transit, err := pop.ConnectTransit(1000, 10)
	if err != nil {
		return res, err
	}
	if err := platform.Submit(peering.Proposal{
		Name: name, Owner: "bench", Plan: "flap storm",
		Prefixes: []netip.Prefix{netip.MustParsePrefix("10.0.0.0/8")},
		ASNs:     []uint32{61574},
	}); err != nil {
		return res, err
	}
	key, err := platform.Approve(name, nil)
	if err != nil {
		return res, err
	}
	client := peering.NewClient(name, key, 61574)
	if err := client.OpenTunnel(pop); err != nil {
		return res, err
	}
	if err := client.StartBGP("amsix"); err != nil {
		return res, err
	}
	if err := client.WaitEstablished("amsix", 5*time.Second); err != nil {
		return res, err
	}

	reg := telemetry.Default()
	baseSuppressed := reg.Value("guard_damping_suppressed_total")
	baseReused := reg.Value("guard_damping_reused_total")
	baseProcessed := pop.Router.UpdatesProcessed()
	sess := transit.Session()
	baseOut := sess.UpdatesOut.Load()
	baseAbsorbed := sess.MRAISuppressed.Load()

	for i := 0; i < prefixes; i++ {
		pfx := netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i / 250), byte(i % 250), 0}), 24)
		for round := 0; round < 2; round++ {
			if err := client.Announce("amsix", pfx); err != nil {
				return res, err
			}
			if err := client.Withdraw("amsix", pfx, 0); err != nil {
				return res, err
			}
		}
		if err := client.Announce("amsix", pfx); err != nil {
			return res, err
		}
	}
	// Drain: the router has consumed the whole storm, and any paced
	// adverts still pending on the neighbor session have flushed.
	deadline := time.Now().Add(20 * time.Second)
	for pop.Router.UpdatesProcessed()-baseProcessed < uint64(prefixes*5) {
		if time.Now().After(deadline) {
			return res, fmt.Errorf("%s: router did not consume the storm", name)
		}
		time.Sleep(time.Millisecond)
	}
	if mrai > 0 {
		time.Sleep(2*mrai + 10*time.Millisecond)
	}

	// Quiesce: suppressed state drains by decay alone.
	start := time.Now()
	if dcfg != nil {
		for platform.Engine.Damper().SuppressedCount() > 0 {
			if time.Now().After(deadline) {
				return res, fmt.Errorf("%s: damper did not drain", name)
			}
			time.Sleep(5 * time.Millisecond)
		}
		res.quiesce = time.Since(start)
	}
	if waitRecovered != nil {
		for !waitRecovered(platform) {
			if time.Now().After(deadline) {
				return res, fmt.Errorf("%s: watchdog did not recover", name)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	res.updatesOut = sess.UpdatesOut.Load() - baseOut
	res.absorbed = sess.MRAISuppressed.Load() - baseAbsorbed
	res.suppressed = reg.Value("guard_damping_suppressed_total") - baseSuppressed
	res.reused = reg.Value("guard_damping_reused_total") - baseReused
	return res, nil
}
