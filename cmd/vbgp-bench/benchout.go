package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// benchSample is one measured data point of a figure: a named value
// with whichever of the canonical units applies.
type benchSample struct {
	Name string `json:"name"`
	// NsPerOp is the per-operation latency, when the sample measures one.
	NsPerOp float64 `json:"ns_per_op,omitempty"`
	// RoutesPerSec is the route/event throughput, when the sample
	// measures one.
	RoutesPerSec float64 `json:"routes_per_s,omitempty"`
	// Value carries any other measurement, described by Unit.
	Value float64 `json:"value,omitempty"`
	Unit  string  `json:"unit,omitempty"`
}

// record writes the figure's measurements to BENCH_<fig>.json in the
// working directory (CI uploads these as artifacts), overwriting any
// previous run. Recording is best-effort: a write failure is reported
// but never fails the figure itself.
func record(fig string, params map[string]any, samples ...benchSample) {
	out := struct {
		Fig     string         `json:"fig"`
		Params  map[string]any `json:"params,omitempty"`
		Samples []benchSample  `json:"samples"`
	}{fig, params, samples}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench record %s: %v\n", fig, err)
		return
	}
	path := "BENCH_" + fig + ".json"
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench record %s: %v\n", fig, err)
		return
	}
	fmt.Printf("wrote %s\n", path)
}
