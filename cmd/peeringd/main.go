// Command peeringd runs a complete simulated Peering platform: a
// synthetic Internet, a configurable set of PoPs with IXP and transit
// interconnections, a backbone mesh, and the management workflow. It
// prints the §4.2-style footprint summary and, with -watch, periodic
// status lines. With -metrics it serves the platform's plain-text
// metric exposition over HTTP for peering-cli or any scraper, plus the
// declarative control plane under /v1 (experiment CRUD, deploy verbs,
// fleet/RIB/health queries, and the /v1/watch SSE event stream) and a
// JSON index of every mounted endpoint at /. SIGINT/SIGTERM drain the
// API server — in-flight requests and watch streams — before the
// platform shuts down. The
// convergence-safety layer is opt-in: -damping enables RFC 2439
// route-flap damping, -mrai paces neighbor UPDATE batches, and -guard
// runs the overload watchdog whose per-PoP health states appear in the
// -watch output.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/netip"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/chaos"
	"repro/internal/guard"
	"repro/internal/history"
	"repro/internal/inet"
	"repro/internal/ixp"
	"repro/internal/rpki"
	"repro/internal/telemetry"
	"repro/peering"
)

func main() {
	pops := flag.Int("pops", 3, "number of PoPs")
	edges := flag.Int("edges", 200, "edge ASes in the synthetic Internet")
	members := flag.Int("ixp-members", 40, "members of the main exchange")
	bilateral := flag.Int("ixp-bilateral", 6, "bilateral sessions at the main exchange")
	routes := flag.Int("routes-per-neighbor", 25, "routes announced per neighbor")
	watch := flag.Duration("watch", 0, "keep running and print status at this interval (0 = exit after setup)")
	listen := flag.String("listen", "", "accept remote experiment tunnels on this TCP address (e.g. :1790)")
	metrics := flag.String("metrics", "", "serve the plain-text metrics exposition on this HTTP address (e.g. :9179)")
	chaosSpec := flag.String("chaos", "", `enable deterministic fault injection and session resilience: comma-separated spec of seed=N, rate=F (faults/min), duration=D, kinds=reset|stall-read|stall-write|corrupt|delay|link-flap|partition, classes=neighbor|experiment|tunnel|backbone|rtr (e.g. "seed=42,rate=6,kinds=reset|link-flap")`)
	rpkiOn := flag.Bool("rpki", false, "enable RPKI: sign every topology-originated prefix with a ROA, sync each PoP over RTR, and reject Invalid experiment announcements")
	rovFraction := flag.Float64("rov", 0.5, "fraction of topology ASes performing route origin validation (with -rpki)")
	dampingHalfLife := flag.Duration("damping", 0, "enable RFC 2439 route-flap damping with this half-life (e.g. 15s; 0 = off)")
	mrai := flag.Duration("mrai", 0, "pace neighbor UPDATE batches at this minimum route advertisement interval (0 = off)")
	guardOn := flag.Bool("guard", false, "run the overload watchdog: healthy/degraded/shedding states per PoP with load shedding")
	historyDir := flag.String("history", "", "record every route event into a durable segment log under this directory, enabling time-travel queries (/history/* with -metrics, peering-cli history)")
	historyRetention := flag.Duration("history-retention", 0, "delete sealed history segments older than this window (0 = keep everything)")
	stateDir := flag.String("state-dir", "", "persist the control plane's desired state (WAL + snapshot) under this directory; on startup the store is recovered from it, so experiment specs and deploy revisions survive a crash (with -metrics)")
	tePrefix := flag.String("te", "", "run closed-loop traffic engineering on this anycast prefix (e.g. 184.164.224.0/24): announce it at every PoP, resolve the catchment of -clients weighted clients, and steer per-PoP load to equal targets; serves /catchment and /te/status with -metrics (peering-cli catchment|te)")
	teClients := flag.Int("clients", 100000, "weighted clients placed across the synthetic Internet for -te catchment resolution")
	flag.Parse()

	var teAnycast netip.Prefix
	if *tePrefix != "" {
		p, err := netip.ParsePrefix(*tePrefix)
		if err != nil {
			log.Fatalf("bad -te prefix: %v", err)
		}
		teAnycast = p
	}

	var injector *chaos.Injector
	if *chaosSpec != "" {
		inj, err := parseChaosSpec(*chaosSpec)
		if err != nil {
			log.Fatalf("bad -chaos spec: %v", err)
		}
		injector = inj
	}

	cfg := inet.DefaultGenConfig()
	cfg.Edges = *edges
	topo := inet.Generate(cfg)
	if err := inet.Validate(topo); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthetic Internet: %d ASes (types: %v)\n", topo.Len(), topo.TypeCounts())

	var roas *rpki.Store
	if *rpkiOn {
		// Trust anchor: one ROA per topology-originated prefix, so every
		// legitimate route validates and any sub-prefix or wrong-origin
		// hijack comes out Invalid.
		roas = rpki.NewStore()
		for _, asn := range topo.ASNs() {
			for _, prefix := range topo.AS(asn).Originated {
				roas.Add(rpki.ROA{Prefix: prefix, ASN: asn})
			}
		}
	}

	pcfg := peering.PlatformConfig{ASN: 47065, Topology: topo, Chaos: injector, RPKI: roas, NeighborMRAI: *mrai}
	if teAnycast.IsValid() {
		pcfg.TE = &peering.TEConfig{Prefix: teAnycast, Clients: *teClients, Seed: 47065}
	}
	var hist *history.Store
	if *historyDir != "" {
		var err error
		hist, err = history.Open(history.Config{
			Dir: *historyDir, Retention: *historyRetention, Logf: log.Printf,
		})
		if err != nil {
			log.Fatalf("opening history store: %v", err)
		}
		pcfg.History = hist
		fmt.Printf("history: recording route events under %s (retention %v)\n", *historyDir, *historyRetention)
	}
	if *dampingHalfLife > 0 {
		pcfg.Damping = &guard.DampingConfig{HalfLife: *dampingHalfLife}
		fmt.Printf("damping: RFC 2439 flap damping on (half-life %s)\n", *dampingHalfLife)
	}
	if *guardOn {
		pcfg.Guard = peering.DefaultGuardConfig()
		pcfg.Guard.Health.Logf = log.Printf
		fmt.Println("guard: overload watchdog on (healthy/degraded/shedding)")
	}
	platform := peering.NewPlatform(pcfg)
	defer platform.StopGuard()
	if roas != nil {
		deployed := platform.DeployROV(*rovFraction, 47065)
		fmt.Printf("rpki: %d ROAs signed; %d/%d ASes validate origins\n", roas.Len(), deployed, topo.Len())
	}

	// The main exchange, AMS-IX style.
	x := ixp.New("AMS-IX", 64700, topo, netip.MustParsePrefix("80.249.208.0/21"))
	for i := 0; i < *members; i++ {
		if _, err := x.AddMember(uint32(10000+i), i < *bilateral); err != nil {
			log.Fatal(err)
		}
	}

	var popList []*peering.PoP
	for i := 0; i < *pops; i++ {
		name := fmt.Sprintf("pop%02d", i)
		pop, err := platform.AddPoP(peering.PoPConfig{
			Name:      name,
			RouterID:  netip.AddrFrom4([4]byte{198, 51, 100, byte(i + 1)}),
			LocalPool: netip.MustParsePrefix(fmt.Sprintf("127.%d.0.0/16", 65+i)),
			ExpLAN:    netip.MustParsePrefix(fmt.Sprintf("100.%d.0.0/24", 65+i)),
		})
		if err != nil {
			log.Fatal(err)
		}
		// Every PoP gets a transit; the first also joins the exchange.
		if _, err := pop.ConnectTransit(uint32(1000+i), *routes); err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			if err := pop.ConnectIXP(x, 2, *routes); err != nil {
				log.Fatal(err)
			}
		}
		popList = append(popList, pop)
	}
	// Full backbone mesh.
	for i := 0; i < len(popList); i++ {
		for j := i + 1; j < len(popList); j++ {
			if err := platform.ConnectBackbone(popList[i], popList[j],
				400e6, time.Duration(20+10*(i+j))*time.Millisecond); err != nil {
				log.Fatal(err)
			}
		}
	}

	// Wait for convergence: every router has routes from its neighbors.
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		total := 0
		for _, pop := range popList {
			total += pop.Router.RouteCount()
		}
		if total > 0 {
			time.Sleep(300 * time.Millisecond)
			break
		}
		time.Sleep(50 * time.Millisecond)
	}

	fmt.Printf("\n%-8s %10s %10s %10s\n", "pop", "neighbors", "routes", "forwarded")
	for _, pop := range popList {
		fmt.Printf("%-8s %10d %10d %10d\n", pop.Name,
			len(pop.Router.Neighbors()), pop.Router.RouteCount(), pop.Router.Forwarded.Load())
	}
	total, bi := x.MemberCounts()
	fmt.Printf("\nAMS-IX: %d members (%d bilateral)\n", total, bi)
	fmt.Printf("backbone links: %d\n", len(platform.BackboneLinks()))
	fmt.Println("platform is up; submit experiment proposals via the peering API")

	if injector != nil {
		fmt.Printf("chaos: injecting faults (%s); sessions run supervised with graceful restart\n", *chaosSpec)
		go injector.Run()
		defer injector.Stop()
	}

	var te *peering.TEController
	if teAnycast.IsValid() {
		var err error
		te, err = setupTE(platform, popList, teAnycast)
		if err != nil {
			log.Fatalf("te setup: %v", err)
		}
		fmt.Printf("te: steering %s across %d PoPs (%d weighted clients); inspect /te/status\n",
			teAnycast, len(popList), *teClients)
		go func() {
			res, err := te.Run()
			if err != nil {
				log.Printf("te: %v", err)
				return
			}
			if res.Converged {
				fmt.Printf("te: converged in %d rounds\n", len(res.Rounds))
			} else if res.Certificate != nil {
				fmt.Printf("te: infeasible after %d rounds: %s\n", len(res.Rounds), res.Certificate.Reason)
			}
		}()
	}

	// Shutdown is signal-driven: SIGINT/SIGTERM drain the API server
	// (in-flight requests and SSE watch streams) before the platform
	// comes down.
	shutdown := make(chan os.Signal, 1)
	signal.Notify(shutdown, os.Interrupt, syscall.SIGTERM)

	serving := false
	var srv *http.Server
	var cp *peering.ControlPlane
	if *metrics != "" {
		ln, err := net.Listen("tcp", *metrics)
		if err != nil {
			log.Fatal(err)
		}
		mux := http.NewServeMux()
		mux.HandleFunc("GET /metrics", serveMetrics)
		cp, err = peering.NewControlPlane(platform, peering.ControlPlaneConfig{
			Logf:     log.Printf,
			StateDir: *stateDir,
		})
		if err != nil {
			log.Fatal(err)
		}
		cp.API.Register(mux)
		endpoints := append([]string{"/metrics"}, cp.API.Endpoints()...)
		if hist != nil {
			registerHistoryHandlers(mux, hist)
			endpoints = append(endpoints, "/history/state", "/history/between", "/history/diff", "/history/stats")
		}
		if te != nil {
			registerTEHandlers(mux, platform, te)
			endpoints = append(endpoints, "/catchment", "/te/status")
		}
		// The root serves a JSON index of everything mounted; any other
		// unregistered path 404s (the "GET /{$}" pattern matches "/"
		// exactly instead of swallowing the whole tree).
		mux.HandleFunc("GET /{$}", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(map[string]any{"service": "peeringd", "endpoints": endpoints})
		})
		fmt.Printf("serving API on http://%s/ (metrics at /metrics, control plane at /v1)\n", ln.Addr())
		srv = &http.Server{Handler: mux}
		go func() {
			if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
				log.Fatal(err)
			}
		}()
		serving = true
	}

	if *listen != "" {
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("accepting remote experiment tunnels on %s (Client.DialTCP)\n", ln.Addr())
		go func() {
			if err := platform.ListenAndServe(ln); err != nil {
				log.Fatal(err)
			}
		}()
		serving = true
	}

	// stop drains everything in dependency order: close the control
	// plane first (ends the reconciler and every SSE stream), then let
	// the HTTP server finish in-flight requests, then the platform.
	stop := func() {
		fmt.Println("\nshutting down: draining API connections")
		if cp != nil {
			cp.Close()
		}
		if srv != nil {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			if err := srv.Shutdown(ctx); err != nil {
				log.Printf("http shutdown: %v", err)
			}
			cancel()
		}
		platform.Close()
	}

	if *watch <= 0 {
		if serving {
			<-shutdown
			stop()
		}
		return
	}
	tick := time.NewTicker(*watch)
	defer tick.Stop()
	for {
		select {
		case <-shutdown:
			stop()
			return
		case <-tick.C:
		}
		fmt.Fprintf(os.Stdout, "%s ", time.Now().Format(time.TimeOnly))
		for _, pop := range popList {
			if *guardOn {
				fmt.Printf("%s(routes=%d fwd=%d health=%s) ", pop.Name,
					pop.Router.RouteCount(), pop.Router.Forwarded.Load(), platform.PoPHealth(pop.Name))
			} else {
				fmt.Printf("%s(routes=%d fwd=%d) ", pop.Name, pop.Router.RouteCount(), pop.Router.Forwarded.Load())
			}
		}
		if hist != nil {
			st := hist.Stats()
			fmt.Printf("history(stored=%d deduped=%d dropped=%d segs=%d) ",
				st.Stored, st.Deduped, st.Dropped, st.Segments)
		}
		fmt.Println()
	}
}

// registerHistoryHandlers mounts the history store's query layer on the
// metrics mux as JSON endpoints, the transport peering-cli's history
// verb speaks:
//
//	/history/state?prefix=P[&at=RFC3339]
//	/history/between?prefix=P[&from=RFC3339][&to=RFC3339]
//	/history/diff?a=POP&b=POP[&at=RFC3339]
//	/history/stats
func registerHistoryHandlers(mux *http.ServeMux, hist *history.Store) {
	writeJSON := func(w http.ResponseWriter, v any) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(v); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	}
	parseTime := func(w http.ResponseWriter, r *http.Request, key string, fallback time.Time) (time.Time, bool) {
		s := r.FormValue(key)
		if s == "" {
			return fallback, true
		}
		at, err := time.Parse(time.RFC3339Nano, s)
		if err != nil {
			http.Error(w, fmt.Sprintf("bad %s: %v (want RFC 3339)", key, err), http.StatusBadRequest)
			return time.Time{}, false
		}
		return at, true
	}
	parsePrefix := func(w http.ResponseWriter, r *http.Request) (netip.Prefix, bool) {
		prefix, err := netip.ParsePrefix(r.FormValue("prefix"))
		if err != nil {
			http.Error(w, fmt.Sprintf("bad prefix: %v", err), http.StatusBadRequest)
			return netip.Prefix{}, false
		}
		return prefix, true
	}
	mux.HandleFunc("/history/state", func(w http.ResponseWriter, r *http.Request) {
		prefix, ok := parsePrefix(w, r)
		if !ok {
			return
		}
		at, ok := parseTime(w, r, "at", time.Now())
		if !ok {
			return
		}
		state, err := hist.StateAt(prefix, at)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, state)
	})
	mux.HandleFunc("/history/between", func(w http.ResponseWriter, r *http.Request) {
		prefix, ok := parsePrefix(w, r)
		if !ok {
			return
		}
		from, ok := parseTime(w, r, "from", time.Time{})
		if !ok {
			return
		}
		to, ok := parseTime(w, r, "to", time.Now())
		if !ok {
			return
		}
		events, err := hist.Between(prefix, from, to)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, events)
	})
	mux.HandleFunc("/history/diff", func(w http.ResponseWriter, r *http.Request) {
		a, b := r.FormValue("a"), r.FormValue("b")
		if a == "" || b == "" {
			http.Error(w, "want a=POP&b=POP", http.StatusBadRequest)
			return
		}
		at, ok := parseTime(w, r, "at", time.Now())
		if !ok {
			return
		}
		diff, err := hist.DiffPoPs(a, b, at)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, diff)
	})
	mux.HandleFunc("/history/stats", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, struct {
			history.Stats
			Vantages []string `json:"vantages"`
		}{hist.Stats(), hist.Vantages()})
	})
}

// parseChaosSpec builds a fault injector from the -chaos flag, a
// comma-separated list of key=value pairs: seed=N, rate=F (faults per
// minute), duration=D (per-fault duration, Go syntax), and
// "|"-separated kinds= and classes= filters.
func parseChaosSpec(spec string) (*chaos.Injector, error) {
	cfg := chaos.Config{Seed: 1, Rate: 6, Logf: log.Printf}
	for _, field := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return nil, fmt.Errorf("%q: want key=value", field)
		}
		switch key {
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("seed: %v", err)
			}
			cfg.Seed = n
		case "rate":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("rate: %v", err)
			}
			cfg.Rate = f
		case "duration":
			d, err := time.ParseDuration(val)
			if err != nil {
				return nil, fmt.Errorf("duration: %v", err)
			}
			cfg.DefaultDuration = d
		case "kinds":
			for _, name := range strings.Split(val, "|") {
				k, err := chaos.ParseKind(name)
				if err != nil {
					return nil, err
				}
				cfg.Kinds = append(cfg.Kinds, k)
			}
		case "classes":
			cfg.Classes = append(cfg.Classes, strings.Split(val, "|")...)
		default:
			return nil, fmt.Errorf("unknown key %q (want seed, rate, duration, kinds, classes)", key)
		}
	}
	return chaos.New(cfg), nil
}

// serveMetrics writes the default registry's exposition, the format
// peering-cli's metrics verb and any Prometheus-style scraper consume.
func serveMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := telemetry.Default().WriteText(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
