package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/netip"
	"time"

	"repro/peering"
)

// setupTE approves a built-in experiment for the anycast prefix and
// brings its client up at every PoP (tunnel + established BGP), then
// wires the closed-loop controller with the platform's TE defaults.
func setupTE(platform *peering.Platform, pops []*peering.PoP, prefix netip.Prefix) (*peering.TEController, error) {
	if err := platform.Submit(peering.Proposal{
		Name: "te", Owner: "operator", Plan: "closed-loop traffic engineering",
		Prefixes: []netip.Prefix{prefix},
		ASNs:     []uint32{61574},
	}); err != nil {
		return nil, err
	}
	key, err := platform.Approve("te", nil)
	if err != nil {
		return nil, err
	}
	client := peering.NewClient("te", key, 61574)
	for _, pop := range pops {
		if err := client.OpenTunnel(pop); err != nil {
			return nil, err
		}
		if err := client.StartBGP(pop.Name); err != nil {
			return nil, err
		}
		if err := client.WaitEstablished(pop.Name, 10*time.Second); err != nil {
			return nil, err
		}
	}
	return platform.NewTEController(client, nil)
}

// registerTEHandlers mounts the traffic-engineering inspection surface
// on the metrics mux, the transport peering-cli's catchment and te
// verbs speak:
//
//	/catchment            current catchment map for the TE population
//	/te/status            controller progress: rounds, shares, actions
func registerTEHandlers(mux *http.ServeMux, platform *peering.Platform, te *peering.TEController) {
	writeJSON := func(w http.ResponseWriter, v any) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(v); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	}
	mux.HandleFunc("/catchment", func(w http.ResponseWriter, r *http.Request) {
		prefix := platform.TE().Prefix
		if s := r.FormValue("prefix"); s != "" {
			p, err := netip.ParsePrefix(s)
			if err != nil {
				http.Error(w, fmt.Sprintf("bad prefix: %v", err), http.StatusBadRequest)
				return
			}
			prefix = p
		}
		m, err := platform.ResolveCatchments(prefix, te.Populations())
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, m)
	})
	mux.HandleFunc("/te/status", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, te.Status())
	})
}
