// Package repro is a from-scratch Go reproduction of "PEERING:
// Virtualizing BGP at the Edge for Research" (CoNEXT 2019).
//
// The public API lives in the peering subpackage; the paper's primary
// contribution (vBGP) is internal/core, and every substrate it depends
// on — the BGP protocol stack, RIBs, the layer-2 simulator, the
// enforcement engines, the synthetic Internet, IXPs, tunnels, the
// configuration pipeline — is implemented under internal/. See DESIGN.md
// for the system inventory and EXPERIMENTS.md for the reproduced
// evaluation.
package repro
