// Quickstart: bring up a one-PoP Peering platform against a synthetic
// Internet, get an experiment approved, and exercise the full loop the
// paper describes — receive every route via ADD-PATH, steer
// announcements with communities, and pick the egress neighbor per
// packet (paper Figs. 1 and 2).
package main

import (
	"fmt"
	"log"
	"net/netip"
	"time"

	"repro/internal/inet"
	"repro/peering"
)

func main() {
	// 1. A synthetic Internet: tier-1 clique, transit tier, edge ASes.
	cfg := inet.DefaultGenConfig()
	cfg.Tier2 = 12
	cfg.Edges = 60
	topo := inet.Generate(cfg)
	fmt.Printf("synthetic Internet: %d ASes\n", topo.Len())

	// 2. The platform and one PoP with two interconnections: a transit
	//    provider (AS 1000) and a settlement-free peer (AS 10000).
	platform := peering.NewPlatform(peering.PlatformConfig{ASN: 47065, Topology: topo})
	pop, err := platform.AddPoP(peering.PoPConfig{
		Name:      "amsix",
		RouterID:  netip.MustParseAddr("198.51.100.1"),
		LocalPool: netip.MustParsePrefix("127.65.0.0/16"),
		ExpLAN:    netip.MustParsePrefix("100.65.0.0/24"),
	})
	if err != nil {
		log.Fatal(err)
	}
	transit, err := pop.ConnectTransit(1000, 50)
	if err != nil {
		log.Fatal(err)
	}
	peer, err := pop.ConnectPeer(10000, 50)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PoP %s: transit %s (id %d), peer %s (id %d)\n",
		pop.Name, transit.Name, transit.ID, peer.Name, peer.ID)

	// 3. The management workflow (§4.6): propose, review, approve.
	if err := platform.Submit(peering.Proposal{
		Name: "quickstart", Owner: "you", Plan: "kick the tires",
		Prefixes: []netip.Prefix{netip.MustParsePrefix("184.164.224.0/24")},
		ASNs:     []uint32{61574},
	}); err != nil {
		log.Fatal(err)
	}
	key, err := platform.Approve("quickstart", nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("experiment approved, credentials issued\n")

	// 4. The experiment toolkit (Table 1): tunnel up, BGP up.
	client := peering.NewClient("quickstart", key, 61574)
	if err := client.OpenTunnel(pop); err != nil {
		log.Fatal(err)
	}
	if err := client.StartBGP("amsix"); err != nil {
		log.Fatal(err)
	}
	if err := client.WaitEstablished("amsix", 5*time.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tunnel %s, BGP %s\n", client.TunnelStatus("amsix"), client.BGPStatus("amsix"))

	// 5. Visibility: both neighbors' routes arrive over one session with
	//    distinct ADD-PATH IDs and local-pool next hops (Fig. 2a).
	probe := inet.PrefixForASN(100) // a tier-1 prefix both neighbors carry
	deadline := time.Now().Add(5 * time.Second)
	for len(client.RoutesFor("amsix", probe)) < 2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Println("\n$ peering cli amsix 'show route " + probe.String() + "'")
	fmt.Println(client.CLI("amsix", "show route "+probe.String()))

	// 6. Control: announce the allocation to the peer only, with one
	//    prepend (§3.2.1).
	if err := client.Announce("amsix", netip.MustParsePrefix("184.164.224.0/24"),
		peering.ToNeighbors(peer.ID), peering.WithPrepend(1)); err != nil {
		log.Fatal(err)
	}
	deadline = time.Now().Add(5 * time.Second)
	for !topo.Reachable(10000, netip.MustParsePrefix("184.164.224.0/24")) && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	rt := topo.RouteAt(10000, netip.MustParsePrefix("184.164.224.0/24"))
	fmt.Printf("\npeer AS10000 sees our prefix via path %v (prepended)\n", rt.Path)
	if topoRT := topo.RouteAt(1000, netip.MustParsePrefix("184.164.224.0/24")); topoRT == nil {
		fmt.Println("transit AS1000 did not receive it directly (community whitelist worked)")
	}

	// 7. Data plane: same destination, two different first hops, chosen
	//    per packet by MAC (Fig. 2b).
	dst := probe.Addr().Next()
	for _, via := range []struct {
		id   uint32
		name string
	}{{transit.ID, "transit"}, {peer.ID, "peer"}} {
		rtt, err := client.Ping("amsix", via.id, dst, 1, uint16(via.id), 5*time.Second)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("ping %s via %-8s rtt=%s\n", dst, via.name, rtt.Round(time.Microsecond))
	}
	fmt.Printf("\nrouter forwarded %d frames, dropped %d without routes\n",
		pop.Router.Forwarded.Load(), pop.Router.DroppedNoRoute.Load())
	fmt.Println("quickstart complete")
}
