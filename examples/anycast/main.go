// Anycast: the §7.1 line of work ("Internet Anycast: Performance,
// Problems, & Potential") — announce ONE prefix from several PoPs at
// once, measure each site's catchment in the synthetic Internet, then
// engineer the split with AS-path prepending and observe the shift. A
// route collector records the ground-truth update stream (§8's
// RouteViews role) for offline analysis.
package main

import (
	"fmt"
	"log"
	"net/netip"
	"os"
	"time"

	"repro/internal/collector"
	"repro/internal/inet"
	"repro/peering"
)

func main() {
	cfg := inet.DefaultGenConfig()
	cfg.Tier2 = 16
	cfg.Edges = 120
	topo := inet.Generate(cfg)

	platform := peering.NewPlatform(peering.PlatformConfig{ASN: 47065, Topology: topo})
	sites := []struct {
		name    string
		pool    string
		lan     string
		transit uint32
	}{
		{"amsix", "127.65.0.0/16", "100.65.0.0/24", 1000},
		{"seattle", "127.66.0.0/16", "100.66.0.0/24", 1005},
		{"ixbr", "127.67.0.0/16", "100.67.0.0/24", 1010},
	}
	pops := make([]*peering.PoP, len(sites))
	transits := make([]uint32, len(sites))
	for i, s := range sites {
		pop, err := platform.AddPoP(peering.PoPConfig{
			Name:      s.name,
			RouterID:  netip.AddrFrom4([4]byte{198, 51, 100, byte(i + 1)}),
			LocalPool: netip.MustParsePrefix(s.pool),
			ExpLAN:    netip.MustParsePrefix(s.lan),
		})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := pop.ConnectTransit(s.transit, 20); err != nil {
			log.Fatal(err)
		}
		pops[i] = pop
		transits[i] = s.transit
	}

	// Ground truth recording: a collector at the first site.
	col, err := pops[0].AttachCollector("route-views.anycast", 6447)
	if err != nil {
		log.Fatal(err)
	}
	defer col.Close()

	if err := platform.Submit(peering.Proposal{
		Name: "anycast", Owner: "example", Plan: "multi-site catchment study",
		Prefixes: []netip.Prefix{netip.MustParsePrefix("184.164.224.0/24")},
		ASNs:     []uint32{61574},
	}); err != nil {
		log.Fatal(err)
	}
	key, err := platform.Approve("anycast", nil)
	if err != nil {
		log.Fatal(err)
	}
	c := peering.NewClient("anycast", key, 61574)
	for _, pop := range pops {
		if err := c.OpenTunnel(pop); err != nil {
			log.Fatal(err)
		}
		if err := c.StartBGP(pop.Name); err != nil {
			log.Fatal(err)
		}
		if err := c.WaitEstablished(pop.Name, 5*time.Second); err != nil {
			log.Fatal(err)
		}
	}

	anycast := netip.MustParsePrefix("184.164.224.0/24")
	measure := func(label string) {
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			total := 0
			for _, tr := range transits {
				total += len(topo.ChoosersOf(anycast, tr))
			}
			if total >= topo.Len()-3 {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		fmt.Printf("%-28s", label)
		for i, tr := range transits {
			fmt.Printf("  %s=%3d", sites[i].name, len(topo.ChoosersOf(anycast, tr)))
		}
		fmt.Println()
	}

	// Phase 1: plain anycast from all three sites.
	for _, pop := range pops {
		if err := c.Announce(pop.Name, anycast); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("%d-AS Internet, anycast /24 from %d sites\n\n", topo.Len(), len(pops))
	fmt.Printf("%-28s  %s\n", "phase", "catchment (ASes per site)")
	measure("plain anycast")

	// Phase 2: prepend at amsix. Under Gao-Rexford, path length only
	// breaks ties within a relationship class, so the shift is partial —
	// the same muted effect prepending shows on the real Internet.
	if err := c.Announce("amsix", anycast, peering.WithPrepend(6)); err != nil {
		log.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)
	measure("amsix prepended x6")

	drained := len(topo.ChoosersOf(anycast, transits[0]))
	if drained > topo.Len()/4 {
		log.Fatalf("prepending failed to shrink amsix's catchment (still %d)", drained)
	}

	// Phase 3: withdraw seattle entirely; remaining sites split the pie.
	if err := c.Withdraw("seattle", anycast, 0); err != nil {
		log.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)
	measure("seattle withdrawn")

	// Export the collector's ground-truth event stream.
	f, err := os.CreateTemp("", "anycast-*.dump")
	if err != nil {
		log.Fatal(err)
	}
	defer os.Remove(f.Name())
	events := col.Events(time.Time{}, time.Time{})
	if err := collector.WriteEvents(f, events); err != nil {
		log.Fatal(err)
	}
	f.Close()
	rd, _ := os.Open(f.Name())
	back, err := collector.ReadEvents(rd)
	rd.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncollector recorded %d events; dump round-trips %d records (%s)\n",
		len(events), len(back), f.Name())
	fmt.Println("anycast study complete")
}
