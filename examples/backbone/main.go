// Backbone: the cloud-provider setting of §4.3/§4.4 — multiple PoPs
// joined by a provisioned backbone, an experiment attached at one PoP
// steering announcements to, and traffic through, a neighbor at ANOTHER
// PoP (Fig. 5), plus the §6 backbone throughput measurement.
package main

import (
	"fmt"
	"log"
	"net/netip"
	"time"

	"repro/internal/inet"
	"repro/internal/traffic"
	"repro/peering"
)

func main() {
	cfg := inet.DefaultGenConfig()
	cfg.Tier2 = 12
	cfg.Edges = 60
	topo := inet.Generate(cfg)

	platform := peering.NewPlatform(peering.PlatformConfig{ASN: 47065, Topology: topo})
	amsix := mustPoP(platform, "amsix", "127.65.0.0/16", "100.65.0.0/24", "198.51.100.1")
	seattle := mustPoP(platform, "seattle", "127.66.0.0/16", "100.66.0.0/24", "198.51.100.2")
	saopaulo := mustPoP(platform, "ixbr", "127.67.0.0/16", "100.67.0.0/24", "198.51.100.3")

	// Provisioned backbone (AL2S/RNP equivalents): capacities in the
	// paper's measured range.
	mustLink(platform.ConnectBackbone(amsix, seattle, 750e6, 35*time.Millisecond))
	mustLink(platform.ConnectBackbone(seattle, saopaulo, 400e6, 90*time.Millisecond))
	mustLink(platform.ConnectBackbone(amsix, saopaulo, 60e6, 110*time.Millisecond))

	// Each PoP has one local interconnection.
	if _, err := amsix.ConnectTransit(1000, 40); err != nil {
		log.Fatal(err)
	}
	remote, err := seattle.ConnectPeer(10000, 40)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := saopaulo.ConnectTransit(1001, 40); err != nil {
		log.Fatal(err)
	}

	if err := platform.Submit(peering.Proposal{
		Name: "cloudy", Owner: "example", Plan: "multi-PoP egress study",
		Prefixes: []netip.Prefix{netip.MustParsePrefix("184.164.224.0/24")},
		ASNs:     []uint32{61574},
	}); err != nil {
		log.Fatal(err)
	}
	key, err := platform.Approve("cloudy", nil)
	if err != nil {
		log.Fatal(err)
	}

	// The experiment connects ONLY at amsix, yet controls the whole AS.
	c := peering.NewClient("cloudy", key, 61574)
	if err := c.OpenTunnel(amsix); err != nil {
		log.Fatal(err)
	}
	if err := c.StartBGP("amsix"); err != nil {
		log.Fatal(err)
	}
	if err := c.WaitEstablished("amsix", 5*time.Second); err != nil {
		log.Fatal(err)
	}

	// Visibility across the backbone: routes of seattle's neighbor show
	// up at amsix with a local-pool next hop (Fig. 5 next-hop chaining).
	probe := inet.PrefixForASN(100)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if len(c.RoutesFor("amsix", probe)) >= 3 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Printf("experiment at amsix sees %d paths for %s (local + 2 remote PoPs):\n",
		len(c.RoutesFor("amsix", probe)), probe)
	for _, p := range c.RoutesFor("amsix", probe) {
		fmt.Printf("  id %-3d via %-12s path %v\n", p.ID, p.NextHop(), p.Attrs.ASPathFlat())
	}

	// Announce only to the neighbor at seattle, across the backbone.
	if err := c.Announce("amsix", netip.MustParsePrefix("184.164.224.0/24"),
		peering.ToNeighbors(remote.ID)); err != nil {
		log.Fatal(err)
	}
	deadline = time.Now().Add(5 * time.Second)
	for !topo.Reachable(10000, netip.MustParsePrefix("184.164.224.0/24")) && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	rt := topo.RouteAt(10000, netip.MustParsePrefix("184.164.224.0/24"))
	if rt == nil {
		log.Fatal("remote-PoP announcement never arrived")
	}
	fmt.Printf("\nannouncement exported at the REMOTE PoP only: AS10000 path %v\n", rt.Path)

	// Traffic through the remote neighbor: per-packet selection of an
	// egress two PoPs away, chained over the backbone (Fig. 5).
	dst := probe.Addr().Next()
	rtt, err := c.Ping("amsix", remote.ID, dst, 1, 1, 5*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ping via seattle's neighbor (through the backbone): rtt=%s\n", rtt.Round(time.Microsecond))
	fmt.Printf("forward counters: amsix=%d seattle=%d\n",
		amsix.Router.Forwarded.Load(), seattle.Router.Forwarded.Load())

	// §6: throughput between PoP pairs over the provisioned links.
	fmt.Println("\nbackbone throughput (fluid TCP model over provisioned links):")
	for _, l := range platform.BackboneLinks() {
		bps, err := traffic.MeasureSingleFlow([]traffic.Link{
			{Name: l.A + "-" + l.B, CapacityBps: l.CapacityBps, Latency: l.Latency},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s <-> %-8s provisioned %4.0f Mbps  measured %4.0f Mbps\n",
			l.A, l.B, l.CapacityBps/1e6, bps/1e6)
	}
	fmt.Println("backbone example complete")
}

func mustPoP(p *peering.Platform, name, pool, lan, id string) *peering.PoP {
	pop, err := p.AddPoP(peering.PoPConfig{
		Name: name, RouterID: netip.MustParseAddr(id),
		LocalPool: netip.MustParsePrefix(pool), ExpLAN: netip.MustParsePrefix(lan),
	})
	if err != nil {
		log.Fatal(err)
	}
	return pop
}

func mustLink(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
