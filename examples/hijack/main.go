// Security study: the class of experiments Peering is known for (§7.1
// and the RAPTOR/Bitcoin/TLS line of work). Four parts:
//
//  1. A CONTROLLED hijack of the experiment's own address space — a
//     more-specific announcement from a second PoP draws the catchment,
//     with ground truth measured in the synthetic Internet.
//  2. An UNAUTHORIZED hijack of someone else's prefix — rejected by the
//     enforcement engine and attributed in the audit log (§4.7).
//  3. BGP poisoning — announcing a path that names a transit AS makes
//     that AS reject the route, revealing the backup paths the rest of
//     the Internet falls back to (the hidden-route measurement of §7.1).
//  4. RPKI origin validation — the same sub-prefix hijack, attempted by
//     a rogue AS in the wild rather than through the platform, is
//     dropped at import by ROV-deploying ASes and its catchment
//     collapses as deployment grows.
//  5. Forensics replay — the whole study streams into the durable
//     history store; after the platform shuts down, the hijack timeline
//     is reconstructed from the on-disk segment log alone.
package main

import (
	"fmt"
	"log"
	"net/netip"
	"os"
	"time"

	"repro/internal/history"
	"repro/internal/inet"
	"repro/internal/policy"
	"repro/internal/rpki"
	"repro/peering"
)

func main() {
	cfg := inet.DefaultGenConfig()
	cfg.Tier2 = 12
	cfg.Edges = 80
	topo := inet.Generate(cfg)

	histDir, err := os.MkdirTemp("", "hijack-history-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(histDir)
	hist, err := history.Open(history.Config{Dir: histDir})
	if err != nil {
		log.Fatal(err)
	}

	platform := peering.NewPlatform(peering.PlatformConfig{ASN: 47065, Topology: topo, History: hist})
	popA := mustPoP(platform, "amsix", "127.65.0.0/16", "100.65.0.0/24", "198.51.100.1")
	popB := mustPoP(platform, "seattle", "127.66.0.0/16", "100.66.0.0/24", "198.51.100.2")
	if _, err := popA.ConnectTransit(1000, 40); err != nil {
		log.Fatal(err)
	}
	if _, err := popB.ConnectTransit(1001, 40); err != nil {
		log.Fatal(err)
	}

	// Approval grants a poisoning budget of 1 (the capability framework;
	// the paper rejected requests for large numbers of poisonings).
	if err := platform.Submit(peering.Proposal{
		Name: "whitehat", Owner: "sec-team", Plan: "controlled hijack + poisoning study",
		Prefixes: []netip.Prefix{netip.MustParsePrefix("184.164.224.0/23")},
		ASNs:     []uint32{61574},
		Caps:     policy.Capabilities{MaxPoisonedASNs: 1},
	}); err != nil {
		log.Fatal(err)
	}
	key, err := platform.Approve("whitehat", nil)
	if err != nil {
		log.Fatal(err)
	}
	c := peering.NewClient("whitehat", key, 61574)
	for _, pop := range []*peering.PoP{popA, popB} {
		if err := c.OpenTunnel(pop); err != nil {
			log.Fatal(err)
		}
		if err := c.StartBGP(pop.Name); err != nil {
			log.Fatal(err)
		}
		if err := c.WaitEstablished(pop.Name, 5*time.Second); err != nil {
			log.Fatal(err)
		}
	}

	// Part 1: controlled hijack of our own space.
	victim := netip.MustParsePrefix("184.164.224.0/24")
	specific := netip.MustParsePrefix("184.164.224.0/25")
	if err := c.Announce("amsix", victim); err != nil {
		log.Fatal(err)
	}
	waitReach(topo, 1001, victim)
	before := len(topo.ChoosersOf(victim, 1000))
	fmt.Printf("baseline: /24 announced at amsix, catchment via AS1000 = %d ASes\n", before)

	// The "attacker" (ourselves, at the second PoP) announces the
	// more-specific /25: longest-prefix match diverts the catchment.
	if err := c.Announce("seattle", specific); err != nil {
		log.Fatal(err)
	}
	waitReach(topo, 1000, specific)
	diverted := len(topo.ChoosersOf(specific, 1001))
	fmt.Printf("controlled hijack: /25 announced at seattle, %d ASes now route the /25 via AS1001\n", diverted)
	if diverted == 0 {
		log.Fatal("controlled hijack drew no catchment")
	}

	// Part 2: unauthorized hijack of foreign space is blocked.
	foreign := inet.PrefixForASN(10000)
	if err := c.Announce("amsix", foreign); err != nil {
		log.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond)
	if rt := topo.RouteAt(1000, foreign); rt != nil {
		for _, hop := range rt.Path {
			if hop == 47065 {
				log.Fatal("unauthorized hijack escaped!")
			}
		}
	}
	rejected := 0
	for _, e := range platform.Engine.Audit() {
		if e.Experiment == "whitehat" && e.Action == policy.ActionReject {
			rejected++
			fmt.Printf("enforcement: %s\n", e)
		}
	}
	if rejected == 0 {
		log.Fatal("no audit entry for the blocked hijack")
	}

	// Part 3: poisoning reveals backup routes. Baseline: how does a
	// distant stub reach us? Then poison the first hop of that path and
	// watch the stub switch to its backup.
	probe := netip.MustParsePrefix("184.164.225.0/24")
	if err := c.Announce("amsix", probe); err != nil {
		log.Fatal(err)
	}
	if err := c.Announce("seattle", probe); err != nil {
		log.Fatal(err)
	}
	waitReach(topo, 10040, probe)
	baseline := topo.RouteAt(10040, probe)
	fmt.Printf("baseline path from AS10040: %v\n", baseline.Path)
	// Poison the transit the stub's provider currently uses; paths
	// through it vanish and the stub falls back to an alternative.
	poisonTarget := baseline.Path[1]
	if len(baseline.Path) > 3 {
		poisonTarget = baseline.Path[2]
	}

	if err := c.Withdraw("amsix", probe, 0); err != nil {
		log.Fatal(err)
	}
	if err := c.Withdraw("seattle", probe, 0); err != nil {
		log.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	if err := c.Announce("amsix", probe, peering.WithPoison(poisonTarget)); err != nil {
		log.Fatal(err)
	}
	if err := c.Announce("seattle", probe, peering.WithPoison(poisonTarget)); err != nil {
		log.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)
	after := topo.RouteAt(10040, probe)
	if after == nil {
		fmt.Printf("poisoning AS%d: AS10040 has NO path left — it depended entirely on the poisoned AS\n", poisonTarget)
	} else {
		fmt.Printf("poisoning AS%d: AS10040's backup path revealed: %v\n", poisonTarget, after.Path)
		// The poisoned ASN appears in the announcement by construction;
		// what matters is that no AS before the platform (the actual
		// forwarding hops) is the poisoned one.
		for _, hop := range after.Path {
			if hop == 47065 {
				break
			}
			if hop == poisonTarget {
				log.Fatal("poisoned AS still transiting the route")
			}
		}
	}
	if topo.Reachable(poisonTarget, probe) {
		log.Fatal("poisoned AS accepted a path containing itself")
	}
	fmt.Printf("poisoned AS%d itself rejects the route (loop prevention), as intended\n", poisonTarget)

	// Part 4: the platform refused to launch the Part-2 hijack, but a
	// rogue AS in the wild answers to no enforcement engine. Sign a ROA
	// for every topology prefix and compare the rogue sub-prefix's
	// catchment with no origin validation vs 50% ROV deployment: the
	// victim's ROA covers its /24 at its own length, so the /25 is
	// RPKI-Invalid from any origin and validating ASes drop it at import.
	store := rpki.NewStore()
	for _, asn := range topo.ASNs() {
		for _, prefix := range topo.AS(asn).Originated {
			store.Add(rpki.ROA{Prefix: prefix, ASN: asn})
		}
	}
	topo.SetValidator(store)
	rogue := uint32(10055)
	sub := netip.PrefixFrom(foreign.Addr(), foreign.Bits()+1)

	topo.DeployROV(0, 61574)
	if err := topo.Originate(rogue, sub); err != nil {
		log.Fatal(err)
	}
	open := len(topo.ChoosersOf(sub, rogue))
	if err := topo.Withdraw(rogue, sub); err != nil {
		log.Fatal(err)
	}

	deployed := topo.DeployROV(0.5, 61574)
	if err := topo.Originate(rogue, sub); err != nil {
		log.Fatal(err)
	}
	contained := len(topo.ChoosersOf(sub, rogue))
	rovDrops, _ := topo.SecurityDrops()
	fmt.Printf("ROV: rogue AS%d's Invalid %s drew %d ASes with no validation, %d with %d/%d ASes validating (%d candidates dropped at import)\n",
		rogue, sub, open, contained, deployed, topo.Len(), rovDrops)
	if contained >= open {
		log.Fatal("ROV deployment did not shrink the hijack catchment")
	}
	if !topo.Reachable(10040, foreign) {
		log.Fatal("legitimate /24 lost under ROV")
	}
	fmt.Printf("victim's legitimate %s remains reachable everywhere (Valid under its ROA)\n", foreign)
	fmt.Println("security study complete")

	// Part 5: forensics replay. Every announcement above flowed through
	// the monitoring tee into the history store. Shut the platform down
	// (draining the tail of the event stream into the log), then reopen
	// the store from disk and reconstruct the hijack with nothing but
	// the sealed segments — the post-incident workflow an operator runs.
	platform.WaitMonitorDrained(3 * time.Second)
	now := time.Now()
	if err := platform.Close(); err != nil {
		log.Fatal(err)
	}
	replay, err := history.Open(history.Config{Dir: histDir})
	if err != nil {
		log.Fatal(err)
	}
	defer replay.Close()
	st := replay.Stats()
	fmt.Printf("\nforensics: %d records across %d sealed segments, vantages %v\n",
		st.Records, st.Segments, replay.Vantages())

	timeline, err := replay.Between(specific, time.Time{}, now)
	if err != nil {
		log.Fatal(err)
	}
	if len(timeline) == 0 {
		log.Fatal("forensics: the hijacked /25 left no trace in the log")
	}
	fmt.Printf("timeline of the hijacked %s:\n", specific)
	for _, ev := range timeline {
		verb := "announce"
		if ev.Withdraw {
			verb = "withdraw"
		}
		fmt.Printf("  %s  %-8s path %v, seen at %v (x%d)\n",
			ev.Time.Format("15:04:05.000"), verb, ev.ASPath, ev.VantageNames, ev.Dups)
		if len(ev.VantageNames) != 1 || ev.VantageNames[0] != "seattle" {
			log.Fatalf("forensics: /25 event attributed to %v, want seattle only", ev.VantageNames)
		}
	}

	divs, err := replay.DiffPoPs("amsix", "seattle", now)
	if err != nil {
		log.Fatal(err)
	}
	attributed := false
	for _, d := range divs {
		if d.Prefix == specific && d.OnlyAt == "seattle" {
			attributed = true
		}
	}
	if !attributed {
		log.Fatal("forensics: DiffPoPs did not attribute the /25 to seattle")
	}
	fmt.Printf("DiffPoPs(amsix, seattle) at the hijack instant: %d divergences, /25 held only at seattle\n", len(divs))
	fmt.Println("forensics replay complete — timeline reconstructed from disk alone")
}

func mustPoP(p *peering.Platform, name, pool, lan, id string) *peering.PoP {
	pop, err := p.AddPoP(peering.PoPConfig{
		Name: name, RouterID: netip.MustParseAddr(id),
		LocalPool: netip.MustParsePrefix(pool), ExpLAN: netip.MustParsePrefix(lan),
	})
	if err != nil {
		log.Fatal(err)
	}
	return pop
}

func waitReach(topo *inet.Topology, asn uint32, prefix netip.Prefix) {
	deadline := time.Now().Add(5 * time.Second)
	for !topo.Reachable(asn, prefix) && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if !topo.Reachable(asn, prefix) {
		log.Fatalf("AS%d never learned %s", asn, prefix)
	}
}
