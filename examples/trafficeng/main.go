// Traffic engineering: an Espresso-style controller (the paper's X2,
// Fig. 1) running as a Peering experiment. The controller probes each
// egress interconnection, measures delivery rates, and shifts traffic
// per packet toward the best-performing neighbor — the fine-grained
// forwarding control that motivated vBGP's data-plane delegation
// (§3.2.2, §7.2). A parallel experiment announces and measures
// concurrently, demonstrating isolation (§2.1).
package main

import (
	"fmt"
	"log"
	"math/rand"
	"net/netip"
	"time"

	"repro/internal/ethernet"
	"repro/internal/inet"
	"repro/internal/netsim"
	"repro/peering"
)

func main() {
	cfg := inet.DefaultGenConfig()
	cfg.Tier2 = 12
	cfg.Edges = 60
	topo := inet.Generate(cfg)

	platform := peering.NewPlatform(peering.PlatformConfig{ASN: 47065, Topology: topo})
	pop, err := platform.AddPoP(peering.PoPConfig{
		Name:      "seattle",
		RouterID:  netip.MustParseAddr("198.51.100.2"),
		LocalPool: netip.MustParsePrefix("127.65.0.0/16"),
		ExpLAN:    netip.MustParsePrefix("100.66.0.0/24"),
	})
	if err != nil {
		log.Fatal(err)
	}
	// Two transits toward the same destinations.
	t1, err := pop.ConnectTransit(1000, 50)
	if err != nil {
		log.Fatal(err)
	}
	t2, err := pop.ConnectTransit(1001, 50)
	if err != nil {
		log.Fatal(err)
	}

	// Degrade transit 1's path: its edge drops 60% of packets.
	rng := rand.New(rand.NewSource(7))
	degrade(pop, t1.Name, func() bool { return rng.Float64() < 0.6 })

	// Two parallel experiments (§2.1): the TE controller and a
	// measurement experiment announcing its own space concurrently.
	controllerKey := approve(platform, "espresso", "184.164.224.0/24", 61574)
	watcherKey := approve(platform, "watcher", "184.164.225.0/24", 61575)

	controller := peering.NewClient("espresso", controllerKey, 61574)
	watcher := peering.NewClient("watcher", watcherKey, 61575)
	for _, c := range []*peering.Client{controller, watcher} {
		if err := c.OpenTunnel(pop); err != nil {
			log.Fatal(err)
		}
		if err := c.StartBGP(pop.Name); err != nil {
			log.Fatal(err)
		}
		if err := c.WaitEstablished(pop.Name, 5*time.Second); err != nil {
			log.Fatal(err)
		}
	}
	if err := watcher.Announce(pop.Name, netip.MustParsePrefix("184.164.225.0/24")); err != nil {
		log.Fatal(err)
	}

	dstPrefix := inet.PrefixForASN(100)
	waitRoutes(controller, pop.Name, dstPrefix, 2)
	dst := dstPrefix.Addr().Next()

	// Controller loop: probe both egresses, then send the "user traffic"
	// via the measured-best egress, per packet.
	fmt.Println("egress        sent  delivered  rate")
	best, bestRate := uint32(0), -1.0
	for _, nbr := range []struct {
		id   uint32
		name string
	}{{t1.ID, t1.Name}, {t2.ID, t2.Name}} {
		const probes = 40
		ok := 0
		for i := 0; i < probes; i++ {
			if _, err := controller.Ping(pop.Name, nbr.id, dst, uint16(nbr.id), uint16(i), 300*time.Millisecond); err == nil {
				ok++
			}
		}
		rate := float64(ok) / probes
		fmt.Printf("%-12s %5d  %9d  %3.0f%%\n", nbr.name, probes, ok, rate*100)
		if rate > bestRate {
			best, bestRate = nbr.id, rate
		}
	}
	fmt.Printf("controller selects egress neighbor id %d (%.0f%% delivery)\n", best, bestRate*100)

	// Shift production traffic onto the chosen egress.
	delivered := 0
	const flows = 100
	for i := 0; i < flows; i++ {
		if _, err := controller.Ping(pop.Name, best, dst, 999, uint16(i), 300*time.Millisecond); err == nil {
			delivered++
		}
	}
	fmt.Printf("after shift: %d/%d packets delivered via the chosen egress\n", delivered, flows)

	// The parallel watcher kept its own session and announcement intact.
	if watcher.BGPStatus(pop.Name).String() != "Established" {
		log.Fatal("parallel experiment disturbed")
	}
	if !topo.Reachable(1000, netip.MustParsePrefix("184.164.225.0/24")) {
		log.Fatal("watcher's announcement lost")
	}
	fmt.Println("parallel experiment unaffected: isolation holds")
}

func approve(p *peering.Platform, name, prefix string, asn uint32) string {
	if err := p.Submit(peering.Proposal{
		Name: name, Owner: "example", Plan: "traffic engineering study",
		Prefixes: []netip.Prefix{netip.MustParsePrefix(prefix)},
		ASNs:     []uint32{asn},
	}); err != nil {
		log.Fatal(err)
	}
	key, err := p.Approve(name, nil)
	if err != nil {
		log.Fatal(err)
	}
	return key
}

// degrade installs a probabilistic drop filter at the neighbor-facing
// router interface, modeling a congested interconnection.
func degrade(pop *peering.PoP, neighborName string, drop func() bool) {
	ifc := pop.Router.Interface("nbr-" + neighborName)
	if ifc == nil {
		log.Fatalf("no interface for %s", neighborName)
	}
	ifc.AddEgressFilter(netsim.FilterFunc(func(data []byte) netsim.Verdict {
		var fr ethernet.Frame
		if fr.DecodeFromBytes(data) == nil && fr.Type == ethernet.TypeIPv4 && drop() {
			return netsim.VerdictDrop
		}
		return netsim.VerdictPass
	}))
}

func waitRoutes(c *peering.Client, pop string, prefix netip.Prefix, n int) {
	deadline := time.Now().Add(5 * time.Second)
	for len(c.RoutesFor(pop, prefix)) < n && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if len(c.RoutesFor(pop, prefix)) < n {
		log.Fatalf("expected %d routes for %s", n, prefix)
	}
}
