#!/usr/bin/env bash
# Black-box smoke test of the peeringd control-plane API: boot a small
# platform with a durable state dir, drive a full experiment lifecycle
# purely over HTTP — index, dry-run, create, idempotent re-create,
# convergence, RIB query, stale CAS — kill the daemon with SIGKILL and
# check specs and deploy revisions survive the restart, then delete and
# check the daemon drains cleanly on SIGTERM.
#
# Usage: scripts/api_smoke.sh [host:port]   (default 127.0.0.1:19179)
set -euo pipefail

addr=${1:-127.0.0.1:19179}
base="http://$addr"
workdir=$(mktemp -d)
pd=""
cleanup() {
    [ -n "$pd" ] && kill "$pd" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

say()  { printf 'api-smoke: %s\n' "$*"; }
fail() { say "FAIL: $*"; sed -n '1,60p' "$workdir/peeringd.log" 2>/dev/null; exit 1; }

# One API call: method path [body]; prints the status code, body lands
# in $workdir/last.json.
req() {
    local method=$1 path=$2 body=${3:-}
    if [ -n "$body" ]; then
        curl -s -o "$workdir/last.json" -w '%{http_code}' -X "$method" "$base$path" -d "$body"
    else
        curl -s -o "$workdir/last.json" -w '%{http_code}' -X "$method" "$base$path"
    fi
}

go build -o "$workdir/peeringd" ./cmd/peeringd

boot() {
    "$workdir/peeringd" -pops 2 -edges 60 -ixp-members 10 -metrics "$addr" \
        -state-dir "$workdir/state" >>"$workdir/peeringd.log" 2>&1 &
    pd=$!
    say "waiting for $base"
    for _ in $(seq 1 120); do
        curl -fsS "$base/" >/dev/null 2>&1 && break
        kill -0 "$pd" 2>/dev/null || fail "peeringd exited during startup"
        sleep 1
    done
}

boot
curl -fsS "$base/" | grep -q '"service": "peeringd"' || fail "root index is not the JSON service index"
[ "$(req GET /no-such-path)" = 404 ] || fail "unknown path did not 404"
say "index + 404 ok"

spec='{"name":"smoke","owner":"ci","asn":61574,"prefixes":["184.164.224.0/24"],"announcements":[{"prefix":"184.164.224.0/24","pops":["pop00","pop01"]}]}'

[ "$(req POST '/v1/experiments?dry_run=1' "$spec")" = 200 ] || fail "dry run rejected"
grep -q '"dry_run": true' "$workdir/last.json" || fail "dry run response malformed"
[ "$(req GET /v1/experiments/smoke)" = 404 ] || fail "dry run stored the object"

[ "$(req POST /v1/experiments "$spec")" = 201 ] || fail "create did not return 201"
[ "$(req POST /v1/experiments "$spec")" = 200 ] || fail "idempotent re-POST did not return 200"
say "create ok (201, then idempotent 200)"

say "waiting for convergence"
for _ in $(seq 1 150); do
    req GET /v1/experiments/smoke >/dev/null
    grep -q '"phase": "converged"' "$workdir/last.json" && break
    sleep 0.2
done
grep -q '"phase": "converged"' "$workdir/last.json" || fail "experiment never converged: $(cat "$workdir/last.json")"

for pop in pop00 pop01; do
    [ "$(req GET "/v1/rib?pop=$pop&table=experiments")" = 200 ] || fail "rib query at $pop failed"
    grep -q '184.164.224.0/24' "$workdir/last.json" || fail "announcement missing from $pop RIB"
done
say "converged; announcement present in both experiment RIBs"

# Stale CAS: a PATCH at a bogus revision must 409 without disturbing
# the object.
[ "$(req PATCH /v1/experiments/smoke "{\"revision\":999,\"spec\":$spec}")" = 409 ] || fail "stale PATCH did not 409"
req GET /v1/experiments/smoke >/dev/null
grep -q '"phase": "converged"' "$workdir/last.json" || fail "stale PATCH disturbed the object"
say "stale CAS rejected with 409"

# Crash phase: promote the mirrored revision, SIGKILL the daemon, and
# restart it over the same state dir. The WAL must bring back the spec
# at its exact revision and the deploy map, and the recovered reconciler
# must re-actuate the experiment on the rebuilt platform.
req GET /v1/experiments/smoke >/dev/null
rev=$(sed -n 's/.*"revision": \([0-9]*\).*/\1/p' "$workdir/last.json" | head -1)
cfgrev=$(sed -n 's/.*"config_rev": \([0-9]*\).*/\1/p' "$workdir/last.json" | head -1)
[ -n "$cfgrev" ] || fail "no mirrored config revision before the crash"
[ "$(req POST /v1/deploy/promote "{\"revision\":$cfgrev}")" = 200 ] || fail "promote before the crash failed"

say "killing peeringd with SIGKILL"
kill -9 "$pd"
wait "$pd" 2>/dev/null || true
pd=""
boot

[ "$(req GET /v1/experiments/smoke)" = 200 ] || fail "spec did not survive the crash"
grep -q "\"revision\": $rev" "$workdir/last.json" || fail "recovered spec lost revision $rev: $(cat "$workdir/last.json")"
say "waiting for reconvergence after restart"
for _ in $(seq 1 150); do
    req GET /v1/experiments/smoke >/dev/null
    grep -q '"phase": "converged"' "$workdir/last.json" && break
    sleep 0.2
done
grep -q '"phase": "converged"' "$workdir/last.json" || fail "experiment never reconverged after the crash: $(cat "$workdir/last.json")"
[ "$(req GET "/v1/rib?pop=pop00&table=experiments")" = 200 ] || fail "rib query after restart failed"
grep -q '184.164.224.0/24' "$workdir/last.json" || fail "announcement not re-actuated after the crash"
[ "$(req GET /v1/deploy)" = 200 ] || fail "deploy status after restart failed"
grep -q "\"pop00\": $cfgrev" "$workdir/last.json" || fail "deploy revisions did not survive the crash: $(cat "$workdir/last.json")"
say "crash ok: spec (revision $rev), actuation, and deploy map survived kill -9"

[ "$(req DELETE /v1/experiments/smoke)" = 202 ] || fail "delete did not return 202"
for _ in $(seq 1 150); do
    [ "$(req GET /v1/experiments/smoke)" = 404 ] && break
    sleep 0.2
done
[ "$(req GET /v1/experiments/smoke)" = 404 ] || fail "deleted experiment still present"
req GET "/v1/rib?pop=pop00&table=experiments" >/dev/null
grep -q '184.164.224.0/24' "$workdir/last.json" && fail "teardown left the announcement in the RIB"
say "delete ok; teardown cleaned the RIB"

kill -TERM "$pd"
for _ in $(seq 1 100); do kill -0 "$pd" 2>/dev/null || break; sleep 0.2; done
if kill -0 "$pd" 2>/dev/null; then
    fail "peeringd did not exit after SIGTERM"
fi
wait "$pd" || fail "peeringd exited non-zero after SIGTERM"
pd=""
say "SIGTERM drained cleanly; all checks passed"
