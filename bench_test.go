// Benchmarks regenerating the paper's evaluation (§6): one benchmark
// family per figure or quantified claim. cmd/vbgp-bench drives the same
// code paths and prints paper-vs-measured tables; these testing.B
// benchmarks expose the underlying per-operation costs.
//
//	Fig. 6a  BenchmarkFig6aMemory/*      — routing-table bytes per route
//	Fig. 6b  BenchmarkFig6bUpdates/*     — per-update processing cost
//	§6       BenchmarkBackboneThroughput — TCP throughput between PoPs
//	§6       BenchmarkDataPlaneForward   — per-packet forwarding cost
//	ablation BenchmarkAblation*          — design-choice costs
package repro_test

import (
	"fmt"
	"net/netip"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bgp"
	"repro/internal/core"
	"repro/internal/ethernet"
	"repro/internal/netsim"
	"repro/internal/pipe"
	"repro/internal/policy"
	"repro/internal/rib"
	"repro/internal/traffic"
	"repro/internal/workload"
)

func ipa(s string) netip.Addr    { return netip.MustParseAddr(s) }
func pfxb(s string) netip.Prefix { return netip.MustParsePrefix(s) }

// heapInUse forces a GC and reports live heap bytes.
func heapInUse() uint64 {
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m.HeapInuse
}

// loadRoutes fills tables the way each Fig. 6a configuration would:
//
//	control:  one RIB holding every path (BGP operation only)
//	data:     per-interconnection RIBs plus one FIB entry per route
//	default:  data plus a router-managed best-path table
func loadRoutes(mode string, neighbors, total int) (keep []any) {
	gen := workload.NewGenerator(1, 65001, ipa("192.0.2.1"))
	perNbr := total / neighbors

	switch mode {
	case "control":
		t := rib.NewTable("loc-rib")
		for i := 0; i < total; i++ {
			r := gen.Route(i)
			t.Add(&rib.Path{Prefix: r.Prefix, Peer: fmt.Sprintf("n%d", i%neighbors),
				Attrs: r.Attrs, EBGP: true, Seq: rib.NextSeq()})
		}
		return []any{t}
	case "data", "default":
		var tables []any
		var fibs []any
		for n := 0; n < neighbors; n++ {
			t := rib.NewTable(fmt.Sprintf("adj-in-%d", n))
			f := rib.NewFIB(fmt.Sprintf("fib-%d", n))
			for i := 0; i < perNbr; i++ {
				r := gen.Route(n*perNbr + i)
				t.Add(&rib.Path{Prefix: r.Prefix, Peer: t.Name, Attrs: r.Attrs, EBGP: true, Seq: rib.NextSeq()})
				f.Set(r.Prefix, rib.FIBEntry{NextHop: r.Attrs.NextHop, Out: t.Name})
			}
			tables = append(tables, t, f)
			_ = fibs
		}
		if mode == "default" {
			d := rib.NewTable("default")
			for i := 0; i < total; i++ {
				r := gen.Route(i)
				d.Add(&rib.Path{Prefix: r.Prefix, Peer: "best", Attrs: r.Attrs, Seq: rib.NextSeq()})
			}
			tables = append(tables, d)
		}
		return tables
	}
	panic("unknown mode")
}

// BenchmarkFig6aMemory measures routing-table memory per route for the
// three configurations of Fig. 6a. The paper reports ~327 B/route
// (BIRD); ordering control < data < data+default must hold.
func BenchmarkFig6aMemory(b *testing.B) {
	const routes = 200000
	const neighbors = 20
	for _, mode := range []string{"control", "data", "default"} {
		b.Run(mode, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				before := heapInUse()
				keep := loadRoutes(mode, neighbors, routes)
				after := heapInUse()
				b.ReportMetric(float64(after-before)/routes, "B/route")
				runtime.KeepAlive(keep)
			}
		})
	}
}

// updatePipeline builds a session pair feeding a receiver that models
// one Fig. 6b configuration and returns a function processing one
// pre-encoded update plus a cleanup.
func updatePipeline(b *testing.B, mode string) (process func(e workload.UpdateEvent)) {
	b.Helper()
	switch mode {
	case "accept":
		// Accept-all baseline: store the route, no filters, no rewrite.
		t := rib.NewTable("accept")
		return func(e workload.UpdateEvent) {
			if e.Kind == workload.KindWithdraw {
				t.Withdraw(e.Route.Prefix, "n", 0)
				return
			}
			t.Add(&rib.Path{Prefix: e.Route.Prefix, Peer: "n", Attrs: e.Route.Attrs, Seq: rib.NextSeq()})
		}
	case "single", "multi":
		// vBGP filter stack: policy evaluation (worst case: run to
		// completion, accept), next-hop rewrite into the local pool, and
		// for "multi" the additional global-pool rewrite of §4.4.
		en := policy.NewEngine(47065)
		en.DailyUpdateLimit = 1 << 30
		en.Register(&policy.Experiment{
			Name:     "bench",
			Prefixes: []netip.Prefix{pfxb("0.0.0.0/0")},
			ASNs:     []uint32{65001},
			Caps:     policy.Capabilities{MaxPoisonedASNs: 64, MaxCommunities: 64, AllowTransit: true, MaxPathLen: 64},
		})
		t := rib.NewTable("vbgp")
		localPool := core.NewPool(pfxb("127.65.0.0/16"))
		localIP := localPool.MustAlloc()
		globalPool := core.NewPool(pfxb("127.127.0.0/16"))
		globalIP := globalPool.MustAlloc()
		return func(e workload.UpdateEvent) {
			if e.Kind == workload.KindWithdraw {
				res := en.EvaluateWithdraw("bench", "amsix", e.Route.Prefix)
				_ = res
				t.Withdraw(e.Route.Prefix, "n", 0)
				return
			}
			res := en.EvaluateAnnouncement("bench", "amsix", e.Route.Prefix, e.Route.Attrs)
			if res.Action == policy.ActionReject {
				return
			}
			out := res.Attrs
			out.NextHop = localIP
			if mode == "multi" {
				// Backbone handling: recognize the global pool and
				// re-rewrite into the local pool (Fig. 5).
				out = out.Clone()
				out.NextHop = globalIP
				if globalPool.Contains(out.NextHop) {
					out.NextHop = localIP
				}
			}
			t.Add(&rib.Path{Prefix: e.Route.Prefix, Peer: "n", Attrs: out, Seq: rib.NextSeq()})
		}
	}
	b.Fatalf("unknown mode")
	return nil
}

// BenchmarkFig6bUpdates measures the per-update cost of the three filter
// configurations of Fig. 6b. CPU utilization at rate R is
// R x (measured ns/op) / 1e9; linearity in R follows. Ordering must be
// accept < single < multi.
func BenchmarkFig6bUpdates(b *testing.B) {
	gen := workload.NewGenerator(2, 65001, ipa("192.0.2.1"))
	events := gen.Stream(2000, 1<<16)
	for _, mode := range []string{"accept", "single", "multi"} {
		b.Run(mode, func(b *testing.B) {
			process := updatePipeline(b, mode)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				process(events[i&(1<<16-1)])
			}
		})
	}
}

// BenchmarkFig6bWire measures the full wire-to-RIB path: decode a real
// UPDATE message and store it, the cost every configuration pays before
// filters run.
func BenchmarkFig6bWire(b *testing.B) {
	gen := workload.NewGenerator(3, 65001, ipa("192.0.2.1"))
	events := gen.Stream(2000, 4096)
	ca, cb := pipe.New()
	received := make(chan struct{}, 1<<20)
	rcv := bgp.NewSession(ca, bgp.Config{LocalASN: 47065, RemoteASN: 65001, LocalID: ipa("10.0.0.1"),
		OnUpdate: func(*bgp.Update) { received <- struct{}{} }})
	snd := bgp.NewSession(cb, bgp.Config{LocalASN: 65001, RemoteASN: 47065, LocalID: ipa("10.0.0.2")})
	go rcv.Run()
	go snd.Run()
	defer rcv.Close()
	defer snd.Close()
	deadline := time.Now().Add(5 * time.Second)
	for snd.State() != bgp.StateEstablished && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := snd.Send(events[i&4095].Update()); err != nil {
			b.Fatal(err)
		}
		<-received
	}
}

// BenchmarkBackboneThroughput reproduces the §6 iperf3 measurement:
// steady-state TCP throughput between PoP pairs over provisioned
// backbone links spanning the paper's 60-750 Mbps capacity range.
func BenchmarkBackboneThroughput(b *testing.B) {
	caps := []float64{60e6, 250e6, 400e6, 600e6, 750e6}
	for _, c := range caps {
		c := c
		b.Run(fmt.Sprintf("%dMbps", int(c/1e6)), func(b *testing.B) {
			var got float64
			for i := 0; i < b.N; i++ {
				bps, err := traffic.MeasureSingleFlow([]traffic.Link{
					{Name: "bb", CapacityBps: c, Latency: 20 * time.Millisecond},
				})
				if err != nil {
					b.Fatal(err)
				}
				got = bps
			}
			b.ReportMetric(got/1e6, "Mbps")
		})
	}
}

// BenchmarkDataPlaneForward measures per-packet forwarding through the
// vBGP data plane: MAC-table selection, per-neighbor LPM, TTL rewrite,
// and transmission.
func BenchmarkDataPlaneForward(b *testing.B) {
	router := core.NewRouter(core.Config{Name: "bench", ASN: 47065, RouterID: ipa("10.0.0.1")})
	nbrLAN := netsim.NewSegment("nbr")
	expLAN := netsim.NewSegment("exp")
	router.AddInterface("nbr0", "neighbor", pfxb("192.0.2.254/24"), nbrLAN)
	router.AddInterface("exp0", "experiment", pfxb("100.65.0.254/24"), expLAN)

	sink := netsim.NewInterface("sink", ethernet.MAC{2, 0, 0, 0, 0, 0x11})
	sink.AddAddr(ipa("192.0.2.1"))
	sink.SetHandler(func(*netsim.Interface, *ethernet.Frame) {})
	sink.Attach(nbrLAN)

	cr, cn := pipe.New()
	nbr, err := router.AddNeighbor(core.NeighborConfig{
		Name: "n1", ID: 1, ASN: 65001, Addr: ipa("192.0.2.1"), Interface: "nbr0", Conn: cr,
	})
	if err != nil {
		b.Fatal(err)
	}
	peer := bgp.NewSession(cn, bgp.Config{LocalASN: 65001, RemoteASN: 47065, LocalID: ipa("192.0.2.1")})
	go peer.Run()
	defer peer.Close()
	deadline := time.Now().Add(5 * time.Second)
	for peer.State() != bgp.StateEstablished && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	// Install routes directly for bench determinism.
	gen := workload.NewGenerator(4, 65001, ipa("192.0.2.1"))
	for i := 0; i < 100000; i++ {
		r := gen.Route(i)
		attrs := r.Attrs.Clone()
		attrs.NextHop = ipa("192.0.2.1")
		nbr.Table.Add(&rib.Path{Prefix: r.Prefix, Peer: "n1", Attrs: attrs, EBGP: true, Seq: rib.NextSeq()})
	}
	tx := netsim.NewInterface("tx", ethernet.MAC{0x0a, 0, 0, 0, 0, 1})
	tx.Attach(expLAN)

	dst := gen.Route(50000).Prefix.Addr().Next()
	pkt := ethernet.IPv4{TTL: 64, Protocol: ethernet.ProtoUDP,
		Src: ipa("184.164.224.1"), Dst: dst, Payload: make([]byte, 64)}
	frame := ethernet.Frame{Dst: nbr.LocalMAC, Src: tx.MAC(), Type: ethernet.TypeIPv4, Payload: pkt.Marshal()}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx.Send(&frame)
	}
	b.StopTimer()
	if router.Forwarded.Load() == 0 {
		b.Fatal("nothing forwarded")
	}
	b.ReportMetric(float64(router.Forwarded.Load())/float64(b.N), "fwd/op")
}

// BenchmarkAblationAddPath quantifies the visibility ADD-PATH buys: the
// number of distinct routes a table retains for one prefix with and
// without per-path IDs.
func BenchmarkAblationAddPath(b *testing.B) {
	for _, addPath := range []bool{true, false} {
		name := "with-addpath"
		if !addPath {
			name = "without-addpath"
		}
		b.Run(name, func(b *testing.B) {
			var retained int
			for i := 0; i < b.N; i++ {
				t := rib.NewTable("x")
				for n := 0; n < 16; n++ {
					id := bgp.PathID(0)
					if addPath {
						id = bgp.PathID(n + 1)
					}
					t.Add(&rib.Path{Prefix: pfxb("192.168.0.0/24"), ID: id, Peer: "mux",
						Attrs: &bgp.PathAttrs{NextHop: ipa("127.65.0.1")}, Seq: rib.NextSeq()})
				}
				retained = t.PathCount()
			}
			b.ReportMetric(float64(retained), "paths-visible")
		})
	}
}

// BenchmarkPolicyEvaluate isolates the enforcement engine (the ExaBGP
// replacement): per-announcement evaluation cost with a full capability
// check.
func BenchmarkPolicyEvaluate(b *testing.B) {
	en := policy.NewEngine(47065)
	en.DailyUpdateLimit = 1 << 30
	en.Register(&policy.Experiment{
		Name:     "bench",
		Prefixes: []netip.Prefix{pfxb("184.164.224.0/23")},
		ASNs:     []uint32{61574},
		Caps:     policy.Capabilities{MaxPoisonedASNs: 3, MaxCommunities: 8},
	})
	attrs := &bgp.PathAttrs{
		Origin: bgp.OriginIGP, HasOrigin: true,
		ASPath:  []bgp.ASPathSegment{{Type: bgp.ASSequence, ASNs: []uint32{61574, 3356, 61574}}},
		NextHop: ipa("100.65.0.1"),
		Communities: []bgp.Community{
			bgp.NewCommunity(47065, 1), bgp.NewCommunity(3356, 70),
		},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := en.EvaluateAnnouncement("bench", "amsix", pfxb("184.164.224.0/24"), attrs)
		if res.Action == policy.ActionReject {
			b.Fatal(res.Reasons)
		}
	}
}

// BenchmarkTrieLookup isolates the longest-prefix-match cost that every
// forwarded packet pays.
func BenchmarkTrieLookup(b *testing.B) {
	gen := workload.NewGenerator(5, 65001, ipa("192.0.2.1"))
	f := rib.NewFIB("bench")
	for i := 0; i < 500000; i++ {
		r := gen.Route(i)
		f.Set(r.Prefix, rib.FIBEntry{NextHop: ipa("192.0.2.1")})
	}
	addrs := make([]netip.Addr, 1024)
	for i := range addrs {
		addrs[i] = gen.Route(i * 488).Prefix.Addr().Next()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := f.Lookup(addrs[i&1023]); !ok {
			b.Fatal("miss")
		}
	}
}

// BenchmarkAblationMRAI measures churn suppression: a flapping prefix
// (100 re-advertisements in a burst) against sessions with and without
// MinRouteAdvertisementInterval pacing. The metric is updates actually
// put on the wire.
func BenchmarkAblationMRAI(b *testing.B) {
	for _, mrai := range []time.Duration{0, 100 * time.Millisecond} {
		name := "without-mrai"
		if mrai > 0 {
			name = "with-mrai"
		}
		b.Run(name, func(b *testing.B) {
			var wire float64
			for i := 0; i < b.N; i++ {
				ca, cb := pipe.New()
				var received atomic.Uint64
				rcv := bgp.NewSession(ca, bgp.Config{LocalASN: 47065, RemoteASN: 65001, LocalID: ipa("10.0.0.1"),
					OnUpdate: func(*bgp.Update) { received.Add(1) }})
				snd := bgp.NewSession(cb, bgp.Config{LocalASN: 65001, RemoteASN: 47065, LocalID: ipa("10.0.0.2"),
					MRAI: mrai})
				go rcv.Run()
				go snd.Run()
				deadline := time.Now().Add(5 * time.Second)
				for snd.State() != bgp.StateEstablished && time.Now().Before(deadline) {
					time.Sleep(time.Millisecond)
				}
				for flap := 0; flap < 100; flap++ {
					a := &bgp.PathAttrs{Origin: bgp.OriginIGP, HasOrigin: true,
						ASPath:  []bgp.ASPathSegment{{Type: bgp.ASSequence, ASNs: []uint32{65001}}},
						NextHop: ipa("10.0.0.2"), MED: uint32(flap), HasMED: true}
					snd.Send(&bgp.Update{Attrs: a, NLRI: []bgp.NLRI{{Prefix: pfxb("203.0.113.0/24")}}})
				}
				// Allow the paced flush to drain.
				time.Sleep(mrai + 150*time.Millisecond)
				wire = float64(snd.UpdatesOut.Load())
				rcv.Close()
				snd.Close()
			}
			b.ReportMetric(wire, "wire-updates/100-flaps")
		})
	}
}
